//! Deterministic greedy shrinking (delta debugging) to a locally
//! minimal reproducer.
//!
//! The shrinker repeatedly tries size-reducing candidates in a *fixed*
//! order — edit-script op drops, subtree deletions by pre-order rank,
//! then query reductions, then label and edit-address canonicalization —
//! restarting after every success, until no candidate still reproduces
//! the failure. Edit ops are total ([`treequery_core::tree::EditOp::normalize`]
//! folds every address onto the tree it meets), so dropping any subset
//! of a script, or shrinking the tree under it, never invalidates the
//! remaining ops. Determinism is the point:
//! the same case and the same failure predicate always produce the same
//! (byte-identical once rendered) minimal reproducer, which is what the
//! golden tests in `tests/shrinker_golden.rs` pin down.
//!
//! Termination: every accepted candidate strictly decreases the
//! lexicographic measure (tree nodes + query size, number of
//! non-canonical labels), so the loop reaches a fixpoint. All tree
//! rebuilds are iterative ([`crate::treeops`]), so depth-10⁴ chains
//! shrink without stack overflow.

use treequery_core::cq::{Cq, CqAtom};
use treequery_core::datalog::{BasePred, BodyAtom, Program, UnaryRef};
use treequery_core::tree::EditOp;
use treequery_core::xpath::{Path, Qual};

use crate::{compact_cq, treeops, CaseQuery, FuzzCase};

/// Label every shrunk input converges towards.
const CANON_LABEL: &str = "a";

/// Hard cap on predicate invocations, so a pathological predicate
/// cannot hang a campaign.
const MAX_ATTEMPTS: usize = 50_000;

/// Only canonicalize labels on trees up to this size (the pass is
/// quadratic; above the bound the structural passes already dominate).
const RELABEL_NODE_BOUND: usize = 512;

/// Shrinking statistics.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct ShrinkStats {
    /// Accepted shrink steps (each strictly reduced the case).
    pub steps: usize,
    /// Total candidates tried (accepted or not).
    pub attempts: usize,
}

// ---------------------------------------------------------------------
// Query reductions, in deterministic order, each strictly smaller.

fn qual_reductions(q: &Qual) -> Vec<Qual> {
    let mut out = Vec::new();
    match q {
        Qual::Path(p) => out.extend(path_reductions(p).into_iter().map(Qual::Path)),
        Qual::Label(_) => {}
        Qual::And(a, b) | Qual::Or(a, b) => {
            out.push((**a).clone());
            out.push((**b).clone());
            let rebuild: fn(Box<Qual>, Box<Qual>) -> Qual = if matches!(q, Qual::And(..)) {
                Qual::And
            } else {
                Qual::Or
            };
            for ar in qual_reductions(a) {
                out.push(rebuild(Box::new(ar), b.clone()));
            }
            for br in qual_reductions(b) {
                out.push(rebuild(a.clone(), Box::new(br)));
            }
        }
        Qual::Not(inner) => {
            out.push((**inner).clone());
            for ir in qual_reductions(inner) {
                out.push(Qual::Not(Box::new(ir)));
            }
        }
    }
    out
}

fn path_reductions(p: &Path) -> Vec<Path> {
    let mut out = Vec::new();
    match p {
        Path::Step { axis, quals } => {
            for i in 0..quals.len() {
                let mut qs = quals.clone();
                qs.remove(i);
                out.push(Path::Step {
                    axis: *axis,
                    quals: qs,
                });
            }
            for (i, q) in quals.iter().enumerate() {
                for qr in qual_reductions(q) {
                    let mut qs = quals.clone();
                    qs[i] = qr;
                    out.push(Path::Step {
                        axis: *axis,
                        quals: qs,
                    });
                }
            }
        }
        Path::Seq(a, b) | Path::Union(a, b) => {
            out.push((**a).clone());
            out.push((**b).clone());
            let is_seq = matches!(p, Path::Seq(..));
            let rebuild = |x: Path, y: Path| if is_seq { x.then(y) } else { x.union(y) };
            for ar in path_reductions(a) {
                out.push(rebuild(ar, (**b).clone()));
            }
            for br in path_reductions(b) {
                out.push(rebuild((**a).clone(), br));
            }
        }
    }
    out
}

fn cq_reductions(q: &Cq) -> Vec<Cq> {
    let mut out = Vec::new();
    if q.atoms.len() > 1 {
        for i in 0..q.atoms.len() {
            let mut cand = q.clone();
            cand.atoms.remove(i);
            let covered: std::collections::BTreeSet<_> =
                cand.atoms.iter().flat_map(|a| a.vars()).collect();
            if cand.head.iter().all(|v| covered.contains(v)) {
                out.push(compact_cq(&cand));
            }
        }
    }
    if !q.head.is_empty() {
        let mut cand = q.clone();
        cand.head.pop();
        out.push(compact_cq(&cand));
    }
    out
}

fn prog_reductions(p: &Program) -> Vec<Program> {
    let mut out = Vec::new();
    if p.rules.len() > 1 {
        for i in 0..p.rules.len() {
            let mut cand = p.clone();
            cand.rules.remove(i);
            out.push(cand);
        }
    }
    for (ri, rule) in p.rules.iter().enumerate() {
        if rule.body.len() > 1 {
            for ai in 0..rule.body.len() {
                let mut r = rule.clone();
                r.body.remove(ai);
                if r.is_safe() {
                    let mut cand = p.clone();
                    cand.rules[ri] = r;
                    out.push(cand);
                }
            }
        }
    }
    out
}

fn query_reductions(q: &CaseQuery) -> Vec<CaseQuery> {
    match q {
        CaseQuery::XPath(p) => path_reductions(p)
            .into_iter()
            .map(CaseQuery::XPath)
            .collect(),
        CaseQuery::Cq(c) => cq_reductions(c).into_iter().map(CaseQuery::Cq).collect(),
        CaseQuery::Datalog(p) => prog_reductions(p)
            .into_iter()
            .map(CaseQuery::Datalog)
            .collect(),
    }
}

// ---------------------------------------------------------------------
// Label canonicalization: same size, strictly fewer non-canon labels.

fn relabel_path(p: &mut Path) -> bool {
    match p {
        Path::Step { quals, .. } => {
            for q in quals.iter_mut() {
                if relabel_qual(q) {
                    return true;
                }
            }
            false
        }
        Path::Seq(a, b) | Path::Union(a, b) => relabel_path(a) || relabel_path(b),
    }
}

fn relabel_qual(q: &mut Qual) -> bool {
    match q {
        Qual::Path(p) => relabel_path(p),
        Qual::Label(l) => {
            if l != CANON_LABEL {
                *l = CANON_LABEL.to_owned();
                true
            } else {
                false
            }
        }
        Qual::And(a, b) | Qual::Or(a, b) => relabel_qual(a) || relabel_qual(b),
        Qual::Not(inner) => relabel_qual(inner),
    }
}

fn relabel_query(q: &CaseQuery) -> Option<CaseQuery> {
    match q {
        CaseQuery::XPath(p) => {
            let mut out = p.clone();
            relabel_path(&mut out).then_some(CaseQuery::XPath(out))
        }
        CaseQuery::Cq(c) => {
            let mut out = c.clone();
            for a in out.atoms.iter_mut() {
                if let CqAtom::Label(l, _) = a {
                    if l != CANON_LABEL {
                        *l = CANON_LABEL.to_owned();
                        return Some(CaseQuery::Cq(out));
                    }
                }
            }
            None
        }
        CaseQuery::Datalog(p) => {
            let mut out = p.clone();
            for r in out.rules.iter_mut() {
                for a in r.body.iter_mut() {
                    if let BodyAtom::Unary(UnaryRef::Base(base), v) = a {
                        let new = match base {
                            BasePred::Label(l) if l != CANON_LABEL => {
                                Some(BasePred::Label(CANON_LABEL.to_owned()))
                            }
                            BasePred::NotLabel(l) if l != CANON_LABEL => {
                                Some(BasePred::NotLabel(CANON_LABEL.to_owned()))
                            }
                            _ => None,
                        };
                        if let Some(new) = new {
                            *a = BodyAtom::Unary(UnaryRef::Base(new), *v);
                            return Some(CaseQuery::Datalog(out));
                        }
                    }
                }
            }
            None
        }
    }
}

// ---------------------------------------------------------------------
// The main loop.

/// Shrinks `case` to a locally minimal input for which `still_fails`
/// returns `true`. The input case is assumed to fail; the result is the
/// smallest case the greedy pass sequence can reach.
pub fn shrink(
    case: &FuzzCase,
    still_fails: &mut dyn FnMut(&FuzzCase) -> bool,
) -> (FuzzCase, ShrinkStats) {
    let mut cur = case.clone();
    let mut stats = ShrinkStats::default();
    'outer: loop {
        if stats.attempts >= MAX_ATTEMPTS {
            break;
        }
        // Pass 0: drop edit-script ops (scripts are total, so any
        // subset is still a valid script).
        for i in 0..cur.edits.len() {
            let mut edits = cur.edits.clone();
            edits.remove(i);
            let cand = FuzzCase {
                tree: cur.tree.clone(),
                query: cur.query.clone(),
                edits,
            };
            stats.attempts += 1;
            if still_fails(&cand) {
                cur = cand;
                stats.steps += 1;
                continue 'outer;
            }
            if stats.attempts >= MAX_ATTEMPTS {
                break 'outer;
            }
        }
        // Pass 1: delete subtrees, largest candidates first (pre order).
        for r in 1..cur.tree.len() as u32 {
            let v = cur.tree.node_at_pre(r);
            let cand = FuzzCase {
                tree: treeops::delete_subtree(&cur.tree, v),
                query: cur.query.clone(),
                edits: cur.edits.clone(),
            };
            stats.attempts += 1;
            if still_fails(&cand) {
                cur = cand;
                stats.steps += 1;
                continue 'outer;
            }
            if stats.attempts >= MAX_ATTEMPTS {
                break 'outer;
            }
        }
        // Pass 1b: promote a subtree to the whole tree (big jumps first).
        for r in 1..cur.tree.len() as u32 {
            let c = cur.tree.node_at_pre(r);
            let cand = FuzzCase {
                tree: treeops::promote_to_root(&cur.tree, c),
                query: cur.query.clone(),
                edits: cur.edits.clone(),
            };
            stats.attempts += 1;
            if still_fails(&cand) {
                cur = cand;
                stats.steps += 1;
                continue 'outer;
            }
            if stats.attempts >= MAX_ATTEMPTS {
                break 'outer;
            }
        }
        // Pass 1c: contract an edge (hoist a child over its parent) —
        // the reduction that flattens chains.
        for r in 1..cur.tree.len() as u32 {
            let v = cur.tree.node_at_pre(r);
            let children: Vec<_> = cur.tree.children(v).collect();
            for c in children {
                let cand = FuzzCase {
                    tree: treeops::hoist_child(&cur.tree, v, c),
                    query: cur.query.clone(),
                    edits: cur.edits.clone(),
                };
                stats.attempts += 1;
                if still_fails(&cand) {
                    cur = cand;
                    stats.steps += 1;
                    continue 'outer;
                }
                if stats.attempts >= MAX_ATTEMPTS {
                    break 'outer;
                }
            }
        }
        // Pass 2: structural query reductions.
        for query in query_reductions(&cur.query) {
            let cand = FuzzCase {
                tree: cur.tree.clone(),
                query,
                edits: cur.edits.clone(),
            };
            stats.attempts += 1;
            if still_fails(&cand) {
                cur = cand;
                stats.steps += 1;
                continue 'outer;
            }
            if stats.attempts >= MAX_ATTEMPTS {
                break 'outer;
            }
        }
        // Pass 3: canonicalize tree labels (bounded: quadratic).
        if cur.tree.len() <= RELABEL_NODE_BOUND {
            for r in 0..cur.tree.len() as u32 {
                let v = cur.tree.node_at_pre(r);
                if cur.tree.label_name(v) == CANON_LABEL {
                    continue;
                }
                let cand = FuzzCase {
                    tree: treeops::relabel(&cur.tree, v, CANON_LABEL),
                    query: cur.query.clone(),
                    edits: cur.edits.clone(),
                };
                stats.attempts += 1;
                if still_fails(&cand) {
                    cur = cand;
                    stats.steps += 1;
                    continue 'outer;
                }
                if stats.attempts >= MAX_ATTEMPTS {
                    break 'outer;
                }
            }
        }
        // Pass 4: canonicalize query labels.
        if let Some(query) = relabel_query(&cur.query) {
            let cand = FuzzCase {
                tree: cur.tree.clone(),
                query,
                edits: cur.edits.clone(),
            };
            stats.attempts += 1;
            if still_fails(&cand) {
                cur = cand;
                stats.steps += 1;
                continue;
            }
        }
        // Pass 5: canonicalize edit-script ops — labels to the canon
        // label, addresses to zero (one change per attempt; both counts
        // strictly decrease, so the pass terminates).
        if let Some(edits) = canonicalize_edits(&cur.edits) {
            let cand = FuzzCase {
                tree: cur.tree.clone(),
                query: cur.query.clone(),
                edits,
            };
            stats.attempts += 1;
            if still_fails(&cand) {
                cur = cand;
                stats.steps += 1;
                continue;
            }
        }
        break;
    }
    (cur, stats)
}

/// The first single-field canonicalization of an edit script: a
/// non-canon op label set to [`CANON_LABEL`], or a nonzero address set
/// to zero. `None` when the script is fully canonical.
fn canonicalize_edits(edits: &[EditOp]) -> Option<Vec<EditOp>> {
    for (i, op) in edits.iter().enumerate() {
        let replacement = match op {
            EditOp::InsertLeaf {
                parent_pre,
                child_idx,
                label,
            } => {
                if label != CANON_LABEL {
                    Some(EditOp::InsertLeaf {
                        parent_pre: *parent_pre,
                        child_idx: *child_idx,
                        label: CANON_LABEL.to_owned(),
                    })
                } else if *parent_pre != 0 {
                    Some(EditOp::InsertLeaf {
                        parent_pre: 0,
                        child_idx: *child_idx,
                        label: label.clone(),
                    })
                } else if *child_idx != 0 {
                    Some(EditOp::InsertLeaf {
                        parent_pre: 0,
                        child_idx: 0,
                        label: label.clone(),
                    })
                } else {
                    None
                }
            }
            EditOp::DeleteSubtree { pre } => {
                (*pre != 0).then_some(EditOp::DeleteSubtree { pre: 0 })
            }
            EditOp::Relabel { pre, label } => {
                if label != CANON_LABEL {
                    Some(EditOp::Relabel {
                        pre: *pre,
                        label: CANON_LABEL.to_owned(),
                    })
                } else if *pre != 0 {
                    Some(EditOp::Relabel {
                        pre: 0,
                        label: label.clone(),
                    })
                } else {
                    None
                }
            }
        };
        if let Some(new_op) = replacement {
            let mut out = edits.to_vec();
            out[i] = new_op;
            return Some(out);
        }
    }
    None
}

#[cfg(test)]
mod tests {
    use super::*;
    use treequery_core::parse_term;
    use treequery_core::tree::{deep_path, to_term};
    use treequery_core::xpath::parse_xpath;

    #[test]
    fn shrinks_to_single_node_under_trivial_predicate() {
        let case = FuzzCase {
            tree: parse_term("r(a(b(c) b) a(c(b)) b(a))").unwrap(),
            query: CaseQuery::XPath(parse_xpath("child::*[lab()=b]/descendant::*").unwrap()),
            edits: Vec::new(),
        };
        let (min, stats) = shrink(&case, &mut |_| true);
        assert_eq!(min.tree.len(), 1);
        assert_eq!(min.query.size(), 1, "query should reduce to one step");
        assert!(stats.steps > 0);
    }

    #[test]
    fn preserves_predicate_constraints() {
        // Predicate: the tree still contains at least two `b` nodes.
        let case = FuzzCase {
            tree: parse_term("r(a(b(c) b) a(c(b)) b(a))").unwrap(),
            query: CaseQuery::XPath(parse_xpath("descendant::*[lab()=b]").unwrap()),
            edits: Vec::new(),
        };
        let (min, _) = shrink(&case, &mut |c| {
            c.tree
                .nodes()
                .filter(|&v| c.tree.label_name(v) == "b")
                .count()
                >= 2
        });
        let count = min
            .tree
            .nodes()
            .filter(|&v| min.tree.label_name(v) == "b")
            .count();
        assert_eq!(count, 2, "locally minimal: exactly the required two");
        // With deletion + hoisting the minimum is a root with two `b`
        // leaves (the root itself cannot be deleted or relabelled away
        // without losing a `b`).
        assert!(min.tree.len() <= 3, "got {}", to_term(&min.tree));
    }

    #[test]
    fn deep_chain_shrinks_without_overflow() {
        let case = FuzzCase {
            tree: deep_path(10_000, "x"),
            query: CaseQuery::XPath(parse_xpath("descendant::*").unwrap()),
            edits: Vec::new(),
        };
        let (min, _) = shrink(&case, &mut |c| !c.tree.is_empty());
        assert_eq!(min.tree.len(), 1);
    }

    #[test]
    fn edit_scripts_shrink_to_the_essential_op() {
        // Predicate: the script still contains at least one relabel op.
        // Everything else — the inserts, the deletes, the tree, the
        // query — is noise the shrinker must strip.
        let case = FuzzCase {
            tree: parse_term("r(a(b(c) b) a(c(b)) b(a))").unwrap(),
            query: CaseQuery::XPath(parse_xpath("descendant::*[lab()=b]").unwrap()),
            edits: vec![
                EditOp::InsertLeaf {
                    parent_pre: 3,
                    child_idx: 1,
                    label: "c".into(),
                },
                EditOp::Relabel {
                    pre: 5,
                    label: "b".into(),
                },
                EditOp::DeleteSubtree { pre: 2 },
                EditOp::InsertLeaf {
                    parent_pre: 7,
                    child_idx: 2,
                    label: "b".into(),
                },
            ],
        };
        let (min, stats) = shrink(&case, &mut |c| {
            c.edits
                .iter()
                .any(|op| matches!(op, EditOp::Relabel { .. }))
        });
        assert_eq!(
            min.edits,
            vec![EditOp::Relabel {
                pre: 0,
                label: "a".into()
            }],
            "script must reduce to one fully canonical relabel"
        );
        assert_eq!(min.tree.len(), 1, "tree is noise for this predicate");
        assert!(stats.steps >= 5);
    }

    #[test]
    fn shrinking_is_deterministic() {
        let case = FuzzCase {
            tree: parse_term("r(a(b(c) b) a(c(b)) b(a))").unwrap(),
            query: CaseQuery::XPath(parse_xpath("descendant::*[lab()=b]").unwrap()),
            edits: Vec::new(),
        };
        let mut pred = |c: &FuzzCase| c.tree.nodes().any(|v| c.tree.label_name(v) == "b");
        let (a, sa) = shrink(&case, &mut pred);
        let (b, sb) = shrink(&case, &mut pred);
        assert_eq!(to_term(&a.tree), to_term(&b.tree));
        assert_eq!(a.query.to_string(), b.query.to_string());
        assert_eq!(sa, sb);
    }
}
