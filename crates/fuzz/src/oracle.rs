//! Metamorphic oracles: algebraic laws the engine must satisfy.
//!
//! Where differential testing needs two implementations of the same
//! semantics, a metamorphic law needs only one: it relates the engine's
//! answers on an input and on a *transformed* input. The laws here come
//! straight from the paper:
//!
//! * **forward-rewrite** — the Section 5 upward-axis elimination
//!   preserves the selected node set;
//! * **descendant-unfold** — `Descendant = Child ∘ DescendantOrSelf`,
//!   the transitive-closure unfolding used throughout Section 4;
//! * **self-join** — conjunction is idempotent: duplicating a CQ atom
//!   changes nothing;
//! * **monotone-insert** — positive queries are monotone: appending a
//!   fresh-labelled leaf under the root can only grow the answer
//!   (compared by pre-order rank, which the insertion preserves);
//! * **order-blind** — queries using only vertical axes cannot see
//!   sibling order, so shuffling child lists preserves the answer
//!   *cardinality* and label multiset;
//! * **containment-subset** — deleting a CQ atom relaxes the query, so
//!   the original answer set must be contained in the relaxed one; on
//!   small queries the relaxation is independently confirmed by the
//!   bounded containment check of `cq::containment`;
//! * **insert-delete-identity** — inserting a leaf and deleting it again
//!   through the incremental splice machinery restores the document
//!   byte-identically (term, fingerprint, answers);
//! * **relabel-noop** — relabeling a node to its current primary label
//!   changes nothing;
//! * **disjoint-edits-commute** — edits inside disjoint subtrees yield
//!   the same document and answers in either order.
//!
//! Every law has a `*_with` variant taking a [`Tamper`] that perturbs
//! the *transformed side's* answer before comparison. Unit tests use it
//! to prove each law actually fires on a known-violating mock — a
//! vacuous oracle is worse than none.

use std::collections::BTreeSet;

use rand::rngs::StdRng;

use treequery_core::cq::{bounded_contained, Cq, CqAtom};
use treequery_core::plan::{tree_fingerprint, QueryOutput};
use treequery_core::tree::{to_term, EditOp, EditableTree};
use treequery_core::xpath::{Path, Qual};
use treequery_core::{streaming, Axis, Engine, NodeId, Tree};

use crate::diff::Norm;
use crate::treeops;
use crate::{CaseQuery, FuzzCase};

/// Stable names of all implemented laws, for reports.
pub const LAW_NAMES: [&str; 9] = [
    "forward-rewrite",
    "descendant-unfold",
    "self-join",
    "monotone-insert",
    "order-blind",
    "containment-subset",
    "insert-delete-identity",
    "relabel-noop",
    "disjoint-edits-commute",
];

/// A perturbation applied to the transformed side of a law before
/// comparison; [`Tamper::None`] for real checking.
#[derive(Clone, Copy, Debug, Default)]
pub enum Tamper {
    /// No perturbation (the law is checked for real).
    #[default]
    None,
    /// Drop the last element of the transformed answer.
    DropLast,
    /// Empty the transformed answer entirely.
    Clear,
}

impl Tamper {
    fn apply(self, n: Norm) -> Norm {
        match (self, n) {
            (Tamper::None, n) => n,
            (Tamper::DropLast, Norm::Nodes(mut v)) => {
                v.pop();
                Norm::Nodes(v)
            }
            (Tamper::DropLast, Norm::Tuples(mut t)) => {
                let last = t.iter().next_back().cloned();
                if let Some(last) = last {
                    t.remove(&last);
                }
                Norm::Tuples(t)
            }
            (Tamper::Clear, Norm::Nodes(_)) => Norm::Nodes(Vec::new()),
            (Tamper::Clear, Norm::Tuples(_)) => Norm::Tuples(BTreeSet::new()),
            (_, b @ Norm::Bool(_)) => b,
        }
    }
}

/// A metamorphic law violation.
#[derive(Clone, Debug)]
pub struct LawViolation {
    /// Which law failed (one of [`LAW_NAMES`]).
    pub law: &'static str,
    /// Human-readable description of the failure.
    pub detail: String,
}

impl std::fmt::Display for LawViolation {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "law {} violated: {}", self.law, self.detail)
    }
}

fn eval_norm(tree: &Tree, query: &CaseQuery) -> Norm {
    let engine = Engine::new(tree);
    let out = engine
        .eval_ir(&query.lower())
        .expect("lowered query must evaluate");
    match out {
        QueryOutput::Nodes(v) => Norm::Nodes(v),
        QueryOutput::Answer(a) => Norm::Tuples(a.tuples),
    }
}

/// Maps a node answer to pre-order ranks, the tree-independent currency
/// for comparing answers across a rebuild.
fn pre_ranks(t: &Tree, n: &Norm) -> Norm {
    let rank = |v: NodeId| NodeId(t.pre(v));
    match n {
        Norm::Nodes(v) => Norm::Nodes(v.iter().map(|&x| rank(x)).collect()),
        Norm::Tuples(ts) => Norm::Tuples(
            ts.iter()
                .map(|tup| tup.iter().map(|&x| rank(x)).collect())
                .collect(),
        ),
        Norm::Bool(b) => Norm::Bool(*b),
    }
}

// ---------------------------------------------------------------------
// Law 1: forward-axis rewrite equivalence (Section 5).

/// Checks the forward-rewrite law; `None` when inapplicable or satisfied.
pub fn check_forward_rewrite(case: &FuzzCase) -> Option<LawViolation> {
    check_forward_rewrite_with(case, Tamper::None)
}

/// Tamperable variant of [`check_forward_rewrite`].
pub fn check_forward_rewrite_with(case: &FuzzCase, tamper: Tamper) -> Option<LawViolation> {
    let CaseQuery::XPath(p) = &case.query else {
        return None;
    };
    let fwd = streaming::eliminate_upward(p)?;
    let lhs = eval_norm(&case.tree, &CaseQuery::XPath(p.clone()));
    let rhs = tamper.apply(eval_norm(&case.tree, &CaseQuery::XPath(fwd.clone())));
    (!rhs.agrees(&lhs)).then(|| LawViolation {
        law: "forward-rewrite",
        detail: format!("`{p}` vs its forward rewrite `{fwd}`"),
    })
}

// ---------------------------------------------------------------------
// Law 2: descendant = child ∘ descendant-or-self.

fn unfold_path(p: &Path) -> (Path, bool) {
    match p {
        Path::Step { axis, quals } => {
            let (quals, changed): (Vec<Qual>, Vec<bool>) = quals.iter().map(unfold_qual).unzip();
            if *axis == Axis::Descendant {
                (
                    Path::step(Axis::Child).then(Path::Step {
                        axis: Axis::DescendantOrSelf,
                        quals,
                    }),
                    true,
                )
            } else {
                (
                    Path::Step { axis: *axis, quals },
                    changed.iter().any(|&c| c),
                )
            }
        }
        Path::Seq(a, b) => {
            let (a, ca) = unfold_path(a);
            let (b, cb) = unfold_path(b);
            (a.then(b), ca || cb)
        }
        Path::Union(a, b) => {
            let (a, ca) = unfold_path(a);
            let (b, cb) = unfold_path(b);
            (a.union(b), ca || cb)
        }
    }
}

fn unfold_qual(q: &Qual) -> (Qual, bool) {
    match q {
        Qual::Path(p) => {
            let (p, c) = unfold_path(p);
            (Qual::Path(p), c)
        }
        Qual::Label(l) => (Qual::Label(l.clone()), false),
        Qual::And(a, b) => {
            let (a, ca) = unfold_qual(a);
            let (b, cb) = unfold_qual(b);
            (Qual::And(Box::new(a), Box::new(b)), ca || cb)
        }
        Qual::Or(a, b) => {
            let (a, ca) = unfold_qual(a);
            let (b, cb) = unfold_qual(b);
            (Qual::Or(Box::new(a), Box::new(b)), ca || cb)
        }
        Qual::Not(inner) => {
            let (inner, c) = unfold_qual(inner);
            (Qual::Not(Box::new(inner)), c)
        }
    }
}

fn unfold_cq(q: &Cq) -> Option<Cq> {
    let i = q
        .atoms
        .iter()
        .position(|a| matches!(a, CqAtom::Axis(Axis::Descendant, _, _)))?;
    let CqAtom::Axis(_, x, y) = q.atoms[i] else {
        return None;
    };
    let mut out = q.clone();
    let z = out.add_var(format!("u{}", out.num_vars()));
    out.atoms[i] = CqAtom::Axis(Axis::Child, x, z);
    out.atoms.push(CqAtom::Axis(Axis::DescendantOrSelf, z, y));
    Some(out)
}

/// Checks the descendant-unfolding law (XPath and CQ).
pub fn check_descendant_unfold(case: &FuzzCase) -> Option<LawViolation> {
    check_descendant_unfold_with(case, Tamper::None)
}

/// Tamperable variant of [`check_descendant_unfold`].
pub fn check_descendant_unfold_with(case: &FuzzCase, tamper: Tamper) -> Option<LawViolation> {
    let (unfolded, desc) = match &case.query {
        CaseQuery::XPath(p) => {
            let (u, changed) = unfold_path(p);
            if !changed {
                return None;
            }
            (CaseQuery::XPath(u), p.to_string())
        }
        CaseQuery::Cq(q) => {
            let u = unfold_cq(q)?;
            (CaseQuery::Cq(u), crate::corpus::render_cq(q))
        }
        CaseQuery::Datalog(_) => return None,
    };
    let lhs = eval_norm(&case.tree, &case.query);
    // The CQ unfolding adds a fresh variable but never touches the head,
    // so the projected tuples stay directly comparable.
    let rhs = tamper.apply(eval_norm(&case.tree, &unfolded));
    (!rhs.agrees(&lhs)).then(|| LawViolation {
        law: "descendant-unfold",
        detail: format!("`{desc}` vs its child∘descendant-or-self unfolding"),
    })
}

// ---------------------------------------------------------------------
// Law 3: self-join idempotence (CQ).

/// Checks self-join idempotence: duplicating an atom changes nothing.
pub fn check_self_join(case: &FuzzCase) -> Option<LawViolation> {
    check_self_join_with(case, Tamper::None)
}

/// Tamperable variant of [`check_self_join`].
pub fn check_self_join_with(case: &FuzzCase, tamper: Tamper) -> Option<LawViolation> {
    let CaseQuery::Cq(q) = &case.query else {
        return None;
    };
    let first = q.atoms.first()?.clone();
    let mut doubled = q.clone();
    doubled.atoms.push(first);
    let lhs = eval_norm(&case.tree, &case.query);
    let rhs = tamper.apply(eval_norm(&case.tree, &CaseQuery::Cq(doubled)));
    (!rhs.agrees(&lhs)).then(|| LawViolation {
        law: "self-join",
        detail: format!(
            "`{}` changed answers when an atom was duplicated",
            crate::corpus::render_cq(q)
        ),
    })
}

// ---------------------------------------------------------------------
// Law 4: monotonicity under subtree insertion.

fn cq_is_monotone(q: &Cq) -> bool {
    // `Leaf` is the only non-monotone CQ atom under leaf insertion.
    !q.atoms.iter().any(|a| matches!(a, CqAtom::Leaf(_)))
}

/// Checks monotonicity: a fresh-labelled leaf appended under the root
/// may only grow a positive query's answer.
pub fn check_monotone_insert(case: &FuzzCase) -> Option<LawViolation> {
    check_monotone_insert_with(case, Tamper::None)
}

/// Tamperable variant of [`check_monotone_insert`].
pub fn check_monotone_insert_with(case: &FuzzCase, tamper: Tamper) -> Option<LawViolation> {
    let applicable = match &case.query {
        CaseQuery::XPath(p) => p.is_positive(),
        CaseQuery::Cq(q) => cq_is_monotone(q),
        CaseQuery::Datalog(_) => false,
    };
    if !applicable {
        return None;
    }
    // The label must be fresh so no label atom can newly match it.
    let grown = treeops::append_leaf_to_root(&case.tree, "fresh-leaf-label");
    let before = pre_ranks(&case.tree, &eval_norm(&case.tree, &case.query));
    let after = tamper.apply(pre_ranks(&grown, &eval_norm(&grown, &case.query)));
    let subset = match (&before, &after) {
        (Norm::Nodes(a), Norm::Nodes(b)) => {
            let bs: BTreeSet<_> = b.iter().collect();
            a.iter().all(|x| bs.contains(x))
        }
        (Norm::Tuples(a), Norm::Tuples(b)) => a.is_subset(b),
        _ => true,
    };
    (!subset).then(|| LawViolation {
        law: "monotone-insert",
        detail: format!("`{}` lost answers after a leaf insertion", case.query),
    })
}

// ---------------------------------------------------------------------
// Law 5: order-blindness of vertical-axis queries.

const VERTICAL: [Axis; 7] = [
    Axis::SelfAxis,
    Axis::Child,
    Axis::Parent,
    Axis::Descendant,
    Axis::DescendantOrSelf,
    Axis::Ancestor,
    Axis::AncestorOrSelf,
];

fn path_is_vertical(p: &Path) -> bool {
    match p {
        Path::Step { axis, quals } => VERTICAL.contains(axis) && quals.iter().all(qual_is_vertical),
        Path::Seq(a, b) | Path::Union(a, b) => path_is_vertical(a) && path_is_vertical(b),
    }
}

fn qual_is_vertical(q: &Qual) -> bool {
    match q {
        Qual::Path(p) => path_is_vertical(p),
        Qual::Label(_) => true,
        Qual::And(a, b) | Qual::Or(a, b) => qual_is_vertical(a) && qual_is_vertical(b),
        Qual::Not(inner) => qual_is_vertical(inner),
    }
}

fn cq_is_vertical(q: &Cq) -> bool {
    q.atoms.iter().all(|a| match a {
        CqAtom::Axis(ax, _, _) => VERTICAL.contains(ax),
        CqAtom::PreLt(..) => false,
        _ => true,
    })
}

/// The order-invariant fingerprint of an answer: cardinality plus the
/// sorted multiset of answer labels (node identities change under a
/// shuffle, labels do not).
fn order_blind_key(t: &Tree, n: &Norm) -> (usize, Vec<String>) {
    match n {
        Norm::Nodes(v) => {
            let mut labels: Vec<String> = v.iter().map(|&x| t.label_name(x).to_owned()).collect();
            labels.sort();
            (v.len(), labels)
        }
        Norm::Tuples(ts) => {
            let mut labels: Vec<String> = ts
                .iter()
                .map(|tup| {
                    tup.iter()
                        .map(|&x| t.label_name(x).to_owned())
                        .collect::<Vec<_>>()
                        .join(",")
                })
                .collect();
            labels.sort();
            (ts.len(), labels)
        }
        Norm::Bool(b) => (usize::from(*b), Vec::new()),
    }
}

/// Checks order-blindness: sibling shuffles cannot change the answer of
/// a query that only uses vertical axes.
pub fn check_order_blind(case: &FuzzCase, rng: &mut StdRng) -> Option<LawViolation> {
    check_order_blind_with(case, rng, Tamper::None)
}

/// Tamperable variant of [`check_order_blind`].
pub fn check_order_blind_with(
    case: &FuzzCase,
    rng: &mut StdRng,
    tamper: Tamper,
) -> Option<LawViolation> {
    let applicable = match &case.query {
        CaseQuery::XPath(p) => path_is_vertical(p),
        CaseQuery::Cq(q) => cq_is_vertical(q),
        CaseQuery::Datalog(_) => false,
    };
    if !applicable {
        return None;
    }
    let shuffled = treeops::shuffle_children(&case.tree, rng);
    let before = eval_norm(&case.tree, &case.query);
    let after = tamper.apply(eval_norm(&shuffled, &case.query));
    let same = order_blind_key(&case.tree, &before) == order_blind_key(&shuffled, &after);
    (!same).then(|| LawViolation {
        law: "order-blind",
        detail: format!("`{}` changed answers under a sibling shuffle", case.query),
    })
}

// ---------------------------------------------------------------------
// Law 6: containment implies subset (CQ).

/// Checks containment: deleting a body atom relaxes the query, so the
/// original answers must survive. On small queries the relaxation is
/// double-checked with `cq::bounded_contained`.
pub fn check_containment_subset(case: &FuzzCase) -> Option<LawViolation> {
    check_containment_subset_with(case, Tamper::None)
}

/// Tamperable variant of [`check_containment_subset`].
pub fn check_containment_subset_with(case: &FuzzCase, tamper: Tamper) -> Option<LawViolation> {
    let CaseQuery::Cq(q) = &case.query else {
        return None;
    };
    if q.atoms.len() < 2 {
        return None;
    }
    // Delete the first atom whose removal keeps every head variable
    // covered by some remaining atom.
    let mut relaxed = None;
    for i in 0..q.atoms.len() {
        let mut cand = q.clone();
        cand.atoms.remove(i);
        let covered: BTreeSet<_> = cand.atoms.iter().flat_map(|a| a.vars()).collect();
        if cand.head.iter().all(|v| covered.contains(v)) {
            relaxed = Some(crate::compact_cq(&cand));
            break;
        }
    }
    let relaxed = relaxed?;
    let lhs = eval_norm(&case.tree, &case.query);
    let rhs = tamper.apply(eval_norm(&case.tree, &CaseQuery::Cq(relaxed.clone())));
    let subset = match (&lhs, &rhs) {
        (Norm::Tuples(a), Norm::Tuples(b)) => a.is_subset(b),
        _ => true,
    };
    if !subset {
        return Some(LawViolation {
            law: "containment-subset",
            detail: format!(
                "`{}` not contained in its atom-deleted relaxation",
                crate::corpus::render_cq(q)
            ),
        });
    }
    // Independent confirmation on small queries: the bounded containment
    // decision procedure must agree that q ⊆ relaxed.
    if q.num_vars() <= 2 && q.size() <= 4 {
        let alphabet = ["a", "b"];
        if let Some(cex) = bounded_contained(q, &relaxed, 3, &alphabet) {
            return Some(LawViolation {
                law: "containment-subset",
                detail: format!(
                    "bounded_contained found a counterexample tree `{}` to q ⊆ relax(q)",
                    treequery_core::tree::to_term(&cex.tree)
                ),
            });
        }
    }
    None
}

// ---------------------------------------------------------------------
// Edit-script laws (7–9): the paper's structures made mutable. These
// generalize the monotone-insertion law to deletes and relabels — the
// transformed side is now an *incrementally edited* document
// ([`EditableTree`] splices, not a from-scratch rebuild), so a violation
// implicates the splice machinery itself, not just an evaluator.

/// The label inserted by identity/commutation laws — outside every
/// generator alphabet, so no label atom can newly match it by accident.
const EDIT_LAW_LABEL: &str = "fresh-edit-label";

/// Checks insert-then-delete identity: inserting a leaf and deleting it
/// again must restore the document *byte-identically* — same term
/// rendering, same tree fingerprint, same answers (same node ids: the
/// deleted id was the freshly appended one, so compaction is the
/// identity on every original node).
pub fn check_insert_delete_identity(case: &FuzzCase) -> Option<LawViolation> {
    check_insert_delete_identity_with(case, Tamper::None)
}

/// Tamperable variant of [`check_insert_delete_identity`].
pub fn check_insert_delete_identity_with(case: &FuzzCase, tamper: Tamper) -> Option<LawViolation> {
    let mut et = EditableTree::new(case.tree.clone());
    let n = case.tree.len() as u32;
    let delta = et.apply(&EditOp::InsertLeaf {
        parent_pre: n / 2,
        child_idx: 0,
        label: EDIT_LAW_LABEL.to_owned(),
    })?;
    et.apply(&EditOp::DeleteSubtree {
        pre: delta.pre_range.0,
    })
    .expect("deleting the freshly inserted non-root leaf is always effective");
    let fail = |what: &str| {
        Some(LawViolation {
            law: "insert-delete-identity",
            detail: format!("insert∘delete round-trip changed the {what}"),
        })
    };
    if to_term(et.tree()) != to_term(&case.tree) {
        return fail("term rendering");
    }
    if tree_fingerprint(et.tree()) != tree_fingerprint(&case.tree) {
        return fail("tree fingerprint");
    }
    let lhs = eval_norm(&case.tree, &case.query);
    let rhs = tamper.apply(eval_norm(et.tree(), &case.query));
    (rhs != lhs).then(|| LawViolation {
        law: "insert-delete-identity",
        detail: format!(
            "`{}` answers not byte-identical after insert∘delete",
            case.query
        ),
    })
}

/// Checks that relabeling a node to its current primary label is a
/// complete no-op: same term, same fingerprint, byte-identical answers.
pub fn check_relabel_noop(case: &FuzzCase) -> Option<LawViolation> {
    check_relabel_noop_with(case, Tamper::None)
}

/// Tamperable variant of [`check_relabel_noop`].
pub fn check_relabel_noop_with(case: &FuzzCase, tamper: Tamper) -> Option<LawViolation> {
    let target = case.tree.len() as u32 / 3;
    let label = case
        .tree
        .label_name(case.tree.node_at_pre(target))
        .to_owned();
    let mut et = EditableTree::new(case.tree.clone());
    et.apply(&EditOp::Relabel { pre: target, label })
        .expect("relabel is always effective");
    let fail = |what: &str| {
        Some(LawViolation {
            law: "relabel-noop",
            detail: format!("relabel-to-same-label changed the {what}"),
        })
    };
    if to_term(et.tree()) != to_term(&case.tree) {
        return fail("term rendering");
    }
    if tree_fingerprint(et.tree()) != tree_fingerprint(&case.tree) {
        return fail("tree fingerprint");
    }
    let lhs = eval_norm(&case.tree, &case.query);
    let rhs = tamper.apply(eval_norm(et.tree(), &case.query));
    (rhs != lhs).then(|| LawViolation {
        law: "relabel-noop",
        detail: format!(
            "`{}` answers not byte-identical after a no-op relabel",
            case.query
        ),
    })
}

/// Checks that edits in disjoint subtrees commute: a relabel inside the
/// root's first child subtree and an insert inside its last child
/// subtree yield the same document — and the same answers — in either
/// order. Inapplicable when the root has fewer than two children.
pub fn check_disjoint_edits_commute(case: &FuzzCase) -> Option<LawViolation> {
    check_disjoint_edits_commute_with(case, Tamper::None)
}

/// Tamperable variant of [`check_disjoint_edits_commute`].
pub fn check_disjoint_edits_commute_with(case: &FuzzCase, tamper: Tamper) -> Option<LawViolation> {
    let t = &case.tree;
    let kids: Vec<NodeId> = t.children(t.root()).collect();
    if kids.len() < 2 {
        return None;
    }
    // The relabel site precedes the insert site in document order, so
    // neither op shifts the other's pre-rank address in either order.
    let op_a = EditOp::Relabel {
        pre: t.pre(kids[0]),
        label: EDIT_LAW_LABEL.to_owned(),
    };
    let op_b = EditOp::InsertLeaf {
        parent_pre: t.pre(kids[kids.len() - 1]),
        child_idx: 0,
        label: EDIT_LAW_LABEL.to_owned(),
    };
    let mut ab = EditableTree::new(t.clone());
    ab.apply(&op_a).expect("relabel is always effective");
    ab.apply(&op_b).expect("insert is always effective");
    let mut ba = EditableTree::new(t.clone());
    ba.apply(&op_b).expect("insert is always effective");
    ba.apply(&op_a).expect("relabel is always effective");
    if to_term(ab.tree()) != to_term(ba.tree()) {
        return Some(LawViolation {
            law: "disjoint-edits-commute",
            detail: "disjoint-subtree edits produced different documents per order".into(),
        });
    }
    let lhs = pre_ranks(ab.tree(), &eval_norm(ab.tree(), &case.query));
    let rhs = tamper.apply(pre_ranks(ba.tree(), &eval_norm(ba.tree(), &case.query)));
    (!rhs.agrees(&lhs)).then(|| LawViolation {
        law: "disjoint-edits-commute",
        detail: format!(
            "`{}` answers depend on the order of disjoint-subtree edits",
            case.query
        ),
    })
}

/// Runs every law applicable to `case`, returning the first violation
/// and the number of law checks that actually ran.
pub fn check_laws(case: &FuzzCase, rng: &mut StdRng) -> (Option<LawViolation>, usize) {
    let mut checks = 0;
    let mut run = |v: Option<LawViolation>| -> Option<LawViolation> {
        checks += 1;
        v
    };
    let violation = run(check_forward_rewrite(case))
        .or_else(|| run(check_descendant_unfold(case)))
        .or_else(|| run(check_self_join(case)))
        .or_else(|| run(check_monotone_insert(case)))
        .or_else(|| run(check_order_blind(case, rng)))
        .or_else(|| run(check_containment_subset(case)))
        .or_else(|| run(check_insert_delete_identity(case)))
        .or_else(|| run(check_relabel_noop(case)))
        .or_else(|| run(check_disjoint_edits_commute(case)));
    (violation, checks)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::gen::{gen_case, Category, GenConfig};
    use rand::SeedableRng;
    use treequery_core::cq::parse_cq;
    use treequery_core::parse_term;
    use treequery_core::xpath::parse_xpath;

    fn tree() -> Tree {
        parse_term("r(a(b(c) b) a(c(b)) b(a))").unwrap()
    }

    fn xpath_case(q: &str) -> FuzzCase {
        FuzzCase {
            tree: tree(),
            query: CaseQuery::XPath(parse_xpath(q).unwrap()),
            edits: Vec::new(),
        }
    }

    fn cq_case(q: &str) -> FuzzCase {
        FuzzCase {
            tree: tree(),
            query: CaseQuery::Cq(parse_cq(q).unwrap()),
            edits: Vec::new(),
        }
    }

    #[test]
    fn laws_hold_on_generated_inputs() {
        let cfg = GenConfig::default();
        let mut rng = StdRng::seed_from_u64(77);
        for i in 0..60 {
            let cat = if i % 2 == 0 {
                Category::XPathLaws
            } else {
                Category::CqLaws
            };
            let case = gen_case(&mut rng, &cfg, cat);
            let (v, _) = check_laws(&case, &mut rng);
            assert!(v.is_none(), "violation on `{}`: {}", case.query, v.unwrap());
        }
    }

    // Each law must fire on a known-violating mock: the tamper corrupts
    // the transformed side exactly as a buggy engine would.

    #[test]
    fn forward_rewrite_fires_on_violation() {
        let case = xpath_case("descendant::*[lab()=b]/parent::*");
        assert!(check_forward_rewrite(&case).is_none());
        let v = check_forward_rewrite_with(&case, Tamper::DropLast);
        assert_eq!(v.expect("must fire").law, "forward-rewrite");
    }

    #[test]
    fn descendant_unfold_fires_on_violation() {
        let case = xpath_case("descendant::*[lab()=b]");
        assert!(check_descendant_unfold(&case).is_none());
        let v = check_descendant_unfold_with(&case, Tamper::DropLast);
        assert_eq!(v.expect("must fire").law, "descendant-unfold");

        let case = cq_case("q(x) :- descendant(y, x), label(x, b).");
        assert!(check_descendant_unfold(&case).is_none());
        let v = check_descendant_unfold_with(&case, Tamper::Clear);
        assert_eq!(v.expect("must fire").law, "descendant-unfold");
    }

    #[test]
    fn self_join_fires_on_violation() {
        let case = cq_case("q(x) :- child(y, x), label(x, b).");
        assert!(check_self_join(&case).is_none());
        let v = check_self_join_with(&case, Tamper::DropLast);
        assert_eq!(v.expect("must fire").law, "self-join");
    }

    #[test]
    fn monotone_insert_fires_on_violation() {
        let case = xpath_case("descendant::*[lab()=a]");
        assert!(check_monotone_insert(&case).is_none());
        let v = check_monotone_insert_with(&case, Tamper::Clear);
        assert_eq!(v.expect("must fire").law, "monotone-insert");
    }

    #[test]
    fn order_blind_fires_on_violation() {
        let case = xpath_case("child::*/child::*[lab()=b]");
        let mut rng = StdRng::seed_from_u64(5);
        assert!(check_order_blind(&case, &mut rng).is_none());
        let mut rng = StdRng::seed_from_u64(5);
        let v = check_order_blind_with(&case, &mut rng, Tamper::DropLast);
        assert_eq!(v.expect("must fire").law, "order-blind");
    }

    #[test]
    fn containment_subset_fires_on_violation() {
        let case = cq_case("q(x) :- child(y, x), label(x, b).");
        assert!(check_containment_subset(&case).is_none());
        let v = check_containment_subset_with(&case, Tamper::Clear);
        assert_eq!(v.expect("must fire").law, "containment-subset");
    }

    #[test]
    fn insert_delete_identity_fires_on_violation() {
        let case = xpath_case("descendant::*[lab()=b]");
        assert!(check_insert_delete_identity(&case).is_none());
        let v = check_insert_delete_identity_with(&case, Tamper::DropLast);
        assert_eq!(v.expect("must fire").law, "insert-delete-identity");

        // Byte-identity is stricter than set agreement: Clear fires too,
        // and on a datalog case (the law spans all three front-ends).
        let case = FuzzCase {
            tree: tree(),
            query: CaseQuery::Datalog(
                treequery_core::datalog::parse_program("P(x) :- label(x, b). ?- P.").unwrap(),
            ),
            edits: Vec::new(),
        };
        assert!(check_insert_delete_identity(&case).is_none());
        let v = check_insert_delete_identity_with(&case, Tamper::Clear);
        assert_eq!(v.expect("must fire").law, "insert-delete-identity");
    }

    #[test]
    fn relabel_noop_fires_on_violation() {
        let case = cq_case("q(x) :- child(y, x), label(x, b).");
        assert!(check_relabel_noop(&case).is_none());
        let v = check_relabel_noop_with(&case, Tamper::DropLast);
        assert_eq!(v.expect("must fire").law, "relabel-noop");
    }

    #[test]
    fn disjoint_edits_commute_fires_on_violation() {
        let case = xpath_case("descendant::*[lab()=b]");
        assert!(check_disjoint_edits_commute(&case).is_none());
        let v = check_disjoint_edits_commute_with(&case, Tamper::DropLast);
        assert_eq!(v.expect("must fire").law, "disjoint-edits-commute");
    }

    #[test]
    fn disjoint_edits_law_skips_single_child_roots() {
        let case = FuzzCase {
            tree: parse_term("r(a(b(c)))").unwrap(),
            query: CaseQuery::XPath(parse_xpath("descendant::*").unwrap()),
            edits: Vec::new(),
        };
        // One root child: no disjoint subtree pair, even tampered.
        assert!(check_disjoint_edits_commute_with(&case, Tamper::Clear).is_none());
    }

    #[test]
    fn edit_laws_hold_on_generated_edit_cases() {
        let cfg = GenConfig::default();
        let mut rng = StdRng::seed_from_u64(99);
        for _ in 0..40 {
            let case = gen_case(&mut rng, &cfg, Category::EditDiff);
            for v in [
                check_insert_delete_identity(&case),
                check_relabel_noop(&case),
                check_disjoint_edits_commute(&case),
            ] {
                assert!(v.is_none(), "violation on `{}`: {}", case.query, v.unwrap());
            }
        }
    }

    #[test]
    fn non_monotone_queries_are_skipped() {
        let case = xpath_case("child::*[not(lab()=a)]");
        // Not positive, so the law must not apply (even tampered).
        assert!(check_monotone_insert_with(&case, Tamper::Clear).is_none());
    }
}
