//! Seed-deterministic, structure-aware input generators.
//!
//! Every generated input is valid by construction: trees come out of
//! [`TreeBuilder`], queries are built directly in their ASTs. The same
//! [`StdRng`] state always yields the same input, which is what makes a
//! whole campaign replayable from a single seed.

use rand::rngs::StdRng;
use rand::seq::SliceRandom;
use rand::Rng;

use treequery_core::cq::{Cq, CqAtom};
use treequery_core::datalog::{parse_program, Program};
use treequery_core::tree::{EditOp, TreeBuilder};
use treequery_core::xpath::{Path, Qual};
use treequery_core::{Axis, Tree};

use crate::{CaseQuery, FuzzCase};

/// Size and shape bounds for generated inputs.
///
/// The defaults keep every case cheap enough that the worst applicable
/// strategy (exponential backtracking for cyclic CQs) still runs in
/// microseconds, so a campaign's throughput is dominated by the number
/// of strategies, not by pathological single inputs.
#[derive(Clone, Debug)]
pub struct GenConfig {
    /// Maximum tree size in nodes (inclusive).
    pub max_nodes: usize,
    /// Node label alphabet.
    pub alphabet: Vec<String>,
    /// Maximum nesting depth for XPath qualifier sub-paths.
    pub xpath_depth: u32,
    /// Maximum number of CQ variables.
    pub cq_max_vars: usize,
    /// Maximum number of CQ atoms.
    pub cq_max_atoms: usize,
    /// Maximum number of datalog predicates.
    pub dl_max_preds: usize,
    /// Maximum edit-script length for edit-diff cases.
    pub max_edits: usize,
}

impl Default for GenConfig {
    fn default() -> Self {
        GenConfig {
            max_nodes: 24,
            alphabet: vec!["a".into(), "b".into(), "c".into()],
            xpath_depth: 2,
            cq_max_vars: 3,
            cq_max_atoms: 5,
            dl_max_preds: 3,
            max_edits: 6,
        }
    }
}

impl GenConfig {
    pub(crate) fn label(&self, rng: &mut StdRng) -> String {
        self.alphabet
            .choose(rng)
            .expect("alphabet must not be empty")
            .clone()
    }
}

/// The six fuzzing categories a campaign rotates through.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Category {
    /// XPath inputs cross-checked across strategies and worker counts.
    XPathDiff,
    /// CQ inputs cross-checked across strategies and worker counts.
    CqDiff,
    /// Datalog inputs cross-checked (semi-naive / naive / TMNF).
    DatalogDiff,
    /// XPath inputs checked against the metamorphic laws.
    XPathLaws,
    /// CQ inputs checked against the metamorphic laws.
    CqLaws,
    /// Edit scripts: after each op of a script the incrementally
    /// maintained document (strategies × worker counts, XASR patching,
    /// the datalog delta pass) is cross-checked against a from-scratch
    /// rebuild oracle.
    EditDiff,
}

impl Category {
    /// All categories, in campaign rotation order.
    pub const ALL: [Category; 6] = [
        Category::XPathDiff,
        Category::CqDiff,
        Category::DatalogDiff,
        Category::XPathLaws,
        Category::CqLaws,
        Category::EditDiff,
    ];

    /// The stable name used in reports and corpus file names.
    pub fn name(self) -> &'static str {
        match self {
            Category::XPathDiff => "xpath-diff",
            Category::CqDiff => "cq-diff",
            Category::DatalogDiff => "datalog-diff",
            Category::XPathLaws => "xpath-laws",
            Category::CqLaws => "cq-laws",
            Category::EditDiff => "edit-diff",
        }
    }
}

/// Generates a random tree: one of four shape families (random-attach,
/// chain, star, binary-ish), with labels drawn from the alphabet.
pub fn gen_tree(rng: &mut StdRng, cfg: &GenConfig) -> Tree {
    let n = rng.gen_range(1..=cfg.max_nodes.max(1));
    let shape = rng.gen_range(0u32..5);
    let mut b = TreeBuilder::with_capacity(n);
    let mut nodes = vec![b.root(&cfg.label(rng))];
    for i in 1..n {
        let parent = match shape {
            // Random attachment: any earlier node.
            0 | 1 => nodes[rng.gen_range(0..i)],
            // Chain: previous node.
            2 => nodes[i - 1],
            // Star: the root.
            3 => nodes[0],
            // Binary-ish: node i hangs off node i/2.
            _ => nodes[(i - 1) / 2],
        };
        nodes.push(b.child(parent, &cfg.label(rng)));
    }
    b.freeze()
}

fn gen_qual(rng: &mut StdRng, cfg: &GenConfig, depth: u32) -> Qual {
    let roll = if depth == 0 {
        0
    } else {
        rng.gen_range(0u32..10)
    };
    match roll {
        0..=4 => Qual::Label(cfg.label(rng)),
        5 | 6 => Qual::Path(gen_path(rng, cfg, depth - 1)),
        7 => Qual::Not(Box::new(gen_qual(rng, cfg, depth - 1))),
        8 => Qual::And(
            Box::new(gen_qual(rng, cfg, depth - 1)),
            Box::new(gen_qual(rng, cfg, depth - 1)),
        ),
        _ => Qual::Or(
            Box::new(gen_qual(rng, cfg, depth - 1)),
            Box::new(gen_qual(rng, cfg, depth - 1)),
        ),
    }
}

fn gen_step(rng: &mut StdRng, cfg: &GenConfig, depth: u32) -> Path {
    let axis = *Axis::ALL.choose(rng).expect("axis list is non-empty");
    let mut quals = Vec::new();
    if rng.gen_bool(0.7) {
        quals.push(Qual::Label(cfg.label(rng)));
    }
    if depth > 0 && rng.gen_bool(0.3) {
        quals.push(gen_qual(rng, cfg, depth));
    }
    Path::Step { axis, quals }
}

fn gen_path(rng: &mut StdRng, cfg: &GenConfig, depth: u32) -> Path {
    let steps = rng.gen_range(1..=3usize);
    let mut p = gen_step(rng, cfg, depth);
    for _ in 1..steps {
        p = p.then(gen_step(rng, cfg, depth));
    }
    if depth > 0 && rng.gen_bool(0.2) {
        p = p.union(gen_path(rng, cfg, depth - 1));
    }
    p
}

/// Generates a random Core XPath expression.
pub fn gen_xpath(rng: &mut StdRng, cfg: &GenConfig) -> Path {
    gen_path(rng, cfg, cfg.xpath_depth)
}

/// Generates a random conjunctive query. The first `nvars - 1` atoms
/// connect each variable to an earlier one (so the query is usually
/// connected); extra atoms may introduce cycles, labels, root/leaf
/// tests, or (rarely) a document-order constraint.
pub fn gen_cq(rng: &mut StdRng, cfg: &GenConfig) -> Cq {
    let nvars = rng.gen_range(1..=cfg.cq_max_vars.max(1));
    let mut q = Cq::new();
    let vars: Vec<_> = (0..nvars).map(|i| q.add_var(format!("x{i}"))).collect();
    for i in 1..nvars {
        let ax = *Axis::ALL.choose(rng).expect("axis list is non-empty");
        let j = rng.gen_range(0..i);
        q.atoms.push(CqAtom::Axis(ax, vars[j], vars[i]));
    }
    let extra = rng.gen_range(0..=cfg.cq_max_atoms.saturating_sub(nvars.saturating_sub(1)));
    for _ in 0..extra {
        let v = *vars.choose(rng).expect("vars is non-empty");
        let atom = match rng.gen_range(0u32..10) {
            0..=3 => CqAtom::Label(cfg.label(rng), v),
            4..=6 => {
                let w = *vars.choose(rng).expect("vars is non-empty");
                let ax = *Axis::ALL.choose(rng).expect("axis list is non-empty");
                CqAtom::Axis(ax, v, w)
            }
            7 => CqAtom::Root(v),
            8 => CqAtom::Leaf(v),
            _ => {
                let w = *vars.choose(rng).expect("vars is non-empty");
                CqAtom::PreLt(v, w)
            }
        };
        q.atoms.push(atom);
    }
    if q.atoms.is_empty() {
        q.atoms.push(CqAtom::Label(cfg.label(rng), vars[0]));
    }
    for &v in &vars {
        if rng.gen_bool(0.5) {
            q.head.push(v);
        }
    }
    q
}

/// Generates a random monadic datalog program by emitting source text
/// and parsing it — the parser is the arbiter of validity, so generated
/// programs exercise exactly the surface syntax users write.
pub fn gen_datalog(rng: &mut StdRng, cfg: &GenConfig) -> Program {
    let npreds = rng.gen_range(1..=cfg.dl_max_preds.max(1));
    let mut text = String::new();
    for i in 0..npreds {
        let nrules = rng.gen_range(1..=2usize);
        for _ in 0..nrules {
            let j = rng.gen_range(0..npreds);
            let body = match rng.gen_range(0u32..8) {
                0 | 1 => format!("label(X, {})", cfg.label(rng)),
                2 => "leaf(X)".to_owned(),
                3 => "root(X)".to_owned(),
                4 => format!("firstchild(X, Y), P{j}(Y)"),
                5 => format!("nextsibling(X, Y), P{j}(Y)"),
                6 => format!("child(X, Y), P{j}(Y)"),
                _ => format!("P{j}(X), label(X, {})", cfg.label(rng)),
            };
            text.push_str(&format!("P{i}(X) :- {body}.\n"));
        }
    }
    text.push_str(&format!("?- P{}.\n", rng.gen_range(0..npreds)));
    parse_program(&text).expect("generated program must parse")
}

/// Generates a random edit script. Addresses are raw `u32`s: the total
/// [`treequery_core::tree::EditOp::normalize`] semantics folds them onto
/// whatever tree the script meets, so scripts survive tree mutation and
/// shrinking without re-validation.
pub fn gen_edit_script(rng: &mut StdRng, cfg: &GenConfig) -> Vec<EditOp> {
    let k = rng.gen_range(1..=cfg.max_edits.max(1));
    let addr_bound = (4 * cfg.max_nodes.max(1)) as u32;
    (0..k)
        .map(|_| match rng.gen_range(0u32..4) {
            // Inserts twice as likely: they keep shrinking scripts from
            // draining the tree to a bare root.
            0 | 1 => EditOp::InsertLeaf {
                parent_pre: rng.gen_range(0..addr_bound),
                child_idx: rng.gen_range(0..4),
                label: cfg.label(rng),
            },
            2 => EditOp::DeleteSubtree {
                pre: rng.gen_range(0..addr_bound),
            },
            _ => EditOp::Relabel {
                pre: rng.gen_range(0..addr_bound),
                label: cfg.label(rng),
            },
        })
        .collect()
}

/// Generates one complete case for a category.
pub fn gen_case(rng: &mut StdRng, cfg: &GenConfig, cat: Category) -> FuzzCase {
    let tree = gen_tree(rng, cfg);
    let query = match cat {
        Category::XPathDiff | Category::XPathLaws => CaseQuery::XPath(gen_xpath(rng, cfg)),
        Category::CqDiff | Category::CqLaws => CaseQuery::Cq(gen_cq(rng, cfg)),
        Category::DatalogDiff => CaseQuery::Datalog(gen_datalog(rng, cfg)),
        // Edit scripts rotate through all three front-ends, so every
        // language's strategies get re-checked against mutated documents.
        Category::EditDiff => match rng.gen_range(0u32..3) {
            0 => CaseQuery::XPath(gen_xpath(rng, cfg)),
            1 => CaseQuery::Cq(gen_cq(rng, cfg)),
            _ => CaseQuery::Datalog(gen_datalog(rng, cfg)),
        },
    };
    let edits = if cat == Category::EditDiff {
        gen_edit_script(rng, cfg)
    } else {
        Vec::new()
    };
    FuzzCase { tree, query, edits }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;

    #[test]
    fn generators_are_seed_deterministic() {
        let cfg = GenConfig::default();
        for cat in Category::ALL {
            let a = gen_case(&mut StdRng::seed_from_u64(42), &cfg, cat);
            let b = gen_case(&mut StdRng::seed_from_u64(42), &cfg, cat);
            assert_eq!(
                treequery_core::tree::to_term(&a.tree),
                treequery_core::tree::to_term(&b.tree)
            );
            assert_eq!(a.query.to_string(), b.query.to_string());
            assert_eq!(a.edits, b.edits);
        }
    }

    #[test]
    fn edit_scripts_respect_bounds_and_only_edit_diff_has_them() {
        let cfg = GenConfig::default();
        let mut rng = StdRng::seed_from_u64(6);
        for i in 0..120 {
            let cat = Category::ALL[i % Category::ALL.len()];
            let case = gen_case(&mut rng, &cfg, cat);
            if cat == Category::EditDiff {
                assert!(!case.edits.is_empty() && case.edits.len() <= cfg.max_edits);
            } else {
                assert!(case.edits.is_empty());
            }
        }
    }

    #[test]
    fn generated_trees_respect_bounds() {
        let cfg = GenConfig::default();
        let mut rng = StdRng::seed_from_u64(1);
        for _ in 0..200 {
            let t = gen_tree(&mut rng, &cfg);
            assert!(!t.is_empty() && t.len() <= cfg.max_nodes);
        }
    }

    #[test]
    fn generated_queries_lower_cleanly() {
        let cfg = GenConfig::default();
        let mut rng = StdRng::seed_from_u64(2);
        for i in 0..100 {
            let cat = Category::ALL[i % Category::ALL.len()];
            let case = gen_case(&mut rng, &cfg, cat);
            let ir = case.query.lower();
            assert!(!treequery_core::applicable_strategies(&ir).is_empty());
        }
    }
}
