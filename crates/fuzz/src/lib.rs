#![warn(missing_docs)]

//! `treequery-fuzz`: structure-aware differential fuzzing and metamorphic
//! conformance testing for the treequery engine.
//!
//! The crate closes the loop between the paper's *many* evaluation
//! strategies (Koch, *Processing Queries on Tree-Structured Data
//! Efficiently*, PODS 2006) and the single semantics they all claim to
//! implement. It has five layers:
//!
//! 1. **Generators** ([`gen`]): seed-deterministic, grammar-level
//!    generators for trees, Core XPath, conjunctive queries, and monadic
//!    datalog programs — every input is valid by construction.
//! 2. **Mutators** ([`mutate`]): structure-aware mutations (axis swap,
//!    predicate insert/delete, label rename, subtree splice) that keep
//!    inputs well-formed while exploring the grammar neighbourhood.
//! 3. **Differential executor** ([`diff`]): runs one input through every
//!    applicable strategy (via [`treequery_core::plan::applicable_strategies`]
//!    and `Engine::eval_ir_via`), across worker counts, plus the streaming
//!    path for XPath and the naive/TMNF cross-checks for datalog, and
//!    reports any disagreement.
//! 4. **Metamorphic oracles** ([`oracle`]): algebraic laws from the paper
//!    (forward-axis rewrite equivalence, `descendant = child⁺` unfolding,
//!    self-join idempotence, monotonicity under subtree insertion,
//!    order-blindness, containment-implies-subset) checked on inputs for
//!    which no second implementation exists.
//! 5. **Shrinker + corpus** ([`mod@shrink`], [`corpus`]): failing inputs are
//!    minimized by deterministic greedy delta-debugging and persisted as
//!    human-readable `.case` files that ordinary `cargo test` replays.
//!
//! [`campaign`] ties the layers into a seed-deterministic fuzzing
//! campaign: the same seed yields the same inputs, the same checks, and
//! the same summary, so a CI failure is reproducible on any machine.

pub mod campaign;
pub mod corpus;
pub mod diff;
pub mod gen;
pub mod mutate;
pub mod oracle;
pub mod shrink;
pub mod treeops;

use std::fmt;

use treequery_core::plan::ir::{lower_cq, lower_path, lower_program};
use treequery_core::tree::EditOp;
use treequery_core::{cq, datalog, xpath, QueryIr, Tree};

pub use campaign::{run_campaign, CampaignConfig, CampaignReport, CategoryStats};
pub use corpus::{
    case_file_name, load_case, load_dir, parse_case, render_case, render_cq, render_program,
    replay, save_case, Reproducer,
};
pub use diff::{
    differential_check, edit_differential_check, Corruption, CorruptionKind, DiffOptions,
    Discrepancy, Norm,
};
pub use gen::{
    gen_case, gen_cq, gen_datalog, gen_edit_script, gen_tree, gen_xpath, Category, GenConfig,
};
pub use mutate::mutate_case;
pub use oracle::{check_laws, LawViolation, Tamper, LAW_NAMES};
pub use shrink::{shrink, ShrinkStats};

/// Rebuilds a CQ keeping only variables that occur in an atom or the
/// head. Atom deletion (mutation, shrinking, containment relaxation)
/// can orphan a variable; the evaluation strategies differ in how they
/// treat variables constrained by nothing, so the fuzzer never emits
/// them.
pub fn compact_cq(q: &cq::Cq) -> cq::Cq {
    let live = q.live_vars();
    let mut out = cq::Cq::new();
    let mut map = std::collections::BTreeMap::new();
    for v in &live {
        map.insert(*v, out.add_var(q.var_name(*v)));
    }
    out.atoms = q.atoms.iter().map(|a| a.map_vars(|v| map[&v])).collect();
    out.head = q.head.iter().map(|v| map[v]).collect();
    out
}

/// A query in whichever of the three front-end languages it was generated.
#[derive(Clone, Debug)]
pub enum CaseQuery {
    /// A Core XPath path expression.
    XPath(xpath::Path),
    /// A conjunctive query.
    Cq(cq::Cq),
    /// A monadic datalog program.
    Datalog(datalog::Program),
}

impl CaseQuery {
    /// The language tag used in the corpus format.
    pub fn lang(&self) -> &'static str {
        match self {
            CaseQuery::XPath(_) => "xpath",
            CaseQuery::Cq(_) => "cq",
            CaseQuery::Datalog(_) => "datalog",
        }
    }

    /// Query size (AST nodes / atoms / program size) — the shrinker's
    /// progress measure on the query side.
    pub fn size(&self) -> usize {
        match self {
            CaseQuery::XPath(p) => p.size(),
            CaseQuery::Cq(q) => q.size(),
            CaseQuery::Datalog(p) => p.size(),
        }
    }

    /// Lowers the query to the engine's shared IR.
    pub fn lower(&self) -> QueryIr {
        match self {
            CaseQuery::XPath(p) => lower_path(p),
            CaseQuery::Cq(q) => lower_cq(q),
            CaseQuery::Datalog(p) => lower_program(p),
        }
    }
}

impl fmt::Display for CaseQuery {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CaseQuery::XPath(p) => write!(f, "{p}"),
            CaseQuery::Cq(q) => write!(f, "{}", corpus::render_cq(q)),
            CaseQuery::Datalog(p) => write!(f, "{}", corpus::render_program(p)),
        }
    }
}

/// One fuzzing input: a tree, a query against it, and (for edit-script
/// cases) a script of mutations replayed between re-evaluations.
#[derive(Clone, Debug)]
pub struct FuzzCase {
    /// The data tree.
    pub tree: Tree,
    /// The query, in its original front-end language.
    pub query: CaseQuery,
    /// An edit script applied one op at a time, re-checking after each
    /// op (empty for classic single-shot cases). Ops address nodes by
    /// pre rank and are total after [`EditOp::normalize`], so dropping
    /// any prefix or subset during shrinking leaves a valid script.
    pub edits: Vec<EditOp>,
}

impl FuzzCase {
    /// Total input size (tree nodes + query size + script length) — the
    /// shrinker's overall progress measure.
    pub fn size(&self) -> usize {
        self.tree.len() + self.query.size() + self.edits.len()
    }
}
