//! Nondeterministic bottom-up automata over the PSLC binary encoding.

use std::collections::HashMap;

use treequery_tree::Tree;

use crate::dta::Dta;
use crate::run::{label_class, num_classes, pslc_run};

/// Matches the state of a predecessor slot (previous sibling / last
/// child).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum StateSpec {
    /// The slot must be empty (no previous sibling / no children).
    Bot,
    /// The slot must hold exactly this state.
    Is(u32),
    /// Anything, including an empty slot.
    Any,
}

/// Label pattern of a transition.
#[derive(Clone, Debug, PartialEq, Eq)]
enum LabelSpec {
    /// Any label.
    Any,
    /// Exactly this label class (named label index, or `labels.len()` for
    /// "any other label").
    Class(u32),
}

#[derive(Clone, Debug)]
struct Rule {
    prev: StateSpec,
    child: StateSpec,
    label: LabelSpec,
    to: u32,
}

/// A nondeterministic bottom-up tree automaton over the PSLC encoding.
///
/// The state of a node is derived from the states of its previous sibling
/// and its last child (missing slots are ⊥); the tree is accepted iff
/// some run assigns the root an accepting state. Acceptance is decided by
/// the standard subset simulation in one post-order pass, `O(n · |rules|)`.
#[derive(Clone, Debug)]
pub struct Nta {
    labels: Vec<String>,
    num_states: u32,
    rules: Vec<Rule>,
    accepting: Vec<u32>,
}

impl Nta {
    /// All states reachable at a node given predecessor state sets.
    fn successors(
        &self,
        prev: Option<&Vec<bool>>,
        child: Option<&Vec<bool>>,
        class: u32,
    ) -> Vec<bool> {
        let mut out = vec![false; self.num_states as usize];
        for rule in &self.rules {
            let label_ok = match &rule.label {
                LabelSpec::Any => true,
                LabelSpec::Class(c) => *c == class,
            };
            if !label_ok {
                continue;
            }
            // For `Is` specs we must check each concrete state; the slot
            // sets make this a containment test.
            let prev_ok = match rule.prev {
                StateSpec::Any => true,
                StateSpec::Bot => prev.is_none(),
                StateSpec::Is(s) => prev.is_some_and(|set| set[s as usize]),
            };
            let child_ok = match rule.child {
                StateSpec::Any => true,
                StateSpec::Bot => child.is_none(),
                StateSpec::Is(s) => child.is_some_and(|set| set[s as usize]),
            };
            if prev_ok && child_ok {
                out[rule.to as usize] = true;
            }
        }
        out
    }

    /// Whether the automaton accepts the tree (subset simulation).
    pub fn accepts(&self, t: &Tree) -> bool {
        let root_states = pslc_run(t, |v, prev, child| {
            let class = label_class(&self.labels, t.label_name(v));
            self.successors(prev, child, class)
        });
        self.accepting.iter().any(|&a| root_states[a as usize])
    }

    /// Subset-construction determinization. The result is total over the
    /// automaton's label classes.
    pub fn determinize(&self) -> Dta {
        let classes = num_classes(&self.labels);
        // Interned subsets; index 0 is reserved in `Dta` for ⊥, so subsets
        // here start at 1.
        let mut subset_ids: HashMap<Vec<bool>, u32> = HashMap::new();
        let mut subsets: Vec<Vec<bool>> = Vec::new();
        let intern = |set: Vec<bool>,
                      subsets: &mut Vec<Vec<bool>>,
                      subset_ids: &mut HashMap<Vec<bool>, u32>|
         -> u32 {
            if let Some(&id) = subset_ids.get(&set) {
                return id;
            }
            let id = subsets.len() as u32 + 1; // + 1: 0 is ⊥
            subsets.push(set.clone());
            subset_ids.insert(set, id);
            id
        };

        let mut delta: HashMap<(u32, u32, u32), u32> = HashMap::new();
        // Fixpoint over discovered subset states (⊥ is implicit).
        loop {
            let known = subsets.len();
            let mut discovered = Vec::new();
            // Slots: ⊥ plus every known subset.
            for p in 0..=known {
                for c in 0..=known {
                    for class in 0..classes {
                        let key = (p as u32, c as u32, class);
                        if delta.contains_key(&key) {
                            continue;
                        }
                        let prev = (p > 0).then(|| &subsets[p - 1]);
                        let child = (c > 0).then(|| &subsets[c - 1]);
                        let succ = self.successors(prev, child, class);
                        discovered.push((key, succ));
                    }
                }
            }
            if discovered.is_empty() && subsets.len() == known {
                break;
            }
            let mut grew = false;
            for (key, succ) in discovered {
                let id = intern(succ, &mut subsets, &mut subset_ids);
                grew |= subsets.len() > known;
                delta.insert(key, id);
            }
            if !grew && subsets.len() == known {
                // All transitions filled and no new subsets: done after
                // one more pass confirms closure.
                let closed = (0..=subsets.len()).all(|p| {
                    (0..=subsets.len()).all(|c| {
                        (0..classes).all(|class| delta.contains_key(&(p as u32, c as u32, class)))
                    })
                });
                if closed {
                    break;
                }
            }
        }

        let accepting = std::iter::once(false) // ⊥ never accepts
            .chain(
                subsets
                    .iter()
                    .map(|set| self.accepting.iter().any(|&a| set[a as usize])),
            )
            .collect();
        Dta::from_parts(
            self.labels.clone(),
            subsets.len() as u32 + 1,
            delta,
            accepting,
        )
    }

    // ---- constructors ----

    /// Accepts trees containing at least one node labeled `l`.
    pub fn exists_label(l: &str) -> Nta {
        // State 1 = "an l-node occurs in my PSLC-subtree".
        Nta {
            labels: vec![l.to_owned()],
            num_states: 2,
            rules: vec![
                Rule {
                    prev: StateSpec::Any,
                    child: StateSpec::Any,
                    label: LabelSpec::Class(0),
                    to: 1,
                },
                Rule {
                    prev: StateSpec::Is(1),
                    child: StateSpec::Any,
                    label: LabelSpec::Any,
                    to: 1,
                },
                Rule {
                    prev: StateSpec::Any,
                    child: StateSpec::Is(1),
                    label: LabelSpec::Any,
                    to: 1,
                },
                Rule {
                    prev: StateSpec::Any,
                    child: StateSpec::Any,
                    label: LabelSpec::Any,
                    to: 0,
                },
            ],
            accepting: vec![1],
        }
    }

    /// Accepts trees whose root is labeled `l`.
    pub fn root_label(l: &str) -> Nta {
        Nta {
            labels: vec![l.to_owned()],
            num_states: 2,
            rules: vec![
                Rule {
                    prev: StateSpec::Any,
                    child: StateSpec::Any,
                    label: LabelSpec::Class(0),
                    to: 1,
                },
                Rule {
                    prev: StateSpec::Any,
                    child: StateSpec::Any,
                    label: LabelSpec::Any,
                    to: 0,
                },
            ],
            accepting: vec![1],
        }
    }

    /// Accepts trees whose number of `l`-labeled nodes is ≡ `r` (mod `k`).
    /// This automaton is deterministic by construction; it exercises the
    /// counting power of regular tree languages.
    pub fn count_label_mod(l: &str, k: u32, r: u32) -> Nta {
        assert!(k >= 1 && r < k);
        let mut rules = Vec::new();
        // Slots: Bot counts as 0.
        let slot_specs: Vec<(StateSpec, u32)> = std::iter::once((StateSpec::Bot, 0))
            .chain((0..k).map(|s| (StateSpec::Is(s), s)))
            .collect();
        for &(prev, pcount) in &slot_specs {
            for &(child, ccount) in &slot_specs {
                rules.push(Rule {
                    prev,
                    child,
                    label: LabelSpec::Class(0),
                    to: (pcount + ccount + 1) % k,
                });
                rules.push(Rule {
                    prev,
                    child,
                    label: LabelSpec::Class(1),
                    to: (pcount + ccount) % k,
                });
            }
        }
        Nta {
            labels: vec![l.to_owned()],
            num_states: k,
            rules,
            accepting: vec![r],
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use treequery_tree::parse_term;

    #[test]
    fn exists_label_runs() {
        let a = Nta::exists_label("a");
        assert!(a.accepts(&parse_term("r(x a(y))").unwrap()));
        assert!(a.accepts(&parse_term("a").unwrap()));
        assert!(!a.accepts(&parse_term("r(x y(z))").unwrap()));
    }

    #[test]
    fn root_label_runs() {
        let r = Nta::root_label("r");
        assert!(r.accepts(&parse_term("r(a)").unwrap()));
        assert!(!r.accepts(&parse_term("a(r)").unwrap()));
    }

    #[test]
    fn count_mod() {
        let odd = Nta::count_label_mod("a", 2, 1);
        assert!(odd.accepts(&parse_term("a(b)").unwrap()));
        assert!(!odd.accepts(&parse_term("a(a)").unwrap()));
        assert!(odd.accepts(&parse_term("a(a a)").unwrap()));
        let zero_mod3 = Nta::count_label_mod("a", 3, 0);
        assert!(zero_mod3.accepts(&parse_term("b(a a a)").unwrap()));
        assert!(!zero_mod3.accepts(&parse_term("b(a a)").unwrap()));
    }

    #[test]
    fn determinization_preserves_language() {
        use rand::rngs::StdRng;
        use rand::SeedableRng;
        let automata = [
            Nta::exists_label("a"),
            Nta::root_label("r"),
            Nta::count_label_mod("a", 3, 1),
        ];
        let mut rng = StdRng::seed_from_u64(8);
        let mut trees = vec![parse_term("a").unwrap(), parse_term("r(a(a) b)").unwrap()];
        for _ in 0..15 {
            trees.push(treequery_tree::random_recursive_tree(
                &mut rng,
                20,
                &["a", "b", "r"],
            ));
        }
        for nta in &automata {
            let dta = nta.determinize();
            for t in &trees {
                assert_eq!(nta.accepts(t), dta.accepts(t), "{t}");
            }
        }
    }
}
