//! Deterministic bottom-up automata: products, complement, emptiness,
//! streaming runs.

use std::collections::{HashMap, HashSet};

use treequery_tree::Tree;

use crate::run::{label_class, num_classes, pslc_run};

/// A deterministic, total bottom-up tree automaton over the PSLC
/// encoding. State 0 is the ⊥ pseudo-state for missing predecessors.
#[derive(Clone, Debug)]
pub struct Dta {
    labels: Vec<String>,
    num_states: u32,
    delta: HashMap<(u32, u32, u32), u32>,
    accepting: Vec<bool>,
}

impl Dta {
    pub(crate) fn from_parts(
        labels: Vec<String>,
        num_states: u32,
        delta: HashMap<(u32, u32, u32), u32>,
        accepting: Vec<bool>,
    ) -> Dta {
        Dta {
            labels,
            num_states,
            delta,
            accepting,
        }
    }

    /// Number of states (including ⊥).
    pub fn num_states(&self) -> u32 {
        self.num_states
    }

    fn step(&self, prev: u32, child: u32, class: u32) -> u32 {
        *self
            .delta
            .get(&(prev, child, class))
            .unwrap_or_else(|| panic!("delta not total at ({prev}, {child}, {class})"))
    }

    /// Whether the automaton accepts the tree — one post-order pass, O(n).
    pub fn accepts(&self, t: &Tree) -> bool {
        let root = pslc_run(t, |v, prev: Option<&u32>, child: Option<&u32>| {
            let class = label_class(&self.labels, t.label_name(v));
            self.step(
                prev.copied().unwrap_or(0),
                child.copied().unwrap_or(0),
                class,
            )
        });
        self.accepting[root as usize]
    }

    /// Streaming recognition over a SAX event sequence with one stack
    /// frame per open element — the `O(depth)` bound of Section 7.
    /// Returns (accepted, peak open frames).
    pub fn run_streaming<'a>(
        &self,
        events: impl IntoIterator<Item = &'a treequery_streaming::Event>,
    ) -> (bool, usize) {
        use treequery_streaming::Event;
        struct Frame {
            /// State of this element's previous sibling (⊥ for the first).
            prev_state: u32,
            /// State of the last closed child so far (⊥ before any).
            running_child: u32,
            /// Label class of this element.
            class: u32,
        }
        // Bottom frame stands for the virtual document.
        let mut stack = vec![Frame {
            prev_state: 0,
            running_child: 0,
            class: 0,
        }];
        let mut peak = 0usize;
        for ev in events {
            match ev {
                Event::Open(label) => {
                    let prev_state = stack.last().expect("document frame").running_child;
                    stack.push(Frame {
                        prev_state,
                        running_child: 0,
                        class: label_class(&self.labels, label),
                    });
                    peak = peak.max(stack.len() - 1);
                }
                Event::Close => {
                    let f = stack.pop().expect("balanced events");
                    let state = self.step(f.prev_state, f.running_child, f.class);
                    stack
                        .last_mut()
                        .expect("document frame remains")
                        .running_child = state;
                }
            }
        }
        assert_eq!(stack.len(), 1, "unbalanced event stream");
        let root_state = stack[0].running_child;
        (self.accepting[root_state as usize], peak)
    }

    /// Merged alphabet of two automata and the per-automaton class
    /// remapping tables (indexed by merged class).
    fn merge_alphabets(&self, other: &Dta) -> (Vec<String>, Vec<u32>, Vec<u32>) {
        let mut labels = self.labels.clone();
        for l in &other.labels {
            if !labels.contains(l) {
                labels.push(l.clone());
            }
        }
        let map = |own: &[String]| -> Vec<u32> {
            labels
                .iter()
                .map(|l| label_class(own, l))
                .chain(std::iter::once(own.len() as u32)) // merged OTHER
                .collect()
        };
        let ma = map(&self.labels);
        let mb = map(&other.labels);
        (labels, ma, mb)
    }

    /// Product automaton with the given acceptance combiner.
    fn product(&self, other: &Dta, accept: impl Fn(bool, bool) -> bool) -> Dta {
        let (labels, ma, mb) = self.merge_alphabets(other);
        let classes = num_classes(&labels);
        // Pair states interned; (⊥, ⊥) is the new ⊥ = id 0.
        let mut ids: HashMap<(u32, u32), u32> = HashMap::new();
        ids.insert((0, 0), 0);
        let mut pairs = vec![(0u32, 0u32)];
        let mut delta = HashMap::new();
        // Exhaustive closure over discovered pair states.
        let mut done = 0usize;
        while done < pairs.len() * pairs.len() * classes as usize {
            done = pairs.len() * pairs.len() * classes as usize;
            let snapshot = pairs.clone();
            for &(p1, p2) in &snapshot {
                for &(c1, c2) in &snapshot {
                    for class in 0..classes {
                        let pid = ids[&(p1, p2)];
                        let cid = ids[&(c1, c2)];
                        if delta.contains_key(&(pid, cid, class)) {
                            continue;
                        }
                        let s1 = self.step(p1, c1, ma[class as usize]);
                        let s2 = other.step(p2, c2, mb[class as usize]);
                        let next = pairs.len() as u32;
                        let sid = *ids.entry((s1, s2)).or_insert_with(|| {
                            pairs.push((s1, s2));
                            next
                        });
                        delta.insert((pid, cid, class), sid);
                    }
                }
            }
        }
        let accepting = pairs
            .iter()
            .map(|&(s1, s2)| accept(self.accepting[s1 as usize], other.accepting[s2 as usize]))
            .collect();
        Dta::from_parts(labels, pairs.len() as u32, delta, accepting)
    }

    /// Language intersection.
    pub fn intersection(&self, other: &Dta) -> Dta {
        self.product(other, |a, b| a && b)
    }

    /// Language union.
    pub fn union(&self, other: &Dta) -> Dta {
        self.product(other, |a, b| a || b)
    }

    /// Language complement (flip acceptance; sound because the automaton
    /// is total and deterministic).
    pub fn complement(&self) -> Dta {
        let mut c = self.clone();
        for a in &mut c.accepting {
            *a = !*a;
        }
        c
    }

    /// Whether the language is empty: no tree's root can reach an
    /// accepting state. Roots have no previous sibling, so root states are
    /// exactly `δ(⊥, c, class)` for reachable `c`.
    pub fn is_empty(&self) -> bool {
        // Reachable node states (any position in some tree).
        let mut reach: HashSet<u32> = HashSet::new();
        let mut frontier = vec![0u32]; // ⊥ usable as both slots
        reach.insert(0);
        while !frontier.is_empty() {
            frontier.clear();
            let before = reach.len();
            let snapshot: Vec<u32> = reach.iter().copied().collect();
            for &p in &snapshot {
                for &c in &snapshot {
                    for class in 0..num_classes(&self.labels) {
                        if let Some(&s) = self.delta.get(&(p, c, class)) {
                            reach.insert(s);
                        }
                    }
                }
            }
            if reach.len() == before {
                break;
            }
            frontier.push(0); // keep looping
        }
        // Root states: prev slot is ⊥.
        for &c in &reach {
            for class in 0..num_classes(&self.labels) {
                if let Some(&s) = self.delta.get(&(0, c, class)) {
                    if self.accepting[s as usize] {
                        return false;
                    }
                }
            }
        }
        true
    }

    /// Language equivalence via two emptiness checks.
    pub fn equivalent(&self, other: &Dta) -> bool {
        self.intersection(&other.complement()).is_empty()
            && other.intersection(&self.complement()).is_empty()
    }
}

#[cfg(test)]
mod tests {
    use crate::nta::Nta;
    use treequery_streaming::tree_events;
    use treequery_tree::{deep_path, parse_term};

    #[test]
    fn streaming_run_agrees_with_in_memory() {
        let dta = Nta::exists_label("a").determinize();
        for ts in ["r(x a)", "r(x y)", "a", "r(b(c(a)))"] {
            let t = parse_term(ts).unwrap();
            let events = tree_events(&t);
            let (accepted, _) = dta.run_streaming(&events);
            assert_eq!(accepted, dta.accepts(&t), "{ts}");
        }
    }

    #[test]
    fn streaming_memory_is_depth() {
        let dta = Nta::exists_label("a").determinize();
        let t = deep_path(100, "x");
        let (_, peak) = dta.run_streaming(&tree_events(&t));
        assert_eq!(peak, 100);
        let wide = treequery_tree::star(100, "x");
        let (_, peak_wide) = dta.run_streaming(&tree_events(&wide));
        assert_eq!(peak_wide, 2);
    }

    #[test]
    fn emptiness_edge_cases() {
        let a = Nta::exists_label("a").determinize();
        assert!(!a.is_empty());
        assert!(!a.complement().is_empty()); // trees without `a` exist
        let mod0 = Nta::count_label_mod("a", 2, 0).determinize();
        let mod1 = Nta::count_label_mod("a", 2, 1).determinize();
        assert!(mod0.intersection(&mod1).is_empty());
        assert!(mod0.union(&mod1).complement().is_empty());
    }

    #[test]
    fn products_merge_alphabets() {
        let a = Nta::exists_label("a").determinize();
        let b = Nta::exists_label("b").determinize();
        let both = a.intersection(&b);
        assert!(both.accepts(&parse_term("r(a b)").unwrap()));
        assert!(!both.accepts(&parse_term("r(a c)").unwrap()));
        assert!(!both.accepts(&parse_term("r(b)").unwrap()));
    }
}
