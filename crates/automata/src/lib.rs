#![warn(missing_docs)]

//! Bottom-up tree automata over the binary encoding of unranked trees
//! (Sections 4 and 7 of the paper).
//!
//! Boolean MSO queries on trees correspond to tree automata and have
//! linear-time data complexity \[71, 24\]; and every MSO-definable tree
//! language can be recognized by a streaming algorithm with memory
//! `O(depth)` \[60, 70\]. This crate implements both facts:
//!
//! * unranked trees are encoded as binary trees — we use the
//!   *previous-sibling / last-child* (PSLC) encoding, the left-right
//!   mirror of the `FirstChild`/`NextSibling` encoding of Figure 1(b).
//!   The mirror is chosen deliberately: in PSLC both predecessors of a
//!   node (its previous sibling and its last child) finish strictly
//!   before the node's close tag, so the *same* bottom-up run works
//!   in memory (one post-order pass, `Nta::accepts`) and over a SAX event
//!   stream with one stack frame per open element
//!   ([`Dta::run_streaming`]) — the `O(depth)` upper bound of Section 7;
//! * nondeterministic automata ([`Nta`]) with subset-construction
//!   determinization ([`Nta::determinize`]), deterministic automata
//!   ([`Dta`]) with product intersection/union, complementation,
//!   emptiness testing and language-equivalence checking — the toolbox
//!   behind "reductions from MSO to automata" (Section 4).
//!
//! Alphabets are open: transitions match a concrete label or the
//! wildcard class "any other label", so automata are independent of any
//! particular tree's label set.

mod dta;
mod nta;
mod run;

pub use dta::Dta;
pub use nta::{Nta, StateSpec};
pub use run::BOT;

#[cfg(test)]
mod tests {
    use crate::nta::Nta;
    use rand::rngs::StdRng;
    use rand::SeedableRng;
    use treequery_tree::{parse_term, random_recursive_tree};

    #[test]
    fn boolean_algebra_of_languages() {
        // L1 = contains an `a`; L2 = root labeled `r`.
        let l1 = Nta::exists_label("a");
        let l2 = Nta::root_label("r");
        let d1 = l1.determinize();
        let d2 = l2.determinize();
        let both = d1.intersection(&d2);
        let either = d1.union(&d2);
        let neither = either.complement();

        let mut rng = StdRng::seed_from_u64(3);
        let mut trees = vec![
            parse_term("r(a)").unwrap(),
            parse_term("r(b)").unwrap(),
            parse_term("x(a(a))").unwrap(),
            parse_term("x(b)").unwrap(),
        ];
        for _ in 0..10 {
            trees.push(random_recursive_tree(&mut rng, 30, &["a", "b", "r", "x"]));
        }
        for t in &trees {
            let has_a = !t.nodes_with_label_name("a").is_empty();
            let root_r = t.label_name(t.root()) == "r";
            assert_eq!(d1.accepts(t), has_a, "{t}");
            assert_eq!(d2.accepts(t), root_r, "{t}");
            assert_eq!(both.accepts(t), has_a && root_r, "{t}");
            assert_eq!(either.accepts(t), has_a || root_r, "{t}");
            assert_eq!(neither.accepts(t), !(has_a || root_r), "{t}");
        }
    }

    #[test]
    fn equivalence_and_emptiness() {
        let l1 = Nta::exists_label("a").determinize();
        // ¬¬L = L.
        let l2 = l1.complement().complement();
        assert!(l1.equivalent(&l2));
        // L ∩ ¬L = ∅.
        let contradiction = l1.intersection(&l1.complement());
        assert!(contradiction.is_empty());
        assert!(!l1.is_empty());
        // De Morgan: ¬(A ∪ B) = ¬A ∩ ¬B.
        let b = Nta::root_label("r").determinize();
        let lhs = l1.union(&b).complement();
        let rhs = l1.complement().intersection(&b.complement());
        assert!(lhs.equivalent(&rhs));
    }

    #[test]
    fn counting_modulo_is_regular() {
        // Even number of `a` nodes.
        let even_a = Nta::count_label_mod("a", 2, 0).determinize();
        let mut rng = StdRng::seed_from_u64(9);
        for _ in 0..20 {
            let t = random_recursive_tree(&mut rng, 25, &["a", "b"]);
            let count = t.nodes_with_label_name("a").len();
            assert_eq!(even_a.accepts(&t), count % 2 == 0);
        }
    }
}
