//! Shared machinery: label classes and the PSLC run order.

use treequery_tree::{NodeId, Tree};

/// Pseudo-state for a missing predecessor (no previous sibling / no
/// children) in the binary encoding.
pub const BOT: u32 = u32::MAX;

/// Maps a concrete label to its class index for an automaton with the
/// given named labels: `0..labels.len()` for named labels,
/// `labels.len()` for "any other label".
pub(crate) fn label_class(labels: &[String], name: &str) -> u32 {
    labels
        .iter()
        .position(|l| l == name)
        .map_or(labels.len() as u32, |i| i as u32)
}

/// Number of label classes (named + the `other` class).
pub(crate) fn num_classes(labels: &[String]) -> u32 {
    labels.len() as u32 + 1
}

/// Runs `step` over the tree in post-order, feeding each node its
/// previous sibling's value and its last child's value (`BOT`-style
/// `None` for missing ones); returns the root's value.
///
/// In the PSLC encoding both predecessors of a node are post-order
/// earlier, so a single pass suffices — and the same recurrence works on
/// a SAX stream (see `Dta::run_streaming`).
pub(crate) fn pslc_run<S: Clone>(
    t: &Tree,
    mut step: impl FnMut(NodeId, Option<&S>, Option<&S>) -> S,
) -> S {
    let mut value: Vec<Option<S>> = vec![None; t.len()];
    for v in t.post_order() {
        let prev = t.prev_sibling(v).and_then(|p| value[p.index()].as_ref());
        let child = t.last_child(v).and_then(|c| value[c.index()].as_ref());
        let s = step(v, prev, child);
        value[v.index()] = Some(s);
    }
    value[t.root().index()]
        .clone()
        .expect("root evaluated last in post-order")
}

#[cfg(test)]
mod tests {
    use super::*;
    use treequery_tree::parse_term;

    #[test]
    fn pslc_subtree_plus_left_siblings_size() {
        // With the recurrence size(v) = 1 + size(prev) + size(child), the
        // root value is the whole tree size (its PSLC-subtree).
        let t = parse_term("a(b(c d) e(f) g)").unwrap();
        let total = pslc_run(&t, |_, prev, child: Option<&u32>| {
            1 + prev.copied().unwrap_or(0) + child.copied().unwrap_or(0)
        });
        assert_eq!(total as usize, t.len());
    }

    #[test]
    fn label_classes() {
        let labels = vec!["a".to_owned(), "b".to_owned()];
        assert_eq!(label_class(&labels, "a"), 0);
        assert_eq!(label_class(&labels, "b"), 1);
        assert_eq!(label_class(&labels, "zz"), 2);
        assert_eq!(num_classes(&labels), 3);
    }
}
