//! Abstract syntax of monadic datalog programs over τ⁺ (∪ {Child}).

use std::collections::HashMap;
use std::fmt;

/// An intensional (unary) predicate.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Debug)]
pub struct PredId(pub u32);

impl PredId {
    /// Dense index.
    #[inline]
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

/// A rule variable (dense per rule).
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Debug)]
pub struct VarId(pub u32);

impl VarId {
    /// Dense index.
    #[inline]
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

/// Extensional unary predicates of τ⁺.
#[derive(Clone, PartialEq, Eq, Hash, Debug)]
pub enum BasePred {
    /// True of every node.
    Dom,
    /// The root (no parent).
    Root,
    /// Nodes without children.
    Leaf,
    /// Nodes without a previous sibling.
    FirstSibling,
    /// Nodes without a next sibling.
    LastSibling,
    /// `Labₐ`: nodes labeled with the given label.
    Label(String),
    /// The complement of `Labₐ`: nodes *not* carrying the given label.
    ///
    /// Not part of the paper's τ⁺, but an extensional unary predicate of
    /// the given structure all the same; it is what lets the Core XPath
    /// translation handle negation while staying in (negation-free)
    /// monadic datalog, mirroring the label-complement tests available to
    /// the automata of \[29\].
    NotLabel(String),
}

impl BasePred {
    /// The surface name used by the parser and printer.
    pub fn name(&self) -> String {
        match self {
            BasePred::Dom => "dom".into(),
            BasePred::Root => "root".into(),
            BasePred::Leaf => "leaf".into(),
            BasePred::FirstSibling => "firstsibling".into(),
            BasePred::LastSibling => "lastsibling".into(),
            BasePred::Label(l) => format!("label_{l}"),
            BasePred::NotLabel(l) => format!("notlabel_{l}"),
        }
    }
}

/// Extensional binary relations: the τ⁺ relations plus the derived `Child`
/// (allowed in input programs; eliminated by the TMNF translation).
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
pub enum BinRel {
    /// `FirstChild(x, y)`: y is the first child of x.
    FirstChild,
    /// `NextSibling(x, y)`: y is the sibling immediately right of x.
    NextSibling,
    /// `Child(x, y)`: y is a child of x (derived; not functional downward).
    Child,
}

impl BinRel {
    /// The surface name.
    pub fn name(self) -> &'static str {
        match self {
            BinRel::FirstChild => "firstchild",
            BinRel::NextSibling => "nextsibling",
            BinRel::Child => "child",
        }
    }
}

/// A reference to a unary predicate in a rule body.
#[derive(Clone, PartialEq, Eq, Hash, Debug)]
pub enum UnaryRef {
    /// An intensional predicate.
    Pred(PredId),
    /// An extensional τ⁺ predicate.
    Base(BasePred),
}

/// A body atom.
#[derive(Clone, PartialEq, Eq, Hash, Debug)]
pub enum BodyAtom {
    /// `q(x)` for unary `q`.
    Unary(UnaryRef, VarId),
    /// `R(x, y)` for a binary extensional relation.
    Binary(BinRel, VarId, VarId),
}

/// A rule `head(head_var) ← body`.
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct Rule {
    /// Head predicate.
    pub head: PredId,
    /// Head variable.
    pub head_var: VarId,
    /// Body atoms.
    pub body: Vec<BodyAtom>,
    /// Number of distinct variables in the rule (vars are `0..num_vars`).
    pub num_vars: u32,
}

impl Rule {
    /// Whether the head variable occurs in the body (datalog safety).
    pub fn is_safe(&self) -> bool {
        self.body.iter().any(|a| match a {
            BodyAtom::Unary(_, v) => *v == self.head_var,
            BodyAtom::Binary(_, x, y) => *x == self.head_var || *y == self.head_var,
        })
    }
}

/// A monadic datalog program over τ⁺ (∪ {Child}).
#[derive(Clone, Debug, Default, PartialEq)]
pub struct Program {
    pred_names: Vec<String>,
    by_name: HashMap<String, PredId>,
    /// The rules.
    pub rules: Vec<Rule>,
    /// The distinguished query predicate, if set.
    pub query: Option<PredId>,
}

impl Program {
    /// Creates an empty program.
    pub fn new() -> Self {
        Self::default()
    }

    /// Interns an intensional predicate name.
    pub fn pred(&mut self, name: &str) -> PredId {
        if let Some(&p) = self.by_name.get(name) {
            return p;
        }
        let p = PredId(u32::try_from(self.pred_names.len()).expect("too many predicates"));
        self.pred_names.push(name.to_owned());
        self.by_name.insert(name.to_owned(), p);
        p
    }

    /// Looks up a predicate by name.
    pub fn lookup_pred(&self, name: &str) -> Option<PredId> {
        self.by_name.get(name).copied()
    }

    /// The name of a predicate.
    pub fn pred_name(&self, p: PredId) -> &str {
        &self.pred_names[p.index()]
    }

    /// Number of intensional predicates.
    pub fn num_preds(&self) -> usize {
        self.pred_names.len()
    }

    /// Adds a rule; panics (debug) on unsafe rules.
    pub fn add_rule(&mut self, rule: Rule) {
        debug_assert!(rule.is_safe(), "unsafe rule: head variable not in body");
        self.rules.push(rule);
    }

    /// Sets the query predicate by name (interning it if necessary).
    pub fn set_query(&mut self, name: &str) {
        let p = self.pred(name);
        self.query = Some(p);
    }

    /// Program size `|P|`: total number of atoms (the measure of
    /// Theorem 3.2).
    pub fn size(&self) -> usize {
        self.rules.iter().map(|r| r.body.len() + 1).sum()
    }
}

impl fmt::Display for Program {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        for rule in &self.rules {
            write!(f, "{}(v{}) :- ", self.pred_name(rule.head), rule.head_var.0)?;
            for (i, atom) in rule.body.iter().enumerate() {
                if i > 0 {
                    write!(f, ", ")?;
                }
                match atom {
                    BodyAtom::Unary(UnaryRef::Pred(p), v) => {
                        write!(f, "{}(v{})", self.pred_name(*p), v.0)?
                    }
                    BodyAtom::Unary(UnaryRef::Base(b), v) => write!(f, "{}(v{})", b.name(), v.0)?,
                    BodyAtom::Binary(r, x, y) => write!(f, "{}(v{}, v{})", r.name(), x.0, y.0)?,
                }
            }
            writeln!(f, ".")?;
        }
        if let Some(q) = self.query {
            writeln!(f, "?- {}.", self.pred_name(q))?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pred_interning() {
        let mut p = Program::new();
        let a = p.pred("P0");
        let b = p.pred("P");
        assert_ne!(a, b);
        assert_eq!(p.pred("P0"), a);
        assert_eq!(p.pred_name(b), "P");
        assert_eq!(p.lookup_pred("missing"), None);
    }

    #[test]
    fn safety_check() {
        let safe = Rule {
            head: PredId(0),
            head_var: VarId(0),
            body: vec![BodyAtom::Unary(UnaryRef::Base(BasePred::Dom), VarId(0))],
            num_vars: 1,
        };
        assert!(safe.is_safe());
        let unsafe_rule = Rule {
            head: PredId(0),
            head_var: VarId(1),
            body: vec![BodyAtom::Unary(UnaryRef::Base(BasePred::Dom), VarId(0))],
            num_vars: 2,
        };
        assert!(!unsafe_rule.is_safe());
    }

    #[test]
    fn display_round_trippable_shape() {
        let mut p = Program::new();
        let p0 = p.pred("P0");
        p.add_rule(Rule {
            head: p0,
            head_var: VarId(0),
            body: vec![
                BodyAtom::Binary(BinRel::NextSibling, VarId(0), VarId(1)),
                BodyAtom::Unary(UnaryRef::Pred(p0), VarId(1)),
            ],
            num_vars: 2,
        });
        p.set_query("P0");
        let text = p.to_string();
        assert!(text.contains("P0(v0) :- nextsibling(v0, v1), P0(v1)."));
        assert!(text.contains("?- P0."));
    }
}
