//! Parser for a textual monadic datalog syntax.
//!
//! ```text
//! // Example 3.1: nodes with an ancestor labeled L.
//! P0(x) :- label(x, L).
//! P0(x0) :- nextsibling(x0, x), P0(x).
//! P(x0) :- firstchild(x0, x), P0(x).
//! P0(x) :- P(x).
//! ?- P.
//! ```
//!
//! * `:-`, `<-` and `←` all separate head from body; rules end with `.`.
//! * Base predicates (case-insensitive): `dom/1`, `root/1`, `leaf/1`,
//!   `firstsibling/1`, `lastsibling/1`, `firstchild/2`, `nextsibling/2`,
//!   `child/2`, and `label(x, L)` where `L` is the label constant.
//! * Every other predicate is intensional and must be unary.
//! * `?- P.` designates the query predicate.
//! * `%` and `//` start line comments.

use std::collections::HashMap;

use crate::ast::{BasePred, BinRel, BodyAtom, Program, Rule, UnaryRef, VarId};

/// Parse error with byte offset.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParseError {
    /// Byte offset of the error in the input.
    pub offset: usize,
    /// Human-readable description.
    pub message: String,
}

impl std::fmt::Display for ParseError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "datalog parse error at byte {}: {}",
            self.offset, self.message
        )
    }
}

impl std::error::Error for ParseError {}

struct Lexer<'a> {
    input: &'a str,
    pos: usize,
}

#[derive(Debug, Clone, PartialEq, Eq)]
enum Tok<'a> {
    Ident(&'a str),
    LParen,
    RParen,
    Comma,
    Dot,
    Arrow,
    Query,
    Eof,
}

impl<'a> Lexer<'a> {
    fn err<T>(&self, message: impl Into<String>) -> Result<T, ParseError> {
        Err(ParseError {
            offset: self.pos,
            message: message.into(),
        })
    }

    fn skip_trivia(&mut self) {
        loop {
            let rest = &self.input[self.pos..];
            if let Some(c) = rest.chars().next() {
                if c.is_whitespace() {
                    self.pos += c.len_utf8();
                    continue;
                }
            }
            if rest.starts_with('%') || rest.starts_with("//") {
                match rest.find('\n') {
                    Some(i) => self.pos += i + 1,
                    None => self.pos = self.input.len(),
                }
                continue;
            }
            break;
        }
    }

    fn next(&mut self) -> Result<Tok<'a>, ParseError> {
        self.skip_trivia();
        let rest = &self.input[self.pos..];
        let Some(c) = rest.chars().next() else {
            return Ok(Tok::Eof);
        };
        let tok = match c {
            '(' => {
                self.pos += 1;
                Tok::LParen
            }
            ')' => {
                self.pos += 1;
                Tok::RParen
            }
            ',' => {
                self.pos += 1;
                Tok::Comma
            }
            '.' => {
                self.pos += 1;
                Tok::Dot
            }
            '←' => {
                self.pos += '←'.len_utf8();
                Tok::Arrow
            }
            ':' if rest.starts_with(":-") => {
                self.pos += 2;
                Tok::Arrow
            }
            '<' if rest.starts_with("<-") => {
                self.pos += 2;
                Tok::Arrow
            }
            '?' if rest.starts_with("?-") => {
                self.pos += 2;
                Tok::Query
            }
            c if c.is_ascii_alphanumeric() || c == '_' => {
                let end = rest
                    .char_indices()
                    .find(|&(_, c)| !(c.is_ascii_alphanumeric() || c == '_'))
                    .map_or(rest.len(), |(i, _)| i);
                self.pos += end;
                Tok::Ident(&rest[..end])
            }
            other => return self.err(format!("unexpected character '{other}'")),
        };
        Ok(tok)
    }

    fn peek(&mut self) -> Result<Tok<'a>, ParseError> {
        let save = self.pos;
        let tok = self.next();
        self.pos = save;
        tok
    }

    fn expect(&mut self, want: Tok<'a>, what: &str) -> Result<(), ParseError> {
        let got = self.next()?;
        if got != want {
            return self.err(format!("expected {what}, got {got:?}"));
        }
        Ok(())
    }
}

struct RuleCtx {
    vars: HashMap<String, VarId>,
}

impl RuleCtx {
    fn var(&mut self, name: &str) -> VarId {
        let next = VarId(self.vars.len() as u32);
        *self.vars.entry(name.to_owned()).or_insert(next)
    }
}

fn base_unary(name: &str) -> Option<BasePred> {
    match name.to_ascii_lowercase().as_str() {
        "dom" => Some(BasePred::Dom),
        "root" => Some(BasePred::Root),
        "leaf" => Some(BasePred::Leaf),
        "firstsibling" => Some(BasePred::FirstSibling),
        "lastsibling" => Some(BasePred::LastSibling),
        _ => None,
    }
}

fn base_binary(name: &str) -> Option<BinRel> {
    match name.to_ascii_lowercase().as_str() {
        "firstchild" => Some(BinRel::FirstChild),
        "nextsibling" => Some(BinRel::NextSibling),
        "child" => Some(BinRel::Child),
        _ => None,
    }
}

/// Parses a program. The query predicate is taken from a `?- P.` directive
/// if present, otherwise it defaults to the head predicate of the first
/// rule.
pub fn parse_program(input: &str) -> Result<Program, ParseError> {
    let mut lex = Lexer { input, pos: 0 };
    let mut prog = Program::new();

    loop {
        match lex.peek()? {
            Tok::Eof => break,
            Tok::Query => {
                lex.next()?;
                let name = match lex.next()? {
                    Tok::Ident(n) => n,
                    _ => return lex.err("expected predicate name after '?-'"),
                };
                lex.expect(Tok::Dot, "'.'")?;
                prog.set_query(name);
                continue;
            }
            _ => {}
        }
        // A rule: Head(v) :- atom, ..., atom.
        let head_name = match lex.next()? {
            Tok::Ident(n) => n,
            t => return lex.err(format!("expected rule head, got {t:?}")),
        };
        if base_unary(head_name).is_some()
            || base_binary(head_name).is_some()
            || head_name.eq_ignore_ascii_case("label")
        {
            return lex.err(format!(
                "'{head_name}' is extensional and cannot be a rule head"
            ));
        }
        let mut ctx = RuleCtx {
            vars: HashMap::new(),
        };
        lex.expect(Tok::LParen, "'('")?;
        let head_var = match lex.next()? {
            Tok::Ident(v) => ctx.var(v),
            _ => return lex.err("expected head variable"),
        };
        lex.expect(Tok::RParen, "')'")?;
        lex.expect(Tok::Arrow, "':-'")?;

        let mut body = Vec::new();
        loop {
            let atom_name = match lex.next()? {
                Tok::Ident(n) => n,
                t => return lex.err(format!("expected body atom, got {t:?}")),
            };
            lex.expect(Tok::LParen, "'('")?;
            let first = match lex.next()? {
                Tok::Ident(v) => v,
                _ => return lex.err("expected variable"),
            };
            let second = match lex.peek()? {
                Tok::Comma => {
                    lex.next()?;
                    match lex.next()? {
                        Tok::Ident(v) => Some(v),
                        _ => return lex.err("expected second argument"),
                    }
                }
                _ => None,
            };
            lex.expect(Tok::RParen, "')'")?;

            let atom = match (atom_name, second) {
                (n, Some(arg2)) if n.eq_ignore_ascii_case("label") => {
                    // label(x, L): second argument is the label constant.
                    BodyAtom::Unary(
                        UnaryRef::Base(BasePred::Label(arg2.to_owned())),
                        ctx.var(first),
                    )
                }
                (n, Some(arg2)) if n.eq_ignore_ascii_case("notlabel") => BodyAtom::Unary(
                    UnaryRef::Base(BasePred::NotLabel(arg2.to_owned())),
                    ctx.var(first),
                ),
                (n, Some(arg2)) => match base_binary(n) {
                    Some(rel) => BodyAtom::Binary(rel, ctx.var(first), ctx.var(arg2)),
                    None => {
                        return lex.err(format!(
                            "'{n}' used with two arguments but is not a binary base relation \
                             (intensional predicates are unary in monadic datalog)"
                        ))
                    }
                },
                (n, None) => match base_unary(n) {
                    Some(b) => BodyAtom::Unary(UnaryRef::Base(b), ctx.var(first)),
                    None => {
                        if base_binary(n).is_some() {
                            return lex.err(format!("'{n}' requires two arguments"));
                        }
                        BodyAtom::Unary(UnaryRef::Pred(prog.pred(n)), ctx.var(first))
                    }
                },
            };
            body.push(atom);
            match lex.next()? {
                Tok::Comma => continue,
                Tok::Dot => break,
                t => return lex.err(format!("expected ',' or '.', got {t:?}")),
            }
        }
        let rule = Rule {
            head: prog.pred(head_name),
            head_var,
            body,
            num_vars: ctx.vars.len() as u32,
        };
        if !rule.is_safe() {
            return lex.err("unsafe rule: head variable does not occur in the body");
        }
        prog.rules.push(rule);
    }

    if prog.query.is_none() {
        prog.query = prog.rules.first().map(|r| r.head);
    }
    Ok(prog)
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Example 3.1 parses and has the expected shape.
    #[test]
    fn example_3_1() {
        let prog = parse_program(
            "P0(x) :- label(x, L).
             P0(x0) :- nextsibling(x0, x), P0(x).
             P(x0) :- firstchild(x0, x), P0(x).
             P0(x) :- P(x).
             ?- P.",
        )
        .unwrap();
        assert_eq!(prog.rules.len(), 4);
        assert_eq!(prog.query, prog.lookup_pred("P"));
        let r0 = &prog.rules[0];
        assert_eq!(
            r0.body,
            vec![BodyAtom::Unary(
                UnaryRef::Base(BasePred::Label("L".into())),
                VarId(0)
            )]
        );
        let r1 = &prog.rules[1];
        assert_eq!(
            r1.body[0],
            BodyAtom::Binary(BinRel::NextSibling, VarId(0), VarId(1))
        );
    }

    #[test]
    fn unicode_arrow_and_comments() {
        let prog = parse_program("% a comment\n P(x) ← root(x). // trailing\n").unwrap();
        assert_eq!(prog.rules.len(), 1);
        assert_eq!(prog.query, prog.lookup_pred("P"));
    }

    #[test]
    fn default_query_is_first_head() {
        let prog = parse_program("Q(x) :- leaf(x). R(x) :- root(x).").unwrap();
        assert_eq!(prog.query, prog.lookup_pred("Q"));
    }

    #[test]
    fn rejects_binary_intensional() {
        let err = parse_program("P(x) :- E(x, y).").unwrap_err();
        assert!(err.message.contains("monadic"));
    }

    #[test]
    fn rejects_unsafe_rule() {
        let err = parse_program("P(x) :- root(y).").unwrap_err();
        assert!(err.message.contains("unsafe"));
    }

    #[test]
    fn rejects_extensional_head() {
        assert!(parse_program("root(x) :- leaf(x).").is_err());
        assert!(parse_program("label(x) :- leaf(x).").is_err());
    }

    #[test]
    fn rejects_arity_errors() {
        assert!(parse_program("P(x) :- firstchild(x).").is_err());
        assert!(parse_program("P(x) :- leaf(x, y).").is_err());
    }

    #[test]
    fn child_is_accepted() {
        let prog = parse_program("P(x) :- child(x, y), leaf(y).").unwrap();
        assert_eq!(
            prog.rules[0].body[0],
            BodyAtom::Binary(BinRel::Child, VarId(0), VarId(1))
        );
    }
}
