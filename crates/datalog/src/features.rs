//! Structural features of a monadic datalog program — the lowering seam
//! the planner in `treequery-core` consumes.

use crate::ast::{BodyAtom, Program};

/// A flat summary of one monadic datalog program.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct ProgramFeatures {
    /// Number of rules.
    pub rules: usize,
    /// Number of intensional predicates.
    pub predicates: usize,
    /// Program size `|P|` (total atom count).
    pub size: usize,
    /// Already in Tree-Marking Normal Form (Definition 3.4)? TMNF
    /// programs ground to `O(|P| · |Dom|)` Horn clauses directly; others
    /// pay the linear normalization of [`crate::to_tmnf`] first.
    pub tmnf: bool,
    /// Has a designated query predicate (`?- P.`)?
    pub has_query: bool,
    /// Number of binary-relation body atoms (the grounding fan-out
    /// drivers).
    pub binary_atoms: usize,
}

/// Computes the feature summary in one pass over the program.
pub fn features(p: &Program) -> ProgramFeatures {
    let mut f = ProgramFeatures {
        rules: p.rules.len(),
        predicates: p.num_preds(),
        size: p.size(),
        tmnf: p.is_tmnf(),
        has_query: p.query.is_some(),
        ..ProgramFeatures::default()
    };
    for rule in &p.rules {
        for atom in &rule.body {
            if matches!(atom, BodyAtom::Binary(..)) {
                f.binary_atoms += 1;
            }
        }
    }
    f
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parser::parse_program;

    #[test]
    fn summarizes_a_tmnf_program() {
        let p = parse_program(
            "P0(x) :- label(x, c).
             P0(x0) :- nextsibling(x0, x), P0(x).
             ?- P0.",
        )
        .unwrap();
        let f = features(&p);
        assert_eq!(f.rules, 2);
        assert!(f.tmnf && f.has_query);
        assert_eq!(f.binary_atoms, 1);
    }
}
