//! Grounding monadic datalog programs over a tree (Theorem 3.2).
//!
//! Given a program `P` and a tree with node set `Dom`, computes an
//! equivalent propositional Horn formula. For TMNF programs (and more
//! generally programs whose rule bodies bind every variable through the
//! functional τ⁺ relations) the ground program has size `O(|P| · |Dom|)`
//! and is produced in that time, which together with Minoux's algorithm
//! yields the `O(|P| · |Dom|)` combined complexity of Theorem 3.2.
//!
//! Rules may also use the non-functional `Child` relation or leave
//! variables unconstrained; grounding stays correct but the ground program
//! can be larger (that is why the TMNF translation eliminates `Child`).

use treequery_hornsat::{AtomTable, HornFormula};
use treequery_tree::{NodeId, Tree};

use crate::ast::{BasePred, BinRel, BodyAtom, PredId, Program, Rule, UnaryRef, VarId};

/// A ground intensional atom `pred(node)`.
pub type GroundAtom = (PredId, NodeId);

fn base_holds(tree: &Tree, base: &BasePred, v: NodeId) -> bool {
    match base {
        BasePred::Dom => true,
        BasePred::Root => tree.is_root(v),
        BasePred::Leaf => tree.is_leaf(v),
        BasePred::FirstSibling => tree.is_first_sibling(v),
        BasePred::LastSibling => tree.is_last_sibling(v),
        BasePred::Label(l) => tree.has_label_name(v, l),
        BasePred::NotLabel(l) => !tree.has_label_name(v, l),
    }
}

fn bin_holds(tree: &Tree, rel: BinRel, x: NodeId, y: NodeId) -> bool {
    match rel {
        BinRel::FirstChild => tree.first_child(x) == Some(y),
        BinRel::NextSibling => tree.next_sibling(x) == Some(y),
        BinRel::Child => tree.parent(y) == Some(x),
    }
}

/// Successors of `x` under `rel` (forward direction).
fn bin_forward(tree: &Tree, rel: BinRel, x: NodeId) -> Vec<NodeId> {
    match rel {
        BinRel::FirstChild => tree.first_child(x).into_iter().collect(),
        BinRel::NextSibling => tree.next_sibling(x).into_iter().collect(),
        BinRel::Child => tree.children(x).collect(),
    }
}

/// Predecessors of `y` under `rel` (backward direction); all three
/// relations are functional backward.
fn bin_backward(tree: &Tree, rel: BinRel, y: NodeId) -> Option<NodeId> {
    match rel {
        BinRel::FirstChild => tree.parent(y).filter(|_| tree.is_first_sibling(y)),
        BinRel::NextSibling => tree.prev_sibling(y),
        BinRel::Child => tree.parent(y),
    }
}

/// Enumerates all assignments of rule variables to tree nodes that satisfy
/// the *extensional* atoms of the body; intensional atoms are ignored (they
/// become Horn body literals). `emit` receives the full assignment.
pub(crate) fn for_each_match(rule: &Rule, tree: &Tree, emit: &mut impl FnMut(&[NodeId])) {
    for_each_match_in(rule, tree, None, emit);
}

/// Like [`for_each_match`], but when `first_range` is given, the *first*
/// planned variable binding iterates only the [`NodeId`]s in that range
/// instead of the whole domain.
///
/// The match plan always starts with a `BindFree` step (nothing is bound
/// initially, so no check/traverse step is eligible), and that step
/// iterates nodes in ascending `NodeId` order — so the matches emitted
/// for ascending, disjoint ranges covering the domain concatenate to
/// exactly the unrestricted match sequence. This is what makes the
/// chunked parallel grounding byte-identical to the sequential one.
pub(crate) fn for_each_match_in(
    rule: &Rule,
    tree: &Tree,
    first_range: Option<std::ops::Range<u32>>,
    emit: &mut impl FnMut(&[NodeId]),
) {
    let binaries = rule_binaries(rule);
    let plan = build_plan(rule, &binaries, None);
    let filters = rule_filters(rule);

    // A variable-free rule has an empty plan and exactly one (empty)
    // match; attribute it to the range containing node 0 so disjoint
    // ranges covering the domain still emit it exactly once.
    if plan.is_empty() {
        if let Some(r) = &first_range {
            if r.start != 0 {
                return;
            }
        }
    }
    let mut assignment = vec![NodeId(0); (rule.num_vars as usize).max(1)];
    run(
        &plan,
        0,
        tree,
        &binaries,
        &mut assignment,
        &filters,
        &first_range,
        emit,
    );
}

/// Enumerates the matches in which variable `var` is bound to exactly
/// `node` — the localized probe of the incremental delta pass: after an
/// edit touches `node`, only matches through it can change, and for
/// connected rule bodies each probe costs O(1) traversals instead of a
/// domain scan.
pub(crate) fn for_each_match_pinned(
    rule: &Rule,
    tree: &Tree,
    var: VarId,
    node: NodeId,
    emit: &mut impl FnMut(&[NodeId]),
) {
    debug_assert!(var.index() < rule.num_vars as usize);
    let binaries = rule_binaries(rule);
    let plan = build_plan(rule, &binaries, Some(var));
    let filters = rule_filters(rule);
    let mut assignment = vec![NodeId(0); (rule.num_vars as usize).max(1)];
    assignment[var.index()] = node;
    run(
        &plan,
        0,
        tree,
        &binaries,
        &mut assignment,
        &filters,
        &None,
        emit,
    );
}

fn rule_binaries(rule: &Rule) -> Vec<(BinRel, VarId, VarId)> {
    rule.body
        .iter()
        .filter_map(|a| match a {
            BodyAtom::Binary(r, x, y) => Some((*r, *x, *y)),
            BodyAtom::Unary(..) => None,
        })
        .collect()
}

fn rule_filters(rule: &Rule) -> Vec<(&BasePred, VarId)> {
    rule.body
        .iter()
        .filter_map(|a| match a {
            BodyAtom::Unary(UnaryRef::Base(b), v) => Some((b, *v)),
            _ => None,
        })
        .collect()
}

/// One step of the static match plan.
#[derive(Debug)]
enum Step {
    BindFree(VarId),
    /// Traverse atom #i from a bound side to the unbound side.
    Traverse {
        idx: usize,
        forward: bool,
    },
    /// Both sides bound: just check atom #i.
    Check(usize),
}

/// Static plan: repeatedly pick a binary extensional atom with at least
/// one bound variable (binding or checking), falling back to binding an
/// unbound variable by full iteration. `pre_bound`, if given, starts out
/// bound (the caller fixes its value before running the plan).
fn build_plan(
    rule: &Rule,
    binaries: &[(BinRel, VarId, VarId)],
    pre_bound: Option<VarId>,
) -> Vec<Step> {
    let n_vars = rule.num_vars as usize;
    let mut bound = vec![false; n_vars];
    if let Some(v) = pre_bound {
        bound[v.index()] = true;
    }
    let mut used = vec![false; binaries.len()];
    let mut plan = Vec::new();
    loop {
        // Check atoms whose variables are both bound.
        for (i, &(_, x, y)) in binaries.iter().enumerate() {
            if !used[i] && bound[x.index()] && bound[y.index()] {
                used[i] = true;
                plan.push(Step::Check(i));
            }
        }
        // Traverse an atom with exactly one bound side. Prefer backward
        // traversals (always functional) over forward ones.
        let next = binaries
            .iter()
            .enumerate()
            .filter(|&(i, &(_, x, y))| !used[i] && (bound[x.index()] ^ bound[y.index()]))
            .max_by_key(|&(_, &(r, x, _))| {
                // Forward Child is the only one-to-many step; do it last.
                if bound[x.index()] && r == BinRel::Child {
                    0
                } else {
                    1
                }
            });
        if let Some((i, &(_, x, y))) = next {
            used[i] = true;
            let forward = bound[x.index()];
            bound[x.index()] = true;
            bound[y.index()] = true;
            plan.push(Step::Traverse { idx: i, forward });
            continue;
        }
        // No binary atom is reachable: bind a fresh variable. Prefer a
        // variable of an unused binary atom, then any unbound variable.
        let fresh = binaries
            .iter()
            .enumerate()
            .filter(|&(i, _)| !used[i])
            .flat_map(|(_, &(_, x, y))| [x, y])
            .find(|v| !bound[v.index()])
            .or_else(|| (0..n_vars as u32).map(VarId).find(|v| !bound[v.index()]));
        match fresh {
            Some(v) => {
                bound[v.index()] = true;
                plan.push(Step::BindFree(v));
            }
            None => break,
        }
    }
    plan
}

// Depth-first execution of the plan. Unary extensional filters are
// applied once the assignment is complete (rule bodies are tiny, so late
// filtering is fine).
#[allow(clippy::too_many_arguments)]
fn run(
    plan: &[Step],
    step: usize,
    tree: &Tree,
    binaries: &[(BinRel, VarId, VarId)],
    assignment: &mut Vec<NodeId>,
    filters: &[(&BasePred, VarId)],
    first_range: &Option<std::ops::Range<u32>>,
    emit: &mut impl FnMut(&[NodeId]),
) {
    let Some(s) = plan.get(step) else {
        if filters
            .iter()
            .all(|(b, v)| base_holds(tree, b, assignment[v.index()]))
        {
            emit(assignment);
        }
        return;
    };
    match s {
        Step::BindFree(v) => {
            let nodes: Box<dyn Iterator<Item = NodeId>> = match (step, first_range) {
                (0, Some(r)) => Box::new(r.clone().map(NodeId)),
                _ => Box::new(tree.nodes()),
            };
            for node in nodes {
                assignment[v.index()] = node;
                run(
                    plan,
                    step + 1,
                    tree,
                    binaries,
                    assignment,
                    filters,
                    first_range,
                    emit,
                );
            }
        }
        Step::Check(i) => {
            let (r, x, y) = binaries[*i];
            if bin_holds(tree, r, assignment[x.index()], assignment[y.index()]) {
                run(
                    plan,
                    step + 1,
                    tree,
                    binaries,
                    assignment,
                    filters,
                    first_range,
                    emit,
                );
            }
        }
        Step::Traverse { idx, forward } => {
            let (r, x, y) = binaries[*idx];
            if *forward {
                for node in bin_forward(tree, r, assignment[x.index()]) {
                    assignment[y.index()] = node;
                    run(
                        plan,
                        step + 1,
                        tree,
                        binaries,
                        assignment,
                        filters,
                        first_range,
                        emit,
                    );
                }
            } else if let Some(node) = bin_backward(tree, r, assignment[y.index()]) {
                assignment[x.index()] = node;
                run(
                    plan,
                    step + 1,
                    tree,
                    binaries,
                    assignment,
                    filters,
                    first_range,
                    emit,
                );
            }
        }
    }
}

/// Grounds a program over a tree into a definite Horn formula whose
/// variables are the intensional ground atoms `pred(node)`.
pub fn ground(prog: &Program, tree: &Tree) -> (HornFormula, AtomTable<GroundAtom>) {
    let mut formula = HornFormula::new();
    let mut atoms: AtomTable<GroundAtom> = AtomTable::new();
    // Pre-allocate variables for every (pred, node) pair lazily via the
    // atom table; ensure_vars after interning.
    let mut body_buf = Vec::new();
    for rule in &prog.rules {
        // Cancellation checkpoint per rule (one rule = one O(n) match
        // sweep — the grounding chunk). A cancelled exit grounds a
        // prefix of the program; the executor discards its model.
        if treequery_tree::cancel::cancelled() {
            break;
        }
        let intensional: Vec<(PredId, VarId)> = rule
            .body
            .iter()
            .filter_map(|a| match a {
                BodyAtom::Unary(UnaryRef::Pred(p), v) => Some((*p, *v)),
                _ => None,
            })
            .collect();
        for_each_match(rule, tree, &mut |assignment| {
            body_buf.clear();
            for &(p, v) in &intensional {
                body_buf.push(atoms.var((p, assignment[v.index()])));
            }
            let head = atoms.var((rule.head, assignment[rule.head_var.index()]));
            formula.ensure_vars(atoms.len() as u32);
            formula.add_rule(head, &body_buf);
        });
    }
    formula.ensure_vars(atoms.len() as u32);
    (formula, atoms)
}

/// The ground instances contributed by one rule when its first planned
/// variable binding is restricted to the [`NodeId`] range `range`,
/// as `(head, body)` ground-atom pairs in match order.
///
/// Because the match plan's first step iterates nodes in ascending id
/// order (see `for_each_match_in`), concatenating the chunks of
/// ascending, disjoint ranges covering `0..tree.len()` reproduces the
/// rule's full match sequence exactly. Feeding all rules' chunks in
/// rule-major, range-ascending order to
/// `treequery_hornsat::assemble_ground_chunks` therefore yields a
/// formula and atom table byte-identical to [`ground`] — which is how
/// the parallel executor grounds chunks on a worker pool without
/// perturbing the output.
pub fn ground_rule_chunk(
    rule: &Rule,
    tree: &Tree,
    range: std::ops::Range<u32>,
) -> Vec<(GroundAtom, Vec<GroundAtom>)> {
    let intensional: Vec<(PredId, VarId)> = rule
        .body
        .iter()
        .filter_map(|a| match a {
            BodyAtom::Unary(UnaryRef::Pred(p), v) => Some((*p, *v)),
            _ => None,
        })
        .collect();
    let mut out = Vec::new();
    for_each_match_in(rule, tree, Some(range), &mut |assignment| {
        let body: Vec<GroundAtom> = intensional
            .iter()
            .map(|&(p, v)| (p, assignment[v.index()]))
            .collect();
        out.push(((rule.head, assignment[rule.head_var.index()]), body));
    });
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parser::parse_program;
    use treequery_tree::parse_term;

    /// Rule-major, range-ascending chunk assembly must reproduce the
    /// sequential grounding exactly: same rules in the same order, same
    /// atom interning order.
    #[test]
    fn chunked_grounding_is_byte_identical_to_sequential() {
        let programs = [
            "P(x) :- nextsibling(x, y).",
            "P(x) :- firstchild(x, y), leaf(y).",
            "P(x) :- root(x), Q(y).",
            "P(x) :- P0(x0), nextsibling(x0, x).",
            "P(x) :- child(x, y), Q(y).",
        ];
        let tree = parse_term("r(a(b c) d(e(f) g) h)").unwrap();
        let n = tree.len() as u32;
        for src in programs {
            let prog = parse_program(src).unwrap();
            let (formula, atoms) = ground(&prog, &tree);
            for chunks in [1u32, 2, 3, n] {
                let step = n.div_ceil(chunks);
                let mut all = Vec::new();
                for rule in &prog.rules {
                    let mut lo = 0;
                    while lo < n {
                        let hi = (lo + step).min(n);
                        all.push(ground_rule_chunk(rule, &tree, lo..hi));
                        lo = hi;
                    }
                }
                let (f2, a2) = treequery_hornsat::assemble_ground_chunks(all);
                assert_eq!(f2.num_rules(), formula.num_rules(), "{src}");
                assert_eq!(f2.num_vars(), formula.num_vars(), "{src}");
                let seq: Vec<_> = atoms.iter().map(|(_, a)| *a).collect();
                let par: Vec<_> = a2.iter().map(|(_, a)| *a).collect();
                assert_eq!(par, seq, "atom interning order for {src}");
                for i in 0..formula.num_rules() {
                    let r = treequery_hornsat::RuleId(i as u32);
                    assert_eq!(f2.head(r), formula.head(r), "{src} rule {i}");
                    assert_eq!(f2.body(r), formula.body(r), "{src} rule {i}");
                }
            }
        }
    }

    #[test]
    fn ground_counts_matches() {
        // P(x) :- nextsibling(x, y): one ground rule per sibling pair.
        let prog = parse_program("P(x) :- nextsibling(x, y).").unwrap();
        let tree = parse_term("r(a b c)").unwrap();
        let (formula, _) = ground(&prog, &tree);
        assert_eq!(formula.num_rules(), 2);
    }

    #[test]
    fn ground_respects_unary_filters() {
        let prog = parse_program("P(x) :- firstchild(x, y), leaf(y).").unwrap();
        let tree = parse_term("r(a(b) c)").unwrap();
        // firstchild pairs: (r,a), (a,b); leaf(y) keeps only (a,b).
        let (formula, atoms) = ground(&prog, &tree);
        assert_eq!(formula.num_rules(), 1);
        assert_eq!(atoms.len(), 1);
    }

    #[test]
    fn child_enumerates_all_children() {
        let prog = parse_program("P(x) :- child(x, y).").unwrap();
        let tree = parse_term("r(a b c(d))").unwrap();
        let (formula, _) = ground(&prog, &tree);
        assert_eq!(formula.num_rules(), 4);
    }

    #[test]
    fn unconstrained_variable_enumerates_domain() {
        // y occurs only in an intensional atom: grounding iterates it over
        // the whole domain.
        let prog = parse_program("P(x) :- root(x), Q(y).").unwrap();
        let tree = parse_term("r(a b)").unwrap();
        let (formula, _) = ground(&prog, &tree);
        assert_eq!(formula.num_rules(), 3);
    }

    #[test]
    fn cyclic_body_consistency_is_checked() {
        // firstchild(x,y) ∧ nextsibling(x,y) is unsatisfiable: no matches.
        let prog = parse_program("P(x) :- firstchild(x, y), nextsibling(x, y).").unwrap();
        let tree = parse_term("r(a(b) c)").unwrap();
        let (formula, _) = ground(&prog, &tree);
        assert_eq!(formula.num_rules(), 0);
    }

    #[test]
    fn tmnf_rule_grounding_is_linear_in_nodes() {
        let prog = parse_program("P(x) :- P0(x0), nextsibling(x0, x).").unwrap();
        let tree = parse_term("r(a b c d e)").unwrap();
        let (formula, _) = ground(&prog, &tree);
        // One ground instance per NextSibling edge.
        assert_eq!(formula.num_rules(), 4);
        for i in 0..formula.num_rules() {
            let r = treequery_hornsat::RuleId(i as u32);
            assert_eq!(formula.body(r).len(), 1);
        }
    }
}
