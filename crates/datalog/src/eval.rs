//! Evaluation of monadic datalog over trees (Theorem 3.2).

use treequery_tree::{NodeSet, Tree};

use crate::ast::{BodyAtom, PredId, Program, UnaryRef};
use crate::ground::{for_each_match, ground};

/// Evaluates a program: returns the extension of every intensional
/// predicate, indexed by `PredId`.
///
/// Implementation per the paper: ground the program over the tree
/// ([`ground`]) and compute the minimal model with Minoux's linear-time
/// algorithm. For TMNF programs this runs in `O(|P| · |Dom|)` total.
pub fn eval(prog: &Program, tree: &Tree) -> Vec<NodeSet> {
    let (formula, atoms) = {
        let mut span = treequery_obs::span("datalog.ground");
        let _mem = treequery_obs::alloc::AllocScope::enter("datalog.ground");
        span.record_u64("program_size", prog.size() as u64);
        span.record_u64("nodes", tree.len() as u64);
        let grounded = ground(prog, tree);
        span.record_u64("ground_size", grounded.0.size() as u64);
        grounded
    };
    let solution = formula.solve();
    let mut extensions = vec![NodeSet::empty(tree.len()); prog.num_preds()];
    for (var, &(pred, node)) in atoms.iter() {
        if solution.is_true(var) {
            extensions[pred.index()].insert(node);
        }
    }
    extensions
}

/// Evaluates the program's distinguished query predicate.
///
/// # Panics
/// Panics if the program has no query predicate.
pub fn eval_query(prog: &Program, tree: &Tree) -> NodeSet {
    let q = prog.query.expect("program has no query predicate");
    eval(prog, tree).swap_remove(q.index())
}

/// Naive fixpoint evaluation: repeats immediate-consequence passes until
/// stable. Used as a differential-testing oracle for [`eval`].
pub fn eval_naive(prog: &Program, tree: &Tree) -> Vec<NodeSet> {
    let mut extensions = vec![NodeSet::empty(tree.len()); prog.num_preds()];
    loop {
        let mut changed = false;
        for rule in &prog.rules {
            let intensional: Vec<(PredId, u32)> = rule
                .body
                .iter()
                .filter_map(|a| match a {
                    BodyAtom::Unary(UnaryRef::Pred(p), v) => Some((*p, v.0)),
                    _ => None,
                })
                .collect();
            let mut derived = Vec::new();
            for_each_match(rule, tree, &mut |assignment| {
                if intensional
                    .iter()
                    .all(|&(p, v)| extensions[p.index()].contains(assignment[v as usize]))
                {
                    derived.push(assignment[rule.head_var.index()]);
                }
            });
            for node in derived {
                changed |= extensions[rule.head.index()].insert(node);
            }
        }
        if !changed {
            return extensions;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parser::parse_program;
    use treequery_tree::{parse_term, Axis, NodeSet};

    /// Example 3.1. Note an erratum in the paper: the prose says the
    /// program "computes those nodes that have an *ancestor* labeled L",
    /// but with the paper's own definitions (FirstChild(x, y): y is the
    /// first child of x; NextSibling(x, y): y is the right neighbor of x)
    /// the rules derive P at every node with a proper *descendant* labeled
    /// L — P0 flows from an L node leftward through its sibling chain and
    /// upward through FirstChild. We test the formally correct semantics.
    const EXAMPLE_3_1: &str = "P0(x) :- label(x, L).
         P0(x0) :- nextsibling(x0, x), P0(x).
         P(x0) :- firstchild(x0, x), P0(x).
         P0(x) :- P(x).
         ?- P.";

    fn has_descendant_labeled_l(tree: &Tree) -> NodeSet {
        // Ground truth: nodes with a proper descendant labeled L.
        let mut out = NodeSet::empty(tree.len());
        for v in tree.nodes() {
            for u in tree.nodes() {
                if tree.is_ancestor(v, u) && tree.has_label_name(u, "L") {
                    out.insert(v);
                }
            }
        }
        out
    }

    #[test]
    fn example_3_1_semantics() {
        let prog = parse_program(EXAMPLE_3_1).unwrap();
        for term in [
            "L(a b(c))",
            "a(L(b) c)",
            "a(b c)",
            "L(L(L))",
            "a(b(L(c d(e))) f)",
        ] {
            let tree = parse_term(term).unwrap();
            let got = eval_query(&prog, &tree);
            assert_eq!(got, has_descendant_labeled_l(&tree), "on {term}");
        }
    }

    /// Cross-check Example 3.1 against the independent axis machinery:
    /// "has a descendant labeled L" is the Ancestor-image of the L nodes.
    #[test]
    fn example_3_1_against_axis_machinery() {
        let prog = parse_program(EXAMPLE_3_1).unwrap();
        let tree = parse_term("r(L(a(b) c) d(L(e)) f)").unwrap();
        let got = eval_query(&prog, &tree);
        let l_nodes =
            NodeSet::from_iter(tree.len(), tree.nodes_with_label_name("L").iter().copied());
        let expected = Axis::Ancestor.image(&tree, &l_nodes);
        assert_eq!(got, expected);
    }

    #[test]
    fn eval_matches_naive_on_examples() {
        let progs = [
            EXAMPLE_3_1,
            "Mark(x) :- leaf(x).
             Mark(x) :- firstchild(x, y), AllMarked(y).
             AllMarked(x) :- lastsibling(x), Mark(x).
             AllMarked(x) :- nextsibling(x, y), AllMarked(y), Mark(x).
             ?- Mark.",
            "Even(x) :- root(x).
             Odd(y) :- child(x, y), Even(x).
             Even(y) :- child(x, y), Odd(x).
             ?- Even.",
        ];
        for text in progs {
            let prog = parse_program(text).unwrap();
            for term in ["a", "a(b)", "a(b(c d) e(f(g) h))", "L(a(L(b)))"] {
                let tree = parse_term(term).unwrap();
                assert_eq!(
                    eval(&prog, &tree),
                    eval_naive(&prog, &tree),
                    "program {text} on {term}"
                );
            }
        }
    }

    #[test]
    fn even_depth_program() {
        let prog = parse_program(
            "Even(x) :- root(x).
             Odd(y) :- child(x, y), Even(x).
             Even(y) :- child(x, y), Odd(x).
             ?- Even.",
        )
        .unwrap();
        let tree = parse_term("a(b(c(d)) e)").unwrap();
        let got = eval_query(&prog, &tree);
        for v in tree.nodes() {
            assert_eq!(got.contains(v), tree.depth(v) % 2 == 0, "{v:?}");
        }
    }

    #[test]
    fn recursion_through_siblings() {
        // Mark/AllMarked: Mark(x) iff every node in x's subtree... actually
        // Mark(x) iff x is a leaf or the chain of its children is all
        // marked — i.e. Mark holds everywhere. The point: mutual recursion
        // converges and matches naive evaluation.
        let prog = parse_program(
            "Mark(x) :- leaf(x).
             Mark(x) :- firstchild(x, y), AllMarked(y).
             AllMarked(x) :- lastsibling(x), Mark(x).
             AllMarked(x) :- nextsibling(x, y), AllMarked(y), Mark(x).
             ?- Mark.",
        )
        .unwrap();
        let tree = parse_term("a(b(c d) e)").unwrap();
        let got = eval_query(&prog, &tree);
        assert_eq!(got.len(), tree.len());
    }
}
