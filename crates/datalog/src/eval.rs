//! Evaluation of monadic datalog over trees (Theorem 3.2), plus the
//! semi-naive delta pass that keeps a program's model maintained across
//! tree edits ([`IncrementalEval`]).

use std::collections::VecDeque;

use treequery_tree::{EditDelta, EditKind, EditOp, NodeId, NodeSet, Tree};

use crate::ast::{BodyAtom, PredId, Program, UnaryRef, VarId};
use crate::ground::{for_each_match, for_each_match_pinned, ground, GroundAtom};

/// Evaluates a program: returns the extension of every intensional
/// predicate, indexed by `PredId`.
///
/// Implementation per the paper: ground the program over the tree
/// ([`ground`]) and compute the minimal model with Minoux's linear-time
/// algorithm. For TMNF programs this runs in `O(|P| · |Dom|)` total.
pub fn eval(prog: &Program, tree: &Tree) -> Vec<NodeSet> {
    let (formula, atoms) = {
        let mut span = treequery_obs::span("datalog.ground");
        let _mem = treequery_obs::alloc::AllocScope::enter("datalog.ground");
        span.record_u64("program_size", prog.size() as u64);
        span.record_u64("nodes", tree.len() as u64);
        let grounded = ground(prog, tree);
        span.record_u64("ground_size", grounded.0.size() as u64);
        grounded
    };
    let solution = formula.solve();
    let mut extensions = vec![NodeSet::empty(tree.len()); prog.num_preds()];
    for (var, &(pred, node)) in atoms.iter() {
        if solution.is_true(var) {
            extensions[pred.index()].insert(node);
        }
    }
    extensions
}

/// Evaluates the program's distinguished query predicate.
///
/// # Panics
/// Panics if the program has no query predicate.
pub fn eval_query(prog: &Program, tree: &Tree) -> NodeSet {
    let q = prog.query.expect("program has no query predicate");
    eval(prog, tree).swap_remove(q.index())
}

/// Naive fixpoint evaluation: repeats immediate-consequence passes until
/// stable. Used as a differential-testing oracle for [`eval`].
pub fn eval_naive(prog: &Program, tree: &Tree) -> Vec<NodeSet> {
    let mut extensions = vec![NodeSet::empty(tree.len()); prog.num_preds()];
    loop {
        // Cancellation checkpoint per fixpoint round (each round is
        // O(|P| · n)); a cancelled exit returns the partial model, which
        // the caller discards.
        if treequery_tree::cancel::cancelled() {
            return extensions;
        }
        let mut changed = false;
        for rule in &prog.rules {
            let intensional: Vec<(PredId, u32)> = rule
                .body
                .iter()
                .filter_map(|a| match a {
                    BodyAtom::Unary(UnaryRef::Pred(p), v) => Some((*p, v.0)),
                    _ => None,
                })
                .collect();
            let mut derived = Vec::new();
            for_each_match(rule, tree, &mut |assignment| {
                if intensional
                    .iter()
                    .all(|&(p, v)| extensions[p.index()].contains(assignment[v as usize]))
                {
                    derived.push(assignment[rule.head_var.index()]);
                }
            });
            for node in derived {
                changed |= extensions[rule.head.index()].insert(node);
            }
        }
        if !changed {
            return extensions;
        }
    }
}

/// A datalog program's model, maintained incrementally across tree edits
/// by a DRed-style delta pass (overdelete on the pre-edit tree, then
/// semi-naive rederivation on the post-edit tree).
///
/// The incremental path covers relabels and leaf insertions — the edits
/// whose extensional change is confined to the edit site and its
/// structural neighbors. Subtree deletions compact node ids and are
/// handled by a full recompute (the documented fallback; a delete is
/// already O(n) on the index side). Refreezes change no facts at all and
/// cost nothing here.
///
/// The pass works per edit in two phases around the tree mutation:
///
/// 1. [`prepare_edit`](Self::prepare_edit) — **before** the tree is
///    edited. Every match that the edit invalidates touches a node whose
///    extensional facts change (the relabeled node; the insertion
///    parent and the two siblings the new leaf splices between), so
///    pinned matches at those nodes on the *old* tree overapproximate
///    the invalidated derivations. Their heads are overdeleted and the
///    deletion propagated through the rules (classic DRed
///    overdeletion — deleting too much is sound, rederivation
///    recovers).
/// 2. [`commit_edit`](Self::commit_edit) — **after** the tree is
///    edited. Each overdeleted fact is rederived if any match with that
///    head still fires on the new tree; then new facts are seeded from
///    pinned matches at the edit site and propagated semi-naively, each
///    inserted fact probing only the rules it can feed.
///
/// For connected rule bodies every pinned probe costs O(1) traversals,
/// so the whole pass is O(|change| · |P|) — flat in |D|, which
/// experiment E24 measures. [`work`](Self::work) counts the probes for
/// the debug-ladder bound test.
pub struct IncrementalEval {
    prog: Program,
    truths: Vec<NodeSet>,
    work: u64,
}

/// The overdeletion carried from [`IncrementalEval::prepare_edit`] to
/// [`IncrementalEval::commit_edit`].
pub enum PendingEdit {
    /// Facts overdeleted (already removed from the model), to attempt
    /// rederivation on the post-edit tree.
    Patch(Vec<GroundAtom>),
    /// The edit is out of the incremental fragment: recompute on commit.
    Rebuild,
}

impl IncrementalEval {
    /// Evaluates `prog` on `tree` and takes ownership of the model.
    pub fn new(prog: Program, tree: &Tree) -> IncrementalEval {
        let truths = eval(&prog, tree);
        IncrementalEval {
            prog,
            truths,
            work: 0,
        }
    }

    /// The maintained extension of every intensional predicate.
    pub fn extensions(&self) -> &[NodeSet] {
        &self.truths
    }

    /// The maintained extension of the query predicate.
    ///
    /// # Panics
    /// Panics if the program has no query predicate.
    pub fn query(&self) -> &NodeSet {
        let q = self.prog.query.expect("program has no query predicate");
        &self.truths[q.index()]
    }

    /// Cumulative maintenance work: pinned-match probes processed by the
    /// delta passes, plus `|P| · |Dom|` for every full recompute. The
    /// E24 ladder asserts this stays flat in |D| for relabel edits.
    pub fn work(&self) -> u64 {
        self.work
    }

    /// Discards the model and re-evaluates from scratch.
    pub fn full_recompute(&mut self, tree: &Tree) {
        self.truths = eval(&self.prog, tree);
        self.work += (self.prog.size() * tree.len()) as u64;
    }

    /// Phase 1, on the tree as it is *before* applying `op`: DRed
    /// overdeletion of every fact whose derivation the edit can
    /// invalidate.
    pub fn prepare_edit(&mut self, old_tree: &Tree, op: &EditOp) -> PendingEdit {
        let Some(op) = op.normalize(old_tree) else {
            return PendingEdit::Patch(Vec::new());
        };
        let dirty: Vec<NodeId> = match &op {
            EditOp::DeleteSubtree { .. } => return PendingEdit::Rebuild,
            EditOp::Relabel { pre, .. } => vec![old_tree.node_at_pre(*pre)],
            EditOp::InsertLeaf {
                parent_pre,
                child_idx,
                ..
            } => {
                // The leaf does not exist yet; the facts that change on
                // the old tree live at the parent (leaf, child edges)
                // and the two siblings being spliced apart.
                let p = old_tree.node_at_pre(*parent_pre);
                let mut d = vec![p];
                if let Some(i) = (*child_idx as usize).checked_sub(1) {
                    d.extend(old_tree.children(p).nth(i));
                }
                d.extend(old_tree.children(p).nth(*child_idx as usize));
                d
            }
        };

        let mut deleted: Vec<GroundAtom> = Vec::new();
        let mut queue: VecDeque<GroundAtom> = VecDeque::new();
        // Seed: heads of matches binding any variable to a dirty node.
        for rule in &self.prog.rules {
            for var in (0..rule.num_vars).map(VarId) {
                for &d in &dirty {
                    let head_var = rule.head_var;
                    let head = rule.head;
                    let (truths, work) = (&mut self.truths, &mut self.work);
                    for_each_match_pinned(rule, old_tree, var, d, &mut |asg| {
                        *work += 1;
                        let fact = (head, asg[head_var.index()]);
                        if truths[fact.0.index()].remove(fact.1) {
                            deleted.push(fact);
                            queue.push_back(fact);
                        }
                    });
                }
            }
        }
        // Propagate: a deleted fact may have supported others.
        while let Some((pred, node)) = queue.pop_front() {
            for rule in &self.prog.rules {
                for atom in &rule.body {
                    let BodyAtom::Unary(UnaryRef::Pred(p), var) = atom else {
                        continue;
                    };
                    if *p != pred {
                        continue;
                    }
                    let head_var = rule.head_var;
                    let head = rule.head;
                    let (truths, work) = (&mut self.truths, &mut self.work);
                    for_each_match_pinned(rule, old_tree, *var, node, &mut |asg| {
                        *work += 1;
                        let fact = (head, asg[head_var.index()]);
                        if truths[fact.0.index()].remove(fact.1) {
                            deleted.push(fact);
                            queue.push_back(fact);
                        }
                    });
                }
            }
        }
        PendingEdit::Patch(deleted)
    }

    /// Phase 2, on the tree *after* the edit: rederive what survives and
    /// propagate the new facts semi-naively.
    pub fn commit_edit(&mut self, new_tree: &Tree, delta: &EditDelta, pending: PendingEdit) {
        let PendingEdit::Patch(deleted) = pending else {
            self.full_recompute(new_tree);
            return;
        };
        if delta.refroze {
            // A refreeze renumbers nothing and changes no facts, but be
            // conservative about any future widening of its scope.
            self.full_recompute(new_tree);
            return;
        }
        if delta.kind == EditKind::Insert {
            for set in &mut self.truths {
                set.grow(new_tree.len());
            }
        }

        let mut queue: VecDeque<GroundAtom> = VecDeque::new();
        // Seed A: facts newly derivable at the edit site.
        let mut dirty: Vec<NodeId> = Vec::new();
        if let Some(v) = delta.node {
            dirty.push(v);
            if delta.kind == EditKind::Insert {
                dirty.extend(new_tree.parent(v));
                dirty.extend(new_tree.prev_sibling(v));
                dirty.extend(new_tree.next_sibling(v));
            }
        }
        for i in 0..self.prog.rules.len() {
            for var in (0..self.prog.rules[i].num_vars).map(VarId) {
                for &d in &dirty {
                    self.try_insert_pinned(new_tree, i, var, d, &mut queue);
                }
            }
        }
        // Seed B: rederive overdeleted facts still supported.
        for &(pred, node) in &deleted {
            if self.truths[pred.index()].contains(node) {
                continue;
            }
            for i in 0..self.prog.rules.len() {
                if self.prog.rules[i].head != pred {
                    continue;
                }
                let head_var = self.prog.rules[i].head_var;
                self.try_insert_pinned(new_tree, i, head_var, node, &mut queue);
            }
        }
        // Propagate insertions semi-naively.
        while let Some((pred, node)) = queue.pop_front() {
            for i in 0..self.prog.rules.len() {
                let vars: Vec<VarId> = self.prog.rules[i]
                    .body
                    .iter()
                    .filter_map(|a| match a {
                        BodyAtom::Unary(UnaryRef::Pred(p), v) if *p == pred => Some(*v),
                        _ => None,
                    })
                    .collect();
                for var in vars {
                    self.try_insert_pinned(new_tree, i, var, node, &mut queue);
                }
            }
        }
    }

    /// Pinned matches of rule `i` with `var = node` on `tree`: for each
    /// match whose intensional body holds in the current model, inserts
    /// the head fact and enqueues it if new.
    fn try_insert_pinned(
        &mut self,
        tree: &Tree,
        i: usize,
        var: VarId,
        node: NodeId,
        queue: &mut VecDeque<GroundAtom>,
    ) {
        let rule = &self.prog.rules[i];
        let intensional: Vec<(PredId, VarId)> = rule
            .body
            .iter()
            .filter_map(|a| match a {
                BodyAtom::Unary(UnaryRef::Pred(p), v) => Some((*p, *v)),
                _ => None,
            })
            .collect();
        let head_var = rule.head_var;
        let head = rule.head;
        let (truths, work) = (&mut self.truths, &mut self.work);
        for_each_match_pinned(rule, tree, var, node, &mut |asg| {
            *work += 1;
            if intensional
                .iter()
                .all(|&(p, v)| truths[p.index()].contains(asg[v.index()]))
            {
                let fact = (head, asg[head_var.index()]);
                if truths[fact.0.index()].insert(fact.1) {
                    queue.push_back(fact);
                }
            }
        });
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parser::parse_program;
    use treequery_tree::{parse_term, Axis, NodeSet};

    /// Example 3.1. Note an erratum in the paper: the prose says the
    /// program "computes those nodes that have an *ancestor* labeled L",
    /// but with the paper's own definitions (FirstChild(x, y): y is the
    /// first child of x; NextSibling(x, y): y is the right neighbor of x)
    /// the rules derive P at every node with a proper *descendant* labeled
    /// L — P0 flows from an L node leftward through its sibling chain and
    /// upward through FirstChild. We test the formally correct semantics.
    const EXAMPLE_3_1: &str = "P0(x) :- label(x, L).
         P0(x0) :- nextsibling(x0, x), P0(x).
         P(x0) :- firstchild(x0, x), P0(x).
         P0(x) :- P(x).
         ?- P.";

    fn has_descendant_labeled_l(tree: &Tree) -> NodeSet {
        // Ground truth: nodes with a proper descendant labeled L.
        let mut out = NodeSet::empty(tree.len());
        for v in tree.nodes() {
            for u in tree.nodes() {
                if tree.is_ancestor(v, u) && tree.has_label_name(u, "L") {
                    out.insert(v);
                }
            }
        }
        out
    }

    #[test]
    fn example_3_1_semantics() {
        let prog = parse_program(EXAMPLE_3_1).unwrap();
        for term in [
            "L(a b(c))",
            "a(L(b) c)",
            "a(b c)",
            "L(L(L))",
            "a(b(L(c d(e))) f)",
        ] {
            let tree = parse_term(term).unwrap();
            let got = eval_query(&prog, &tree);
            assert_eq!(got, has_descendant_labeled_l(&tree), "on {term}");
        }
    }

    /// Cross-check Example 3.1 against the independent axis machinery:
    /// "has a descendant labeled L" is the Ancestor-image of the L nodes.
    #[test]
    fn example_3_1_against_axis_machinery() {
        let prog = parse_program(EXAMPLE_3_1).unwrap();
        let tree = parse_term("r(L(a(b) c) d(L(e)) f)").unwrap();
        let got = eval_query(&prog, &tree);
        let l_nodes =
            NodeSet::from_iter(tree.len(), tree.nodes_with_label_name("L").iter().copied());
        let expected = Axis::Ancestor.image(&tree, &l_nodes);
        assert_eq!(got, expected);
    }

    #[test]
    fn eval_matches_naive_on_examples() {
        let progs = [
            EXAMPLE_3_1,
            "Mark(x) :- leaf(x).
             Mark(x) :- firstchild(x, y), AllMarked(y).
             AllMarked(x) :- lastsibling(x), Mark(x).
             AllMarked(x) :- nextsibling(x, y), AllMarked(y), Mark(x).
             ?- Mark.",
            "Even(x) :- root(x).
             Odd(y) :- child(x, y), Even(x).
             Even(y) :- child(x, y), Odd(x).
             ?- Even.",
        ];
        for text in progs {
            let prog = parse_program(text).unwrap();
            for term in ["a", "a(b)", "a(b(c d) e(f(g) h))", "L(a(L(b)))"] {
                let tree = parse_term(term).unwrap();
                assert_eq!(
                    eval(&prog, &tree),
                    eval_naive(&prog, &tree),
                    "program {text} on {term}"
                );
            }
        }
    }

    #[test]
    fn even_depth_program() {
        let prog = parse_program(
            "Even(x) :- root(x).
             Odd(y) :- child(x, y), Even(x).
             Even(y) :- child(x, y), Odd(x).
             ?- Even.",
        )
        .unwrap();
        let tree = parse_term("a(b(c(d)) e)").unwrap();
        let got = eval_query(&prog, &tree);
        for v in tree.nodes() {
            assert_eq!(got.contains(v), tree.depth(v) % 2 == 0, "{v:?}");
        }
    }

    #[test]
    fn incremental_matches_scratch_on_edit_scripts() {
        let programs = [
            EXAMPLE_3_1,
            "Mark(x) :- leaf(x).
             Mark(x) :- firstchild(x, y), AllMarked(y).
             AllMarked(x) :- lastsibling(x), Mark(x).
             AllMarked(x) :- nextsibling(x, y), AllMarked(y), Mark(x).
             ?- Mark.",
            "Even(x) :- root(x).
             Odd(y) :- child(x, y), Even(x).
             Even(y) :- child(x, y), Odd(x).
             ?- Even.",
            // Disconnected body: y roams the whole domain. The pinned
            // pass must stay correct (just not local) on it.
            "P(x) :- root(x), Q(y).
             Q(x) :- label(x, L).
             ?- P.",
        ];
        use treequery_tree::{EditOp, EditableTree};
        for src in programs {
            let prog = parse_program(src).unwrap();
            let mut et = EditableTree::new(parse_term("r(L(a b) c(d(L) e) f)").unwrap());
            let mut inc = IncrementalEval::new(prog.clone(), et.tree());
            let mut state = 0x6A09E667F3BCC908u64;
            let labels = ["L", "a", "b", "c"];
            for step in 0..120 {
                state = state
                    .wrapping_mul(6364136223846793005)
                    .wrapping_add(1442695040888963407);
                let n = et.tree().len() as u32;
                let op = match state % 4 {
                    0 => EditOp::InsertLeaf {
                        parent_pre: (state >> 8) as u32 % n,
                        child_idx: (state >> 40) as u32 % 4,
                        label: labels[(state >> 16) as usize % labels.len()].to_owned(),
                    },
                    1 if n > 1 => EditOp::DeleteSubtree {
                        pre: (state >> 8) as u32 % n,
                    },
                    _ => EditOp::Relabel {
                        pre: (state >> 8) as u32 % n,
                        label: labels[(state >> 16) as usize % labels.len()].to_owned(),
                    },
                };
                let pending = inc.prepare_edit(et.tree(), &op);
                let Some(delta) = et.apply(&op) else {
                    continue;
                };
                inc.commit_edit(et.tree(), &delta, pending);
                let scratch = eval(&prog, et.tree());
                assert_eq!(
                    inc.extensions(),
                    &scratch[..],
                    "program {src} diverged at step {step} after {op}"
                );
            }
        }
    }

    #[test]
    fn incremental_work_is_local_for_relabel() {
        // The same relabel edit on a 10x larger tree must not cost 10x
        // the maintenance work (the E24 claim, asserted at unit scale).
        use treequery_tree::{EditOp, EditableTree};
        let prog = parse_program(EXAMPLE_3_1).unwrap();
        let work_at = |size: usize| {
            let mut term = String::from("r(");
            for i in 0..size {
                term.push_str(if i % 7 == 0 { "L " } else { "a " });
            }
            term.push(')');
            let mut et = EditableTree::new(parse_term(&term).unwrap());
            let mut inc = IncrementalEval::new(prog.clone(), et.tree());
            let op = EditOp::Relabel {
                pre: 3,
                label: "L".to_owned(),
            };
            let pending = inc.prepare_edit(et.tree(), &op);
            let delta = et.apply(&op).unwrap();
            inc.commit_edit(et.tree(), &delta, pending);
            inc.work()
        };
        let (small, large) = (work_at(100), work_at(1000));
        assert!(
            large <= small.saturating_mul(3),
            "relabel maintenance work grew with |D|: {small} -> {large}"
        );
    }

    #[test]
    fn recursion_through_siblings() {
        // Mark/AllMarked: Mark(x) iff every node in x's subtree... actually
        // Mark(x) iff x is a leaf or the chain of its children is all
        // marked — i.e. Mark holds everywhere. The point: mutual recursion
        // converges and matches naive evaluation.
        let prog = parse_program(
            "Mark(x) :- leaf(x).
             Mark(x) :- firstchild(x, y), AllMarked(y).
             AllMarked(x) :- lastsibling(x), Mark(x).
             AllMarked(x) :- nextsibling(x, y), AllMarked(y), Mark(x).
             ?- Mark.",
        )
        .unwrap();
        let tree = parse_term("a(b(c d) e)").unwrap();
        let got = eval_query(&prog, &tree);
        assert_eq!(got.len(), tree.len());
    }
}
