//! Tree-Marking Normal Form (Definition 3.4) and the linear-time
//! translation into it.
//!
//! A program is in TMNF if every rule has one of the forms
//!
//! 1. `p(x) ← p₀(x)`
//! 2. `p(x) ← p₀(x₀), B(x₀, x)` with `B ∈ {R, R⁻¹}` for binary `R` of τ⁺
//! 3. `p(x) ← p₀(x), p₁(x)`
//!
//! where `p₀`, `p₁` are intensional or τ⁺ unary predicates. The paper:
//! "for each monadic datalog program P over τ⁺ ∪ {Child}, there is an
//! equivalent TMNF program over τ⁺ which can be computed in time O(|P|)"
//! \[31\]. The translation implemented here handles rules whose body graph
//! (variables as vertices, binary atoms as edges) is connected and acyclic
//! — which is no loss of generality for the programs produced by the Core
//! XPath translation, and matches the acyclic-rule route via which \[31\]
//! proves the result. `Child` atoms are compiled into `FirstChild` /
//! `NextSibling` recursions exactly as in Example 3.1.

use crate::ast::{BasePred, BinRel, BodyAtom, PredId, Program, Rule, UnaryRef, VarId};

/// Why a rule could not be translated to TMNF.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum TmnfError {
    /// The body graph of the rule (by index) is not connected: some
    /// variable is not linked to the head variable by binary atoms.
    Disconnected(usize),
    /// The body graph of the rule (by index) contains a cycle or parallel
    /// binary atoms over the same variable pair.
    Cyclic(usize),
}

impl std::fmt::Display for TmnfError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            TmnfError::Disconnected(i) => {
                write!(
                    f,
                    "rule #{i}: body variables are not connected to the head variable"
                )
            }
            TmnfError::Cyclic(i) => write!(f, "rule #{i}: body graph is cyclic"),
        }
    }
}

impl std::error::Error for TmnfError {}

impl Program {
    /// Whether every rule is in one of the three TMNF forms.
    pub fn is_tmnf(&self) -> bool {
        self.rules.iter().all(rule_is_tmnf)
    }
}

fn rule_is_tmnf(rule: &Rule) -> bool {
    match rule.body.as_slice() {
        // Form (1): p(x) ← p0(x).
        [BodyAtom::Unary(_, v)] => *v == rule.head_var,
        [a, b] => {
            match (a, b) {
                // Form (3): p(x) ← p0(x), p1(x).
                (BodyAtom::Unary(_, v1), BodyAtom::Unary(_, v2)) => {
                    *v1 == rule.head_var && *v2 == rule.head_var
                }
                // Form (2): p(x) ← p0(x0), B(x0, x) — in either atom order
                // and either orientation of B, but not with Child (which is
                // not part of τ⁺).
                (BodyAtom::Unary(_, v0), BodyAtom::Binary(rel, bx, by))
                | (BodyAtom::Binary(rel, bx, by), BodyAtom::Unary(_, v0)) => {
                    *rel != BinRel::Child
                        && *v0 != rule.head_var
                        && ((*bx == *v0 && *by == rule.head_var)
                            || (*bx == rule.head_var && *by == *v0))
                }
                (BodyAtom::Binary(..), BodyAtom::Binary(..)) => false,
            }
        }
        _ => false,
    }
}

/// State for emitting translated rules with fresh helper predicates.
struct Emitter {
    out: Program,
    fresh: u32,
}

impl Emitter {
    fn fresh_pred(&mut self, hint: &str) -> PredId {
        let name = format!("__{hint}_{}", self.fresh);
        self.fresh += 1;
        self.out.pred(&name)
    }

    /// Emits `head(v0) ← body` where the body is already TMNF-shaped.
    fn rule(&mut self, head: PredId, head_var: VarId, body: Vec<BodyAtom>, num_vars: u32) {
        self.out.rules.push(Rule {
            head,
            head_var,
            body,
            num_vars,
        });
    }

    /// Emits `p(x) ← q(x)` (form 1).
    fn alias(&mut self, p: PredId, q: UnaryRef) {
        self.rule(p, VarId(0), vec![BodyAtom::Unary(q, VarId(0))], 1);
    }

    /// Emits `p(x) ← q(x0), B(...)` (form 2) with the binary atom in the
    /// orientation `rel(a, b)`; variable 0 is the head, variable 1 is `x0`.
    fn step(&mut self, p: PredId, q: UnaryRef, rel: BinRel, head_is_first: bool) {
        debug_assert_ne!(rel, BinRel::Child);
        let (a, b) = if head_is_first {
            (VarId(0), VarId(1))
        } else {
            (VarId(1), VarId(0))
        };
        self.rule(
            p,
            VarId(0),
            vec![BodyAtom::Unary(q, VarId(1)), BodyAtom::Binary(rel, a, b)],
            2,
        );
    }

    /// Emits `p(x) ← q(x), r(x)` (form 3).
    fn conj(&mut self, p: PredId, q: UnaryRef, r: UnaryRef) {
        self.rule(
            p,
            VarId(0),
            vec![BodyAtom::Unary(q, VarId(0)), BodyAtom::Unary(r, VarId(0))],
            1,
        );
    }

    /// Defines and returns a predicate true at nodes from which the chain
    /// `NextSibling*` reaches a `q` node (used to compile `Child(y, z)`:
    /// "some child of y satisfies q" = "the first child of y reaches a q
    /// node through NextSibling*").
    fn sibling_suffix_reach(&mut self, q: UnaryRef) -> PredId {
        let s = self.fresh_pred("sibsuffix");
        self.alias(s, q);
        // s(x) ← s(x'), NextSibling(x, x').
        self.step(s, UnaryRef::Pred(s), BinRel::NextSibling, true);
        s
    }

    /// Defines and returns a predicate true at every child of a `q` node
    /// (used to compile `Child(z, y)` when `q` holds at the parent `z`).
    fn children_of(&mut self, q: UnaryRef) -> PredId {
        let m = self.fresh_pred("childof");
        // m(x) ← q(z), FirstChild(z, x).
        self.step(m, q, BinRel::FirstChild, false);
        // m(x) ← m(x0), NextSibling(x0, x).
        self.step(m, UnaryRef::Pred(m), BinRel::NextSibling, false);
        m
    }
}

/// Translates a monadic datalog program over τ⁺ ∪ {Child} into an
/// equivalent TMNF program over τ⁺, in time O(|P|).
///
/// Rule bodies must be connected and acyclic (see [`TmnfError`]).
pub fn to_tmnf(prog: &Program) -> Result<Program, TmnfError> {
    let mut em = Emitter {
        out: Program::new(),
        fresh: 0,
    };
    // Intern the original predicates first so PredIds carry over verbatim.
    for i in 0..prog.num_preds() {
        em.out.pred(prog.pred_name(PredId(i as u32)));
    }
    em.out.query = prog.query;

    for (idx, rule) in prog.rules.iter().enumerate() {
        if rule_is_tmnf(rule) {
            em.out.rules.push(rule.clone());
            continue;
        }
        translate_rule(&mut em, rule).map_err(|e| match e {
            RuleShape::Disconnected => TmnfError::Disconnected(idx),
            RuleShape::Cyclic => TmnfError::Cyclic(idx),
        })?;
    }
    Ok(em.out)
}

enum RuleShape {
    Disconnected,
    Cyclic,
}

fn translate_rule(em: &mut Emitter, rule: &Rule) -> Result<(), RuleShape> {
    let n = rule.num_vars as usize;
    // Adjacency over binary atoms.
    let mut adj: Vec<Vec<(usize, BinRel, bool)>> = vec![Vec::new(); n];
    let mut num_edges = 0usize;
    for atom in &rule.body {
        if let BodyAtom::Binary(rel, x, y) = atom {
            if x == y {
                // R(x, x) never holds for the irreflexive τ⁺ relations; the
                // rule derives nothing. Emit no rules for it.
                return Ok(());
            }
            // `true` flag: the neighbor is on the *second* position of the
            // atom (i.e. edge traversed in the forward direction).
            adj[x.index()].push((y.index(), *rel, true));
            adj[y.index()].push((x.index(), *rel, false));
            num_edges += 1;
        }
    }

    // BFS from the head variable; detect disconnection and cycles.
    let root = rule.head_var.index();
    let mut parent: Vec<Option<(usize, BinRel, bool)>> = vec![None; n];
    let mut visited = vec![false; n];
    visited[root] = true;
    let mut order = vec![root];
    let mut queue = std::collections::VecDeque::from([root]);
    let mut tree_edges = 0usize;
    while let Some(u) = queue.pop_front() {
        for &(v, rel, fwd) in &adj[u] {
            if !visited[v] {
                visited[v] = true;
                // Record how to reach v from u: atom is rel with v on the
                // `fwd` side.
                parent[v] = Some((u, rel, fwd));
                tree_edges += 1;
                order.push(v);
                queue.push_back(v);
            }
        }
    }
    if visited.iter().any(|&b| !b) {
        return Err(RuleShape::Disconnected);
    }
    if num_edges != tree_edges {
        return Err(RuleShape::Cyclic);
    }

    // Unary atoms per variable.
    let mut unaries: Vec<Vec<UnaryRef>> = vec![Vec::new(); n];
    for atom in &rule.body {
        if let BodyAtom::Unary(u, v) = atom {
            unaries[v.index()].push(u.clone());
        }
    }
    // Children per variable in the BFS tree.
    let mut kids: Vec<Vec<usize>> = vec![Vec::new(); n];
    for (v, p) in parent.iter().enumerate() {
        if let Some((u, _, _)) = p {
            kids[*u].push(v);
        }
    }

    // Bottom-up (reverse BFS order): define q_v for each variable v:
    // q_v(x) holds iff the body fragment at-or-below v is satisfiable with
    // v ↦ x.
    let mut q: Vec<Option<UnaryRef>> = vec![None; n];
    for &v in order.iter().rev() {
        let mut conjuncts: Vec<UnaryRef> = unaries[v].clone();
        for &z in &kids[v] {
            let (_, rel, fwd) = parent[z].expect("tree child has a parent edge");
            let qz = q[z].clone().expect("children processed before parents");
            // Need h(v) ← ∃z: q_z(z) ∧ atom, where the atom is rel with z
            // on the `fwd` side (fwd: rel(v, z), else rel(z, v)).
            let h = em.fresh_pred("edge");
            match (rel, fwd) {
                (BinRel::Child, true) => {
                    // Child(v, z): some child of v satisfies q_z.
                    let s = em.sibling_suffix_reach(qz);
                    // h(v) ← s(w), FirstChild(v, w).
                    em.step(h, UnaryRef::Pred(s), BinRel::FirstChild, true);
                }
                (BinRel::Child, false) => {
                    // Child(z, v): v's parent satisfies q_z.
                    let m = em.children_of(qz);
                    em.alias(h, UnaryRef::Pred(m));
                }
                (rel, true) => {
                    // rel(v, z): h(v) ← q_z(z), rel(v, z).
                    em.step(h, qz, rel, true);
                }
                (rel, false) => {
                    // rel(z, v): h(v) ← q_z(z), rel(z, v).
                    em.step(h, qz, rel, false);
                }
            }
            conjuncts.push(UnaryRef::Pred(h));
        }
        // Fold the conjuncts into a single predicate.
        let qv = match conjuncts.len() {
            0 => UnaryRef::Base(BasePred::Dom),
            1 => conjuncts.pop().expect("len checked"),
            _ => {
                let mut acc = conjuncts[0].clone();
                for c in &conjuncts[1..] {
                    let p = em.fresh_pred("and");
                    em.conj(p, acc, c.clone());
                    acc = UnaryRef::Pred(p);
                }
                acc
            }
        };
        q[v] = Some(qv);
    }

    // Head rule: head(x) ← q_root(x).
    let q_root = q[root].clone().expect("root processed");
    em.alias(rule.head, q_root);
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::eval::{eval_naive, eval_query};
    use crate::parser::parse_program;
    use treequery_tree::parse_term;

    #[test]
    fn example_3_1_is_already_tmnf() {
        let prog = parse_program(
            "P0(x) :- label(x, L).
             P0(x0) :- nextsibling(x0, x), P0(x).
             P(x0) :- firstchild(x0, x), P0(x).
             P0(x) :- P(x).",
        )
        .unwrap();
        assert!(prog.is_tmnf());
        let translated = to_tmnf(&prog).unwrap();
        assert_eq!(translated.rules.len(), prog.rules.len());
    }

    #[test]
    fn form_checks() {
        // Form (3).
        assert!(parse_program("P(x) :- Q(x), R(x).").unwrap().is_tmnf());
        // Form (2) with inverted orientation.
        assert!(parse_program("P(x) :- Q(y), nextsibling(x, y).")
            .unwrap()
            .is_tmnf());
        // Child is not a τ⁺ relation: not TMNF.
        assert!(!parse_program("P(x) :- Q(y), child(x, y).")
            .unwrap()
            .is_tmnf());
        // Three body atoms: not TMNF.
        assert!(!parse_program("P(x) :- Q(x), R(x), S(x).")
            .unwrap()
            .is_tmnf());
        // Binary atom not touching the head: not TMNF.
        assert!(
            !parse_program("P(x) :- Q(x), nextsibling(x2, x3), Q(x2), dom(x3).")
                .unwrap()
                .is_tmnf()
        );
    }

    /// The translation preserves semantics, checked differentially against
    /// naive evaluation of the original program.
    #[test]
    fn translation_preserves_semantics() {
        let programs = [
            // Child compiled away, downward direction.
            "P(x) :- child(x, y), label(y, a). ?- P.",
            // Child upward direction.
            "P(y) :- child(x, y), label(x, a). ?- P.",
            // Longer chain with mixed relations.
            "P(x) :- child(x, y), nextsibling(y, z), leaf(z). ?- P.",
            // Multiple unary atoms on interior variables.
            "P(x) :- child(x, y), label(y, a), lastsibling(y), child(y, z), label(z, b). ?- P.",
            // Recursion plus a non-TMNF rule.
            "Anc(x) :- child(x, y), label(y, a).
             Anc(x) :- child(x, y), Anc(y).
             ?- Anc.",
            // Head variable not first in the rule body.
            "P(z) :- child(x, y), child(y, z), root(x). ?- P.",
        ];
        let trees = [
            "a(b c)",
            "r(a(b(c)) a)",
            "a(a(a(a)) b(b) c)",
            "r(x(a b) y(a(b) c) z)",
        ];
        for ptext in programs {
            let prog = parse_program(ptext).unwrap();
            let tmnf = to_tmnf(&prog).unwrap();
            assert!(tmnf.is_tmnf(), "translation of {ptext} is TMNF");
            for ttext in trees {
                let tree = parse_term(ttext).unwrap();
                let naive = eval_naive(&prog, &tree);
                let q = prog.query.unwrap();
                assert_eq!(
                    eval_query(&tmnf, &tree),
                    naive[q.index()].clone(),
                    "{ptext} on {ttext}"
                );
            }
        }
    }

    #[test]
    fn disconnected_rule_is_rejected() {
        let prog = parse_program("P(x) :- root(x), Q(y).").unwrap();
        assert_eq!(to_tmnf(&prog).unwrap_err(), TmnfError::Disconnected(0));
    }

    #[test]
    fn cyclic_rule_is_rejected() {
        let prog =
            parse_program("P(x) :- firstchild(x, y), nextsibling(y, z), child(x, z).").unwrap();
        assert_eq!(to_tmnf(&prog).unwrap_err(), TmnfError::Cyclic(0));
    }

    #[test]
    fn self_loop_atom_derives_nothing() {
        let prog = parse_program("P(x) :- nextsibling(x, x). ?- P.").unwrap();
        let tmnf = to_tmnf(&prog).unwrap();
        let tree = parse_term("a(b c)").unwrap();
        assert!(eval_query(&tmnf, &tree).is_empty());
    }

    #[test]
    fn translation_is_linear_in_program_size() {
        // Output size grows linearly with the input rule's body length.
        let mk = |k: usize| {
            let mut body = String::new();
            for i in 0..k {
                body.push_str(&format!("child(x{i}, x{}), ", i + 1));
            }
            body.push_str(&format!("leaf(x{k})"));
            parse_program(&format!("P(x0) :- {body}. ?- P.")).unwrap()
        };
        let small = to_tmnf(&mk(4)).unwrap();
        let large = to_tmnf(&mk(8)).unwrap();
        assert!(large.size() <= small.size() * 3);
    }
}
