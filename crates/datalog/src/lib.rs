#![warn(missing_docs)]

//! Monadic datalog over tree structures (Section 3 of the paper).
//!
//! Monadic datalog — datalog where every intensional predicate is unary —
//! over the signature
//! τ⁺ = ⟨Dom, Root, Leaf, (Labₐ)ₐ, FirstChild, NextSibling, LastSibling⟩
//! captures exactly the unary MSO queries on trees \[31\] and can be
//! evaluated with `O(|P| · |Dom|)` combined complexity (Theorem 3.2):
//! ground the program over the tree, then run Minoux's linear-time
//! Horn-SAT algorithm (Figure 3).
//!
//! This crate provides:
//!
//! * the program AST and a parser ([`Program`], [`parse_program`]),
//! * Tree-Marking Normal Form (Definition 3.4): recognition
//!   ([`Program::is_tmnf`]) and the linear-time translation
//!   ([`to_tmnf`]) that also eliminates the derived `Child` relation,
//! * grounding over a tree ([`ground`]) and evaluation through Horn-SAT
//!   ([`eval`], [`eval_query`]),
//! * a naive fixpoint evaluator ([`eval_naive`]) used as a
//!   differential-testing oracle.

mod ast;
mod eval;
mod features;
mod ground;
mod parser;
mod tmnf;

pub use ast::{BasePred, BinRel, BodyAtom, PredId, Program, Rule, UnaryRef, VarId};
pub use eval::{eval, eval_naive, eval_query, IncrementalEval, PendingEdit};
pub use features::{features, ProgramFeatures};
pub use ground::{ground, ground_rule_chunk, GroundAtom};
pub use parser::{parse_program, ParseError};
pub use tmnf::{to_tmnf, TmnfError};
