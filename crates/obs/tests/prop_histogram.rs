//! Property tests for the histogram laws the observatory leans on:
//! merging is exactly recording the concatenation, and percentiles are
//! monotone even under adversarial values hugging power-of-two bucket
//! boundaries.

use proptest::prelude::*;
use treequery_obs::LatencyHistogram;

fn record_all(samples: &[u64]) -> LatencyHistogram {
    let mut h = LatencyHistogram::new();
    for &s in samples {
        h.record(s);
    }
    h
}

/// Strategy: samples that cluster on bucket boundaries — `2^k - 1`,
/// `2^k`, `2^k + 1` — the worst case for any bucketing scheme, mixed
/// with arbitrary values.
fn adversarial_sample() -> impl Strategy<Value = u64> {
    prop_oneof![
        (0u32..63).prop_map(|k| (1u64 << k).saturating_sub(1)),
        (0u32..63).prop_map(|k| 1u64 << k),
        (0u32..63).prop_map(|k| (1u64 << k) + 1),
        any::<u64>(),
        0u64..1024,
    ]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    /// Merging N histograms is indistinguishable from recording the
    /// concatenated sample stream into one (full structural equality:
    /// buckets, count, sum, max).
    #[test]
    fn merge_equals_concatenated_recording(
        chunks in proptest::collection::vec(
            proptest::collection::vec(adversarial_sample(), 0..40),
            0..6,
        )
    ) {
        let mut merged = LatencyHistogram::new();
        for chunk in &chunks {
            merged.merge(&record_all(chunk));
        }
        let concatenated: Vec<u64> = chunks.concat();
        prop_assert_eq!(merged, record_all(&concatenated));
    }

    /// p50 ≤ p95 ≤ p99 ≤ max (and quantiles are monotone in q overall)
    /// no matter how adversarially the samples sit on bucket boundaries.
    #[test]
    fn percentiles_are_ordered(
        samples in proptest::collection::vec(adversarial_sample(), 1..200)
    ) {
        let h = record_all(&samples);
        let s = h.summary();
        prop_assert!(s.p50_ns <= s.p95_ns, "p50={} p95={}", s.p50_ns, s.p95_ns);
        prop_assert!(s.p95_ns <= s.p99_ns, "p95={} p99={}", s.p95_ns, s.p99_ns);
        prop_assert!(s.p99_ns <= s.max_ns, "p99={} max={}", s.p99_ns, s.max_ns);
        prop_assert_eq!(s.max_ns, *samples.iter().max().unwrap());
        let mut prev = 0u64;
        for i in 0..=20 {
            let v = h.quantile(i as f64 / 20.0);
            prop_assert!(v >= prev, "quantile not monotone at {}/20", i);
            prev = v;
        }
    }

    /// Quantiles never stray outside the recorded range, and the count
    /// and sum are exact.
    #[test]
    fn summaries_are_exact_and_bounded(
        samples in proptest::collection::vec(adversarial_sample(), 1..100)
    ) {
        let h = record_all(&samples);
        prop_assert_eq!(h.count(), samples.len() as u64);
        let expected_sum = samples.iter().fold(0u64, |a, &b| a.saturating_add(b));
        prop_assert_eq!(h.sum_ns(), expected_sum);
        let max = *samples.iter().max().unwrap();
        for i in 0..=10 {
            prop_assert!(h.quantile(i as f64 / 10.0) <= max);
        }
    }
}
