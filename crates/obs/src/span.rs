//! The span core: guards with monotonic timing, structured fields, and a
//! per-thread depth stack.

use std::cell::Cell;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, OnceLock};
use std::time::Instant;

use crate::Recorder;

/// A structured field value attached to a span.
#[derive(Clone, Debug, PartialEq)]
pub enum FieldValue {
    /// An unsigned counter (node counts, candidate-set sizes, …).
    U64(u64),
    /// A floating-point measurement.
    F64(f64),
    /// A boolean flag (cache hit/miss, …).
    Bool(bool),
    /// A short string (strategy names, …).
    Str(String),
}

impl std::fmt::Display for FieldValue {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            FieldValue::U64(v) => write!(f, "{v}"),
            FieldValue::F64(v) => write!(f, "{v}"),
            FieldValue::Bool(v) => write!(f, "{v}"),
            FieldValue::Str(v) => f.write_str(v),
        }
    }
}

/// A `key = value` pair attached to a span.
#[derive(Clone, Debug, PartialEq)]
pub struct Field {
    /// The field name.
    pub key: &'static str,
    /// The field value.
    pub value: FieldValue,
}

/// A closed span, as delivered to a [`Recorder`].
#[derive(Clone, Debug, PartialEq)]
pub struct SpanRecord {
    /// The span name (dot-separated taxonomy, e.g. `exec.semijoin`).
    pub name: &'static str,
    /// Nanoseconds since the process's tracing epoch at which the span
    /// opened.
    pub start_ns: u64,
    /// Monotonic wall time between open and close, in nanoseconds.
    pub duration_ns: u64,
    /// Nesting depth on the opening thread (0 = outermost).
    pub depth: u32,
    /// A dense per-thread id (assigned on first span per thread).
    pub thread: u64,
    /// Structured fields recorded while the span was open.
    pub fields: Vec<Field>,
}

fn epoch() -> Instant {
    static EPOCH: OnceLock<Instant> = OnceLock::new();
    *EPOCH.get_or_init(Instant::now)
}

/// Nanoseconds since the process's tracing epoch — the same time base
/// every [`SpanRecord::start_ns`] uses. The flight recorder uses this to
/// stamp synthetic spans (e.g. response serialization, which happens
/// after the engine has already submitted the record) on a timeline
/// consistent with the real ones.
pub(crate) fn now_since_epoch_ns() -> u64 {
    epoch().elapsed().as_nanos() as u64
}

/// The dense tracing thread id of the calling thread (see
/// [`SpanRecord::thread`]); exposed so synthetic spans carry the same id
/// space as real ones.
pub(crate) fn current_thread_id() -> u64 {
    thread_id()
}

fn thread_id() -> u64 {
    static NEXT: AtomicU64 = AtomicU64::new(0);
    thread_local! {
        static ID: Cell<Option<u64>> = const { Cell::new(None) };
    }
    ID.with(|id| match id.get() {
        Some(v) => v,
        None => {
            let v = NEXT.fetch_add(1, Ordering::Relaxed);
            id.set(Some(v));
            v
        }
    })
}

thread_local! {
    static DEPTH: Cell<u32> = const { Cell::new(0) };
}

/// The current thread's span nesting depth (the depth the *next* span
/// opened here would record). Worker pools capture this on the
/// submitting thread and replay it on workers via
/// [`with_ambient_depth`], so chunk spans nest under the stage span that
/// dispatched them instead of starting a fresh tree at depth 0.
pub fn current_depth() -> u32 {
    DEPTH.with(|d| d.get())
}

/// Runs `f` with this thread's span depth set to `depth`, restoring the
/// previous depth afterwards (also on panic).
pub fn with_ambient_depth<T>(depth: u32, f: impl FnOnce() -> T) -> T {
    struct Restore(u32);
    impl Drop for Restore {
        fn drop(&mut self) {
            DEPTH.with(|d| d.set(self.0));
        }
    }
    let previous = DEPTH.with(|d| d.replace(depth));
    let _restore = Restore(previous);
    f()
}

/// Opens a span. When all observability is off this is one relaxed
/// atomic load and returns an inert guard (no clock read, no
/// allocation). A span is live when a [`Recorder`] is installed, or when
/// the [`crate::flight`] recorder is on *and* the opening thread is
/// inside a query scope (so flight capture never pays for spans outside
/// an evaluation).
#[inline]
pub fn span(name: &'static str) -> Span {
    let flags = crate::flags();
    if flags == 0 {
        return Span { active: None, name };
    }
    span_slow(name, flags)
}

#[cold]
fn span_slow(name: &'static str, flags: u32) -> Span {
    let recorder = if flags & crate::FLAG_RECORDER != 0 {
        crate::current_recorder()
    } else {
        None
    };
    let flight = if flags & crate::FLAG_FLIGHT != 0 {
        crate::flight::current_query()
    } else {
        0
    };
    if recorder.is_none() && flight == 0 {
        return Span { active: None, name };
    }
    Span::open(name, recorder, flight)
}

struct ActiveSpan {
    recorder: Option<Arc<dyn Recorder>>,
    flight: u64,
    start: Instant,
    start_ns: u64,
    depth: u32,
    fields: Vec<Field>,
}

/// An open span; closing (dropping) it delivers a [`SpanRecord`] to the
/// recorder that was installed at open time.
pub struct Span {
    active: Option<ActiveSpan>,
    name: &'static str,
}

impl Span {
    fn open(name: &'static str, recorder: Option<Arc<dyn Recorder>>, flight: u64) -> Span {
        let start_ns = epoch().elapsed().as_nanos() as u64;
        let depth = DEPTH.with(|d| {
            let v = d.get();
            d.set(v + 1);
            v
        });
        Span {
            active: Some(ActiveSpan {
                recorder,
                flight,
                start: Instant::now(),
                start_ns,
                depth,
                fields: Vec::new(),
            }),
            name,
        }
    }

    /// Whether this span will be delivered to a recorder on close.
    pub fn is_recording(&self) -> bool {
        self.active.is_some()
    }

    /// Attaches a counter field (no-op on inert spans).
    pub fn record_u64(&mut self, key: &'static str, value: u64) {
        if let Some(a) = &mut self.active {
            a.fields.push(Field {
                key,
                value: FieldValue::U64(value),
            });
        }
    }

    /// Attaches a boolean field (no-op on inert spans).
    pub fn record_bool(&mut self, key: &'static str, value: bool) {
        if let Some(a) = &mut self.active {
            a.fields.push(Field {
                key,
                value: FieldValue::Bool(value),
            });
        }
    }

    /// Attaches a string field (no-op on inert spans).
    pub fn record_str(&mut self, key: &'static str, value: impl Into<String>) {
        if let Some(a) = &mut self.active {
            a.fields.push(Field {
                key,
                value: FieldValue::Str(value.into()),
            });
        }
    }
}

impl Drop for Span {
    fn drop(&mut self) {
        if let Some(a) = self.active.take() {
            DEPTH.with(|d| d.set(d.get().saturating_sub(1)));
            let record = SpanRecord {
                name: self.name,
                start_ns: a.start_ns,
                duration_ns: a.start.elapsed().as_nanos() as u64,
                depth: a.depth,
                thread: thread_id(),
                fields: a.fields,
            };
            if let Some(recorder) = &a.recorder {
                recorder.record_span(&record);
            }
            if a.flight != 0 {
                crate::flight::deliver(a.flight, record);
            }
        }
    }
}
