//! Prometheus text exposition format (version 0.0.4) for the metrics
//! registry.
//!
//! [`render_registry`] turns a [`crate::metrics::Registry`] gather into the `text/plain; version=0.0.4` wire format: `# HELP` /
//! `# TYPE` preamble per metric, one sample line per value, and for
//! histograms the cumulative `le`-labeled bucket series plus `_sum` and
//! `_count`. The output is deterministic (registration order for
//! metrics, lexicographic label order within a family), which is what
//! makes the golden test possible.
//!
//! Our histograms bucket by powers of two, so the rendered `le` bounds
//! are `1, 2, 4, …` up to the highest non-empty bucket, then `+Inf`.
//! Empty families render only their preamble — a scrape can always see
//! the metric exists.

use crate::histogram::LatencyHistogram;
use crate::metrics::{MetricSnapshot, MetricValue, Registry};

/// The content type Prometheus expects for this exposition.
pub const CONTENT_TYPE: &str = "text/plain; version=0.0.4";

/// Escapes a HELP string (`\` and newline, per the format spec).
fn escape_help(s: &str) -> String {
    s.replace('\\', "\\\\").replace('\n', "\\n")
}

/// Escapes a label value (`\`, `"`, and newline).
fn escape_label(s: &str) -> String {
    s.replace('\\', "\\\\")
        .replace('"', "\\\"")
        .replace('\n', "\\n")
}

fn render_histogram(out: &mut String, name: &str, labels: &str, h: &LatencyHistogram) {
    // Cumulative buckets up to the last non-empty one. Bucket `i` holds
    // values in `[2^i, 2^(i+1))`, so its `le` bound is `2^(i+1) - 1`
    // (inclusive, integer-valued observations).
    let counts = h.bucket_counts();
    let last = counts.iter().rposition(|&c| c > 0);
    let mut cum = 0u64;
    if let Some(last) = last {
        for (i, &c) in counts.iter().enumerate().take(last + 1) {
            cum += c;
            let bound = if i >= 63 {
                u64::MAX
            } else {
                (1u64 << (i + 1)) - 1
            };
            out.push_str(&format!("{name}_bucket{{{labels},le=\"{bound}\"}} {cum}\n"));
        }
    }
    out.push_str(&format!(
        "{name}_bucket{{{labels},le=\"+Inf\"}} {}\n",
        h.count()
    ));
    out.push_str(&format!("{name}_sum{{{labels}}} {}\n", h.sum_ns()));
    out.push_str(&format!("{name}_count{{{labels}}} {}\n", h.count()));
}

/// Renders one gathered snapshot list in exposition order.
pub fn render_snapshots(snapshots: &[MetricSnapshot]) -> String {
    let mut out = String::new();
    for m in snapshots {
        if !m.help.is_empty() {
            out.push_str(&format!("# HELP {} {}\n", m.name, escape_help(m.help)));
        }
        match &m.value {
            MetricValue::Counter(v) => {
                out.push_str(&format!("# TYPE {} counter\n", m.name));
                out.push_str(&format!("{} {}\n", m.name, v));
            }
            MetricValue::Gauge(v) => {
                out.push_str(&format!("# TYPE {} gauge\n", m.name));
                out.push_str(&format!("{} {}\n", m.name, v));
            }
            MetricValue::Counters(label, rows) => {
                out.push_str(&format!("# TYPE {} counter\n", m.name));
                for (value, count) in rows {
                    out.push_str(&format!(
                        "{}{{{label}=\"{}\"}} {count}\n",
                        m.name,
                        escape_label(value)
                    ));
                }
            }
            MetricValue::Gauges(label, rows) => {
                out.push_str(&format!("# TYPE {} gauge\n", m.name));
                for (value, v) in rows {
                    out.push_str(&format!(
                        "{}{{{label}=\"{}\"}} {v}\n",
                        m.name,
                        escape_label(value)
                    ));
                }
            }
            MetricValue::Histograms(label, rows) => {
                out.push_str(&format!("# TYPE {} histogram\n", m.name));
                for (value, hist) in rows {
                    let labels = format!("{label}=\"{}\"", escape_label(value));
                    render_histogram(&mut out, m.name, &labels, hist);
                }
            }
        }
    }
    out
}

/// Renders a whole registry: `render_snapshots(&registry.gather())`.
pub fn render_registry(registry: &Registry) -> String {
    render_snapshots(&registry.gather())
}

/// Renders only the instruments whose name starts with `prefix` — the
/// focused expositions behind the query service's `/tenants`
/// (`treequery_tenant_`) and `/slo` (`treequery_slo_`) endpoints.
pub fn render_prefixed(registry: &Registry, prefix: &str) -> String {
    let snapshots: Vec<_> = registry
        .gather()
        .into_iter()
        .filter(|m| m.name.starts_with(prefix))
        .collect();
    render_snapshots(&snapshots)
}

fn valid_metric_name(name: &str) -> bool {
    let mut chars = name.chars();
    match chars.next() {
        Some(c) if c.is_ascii_alphabetic() || c == '_' || c == ':' => {}
        _ => return false,
    }
    chars.all(|c| c.is_ascii_alphanumeric() || c == '_' || c == ':')
}

fn valid_label_name(name: &str) -> bool {
    let mut chars = name.chars();
    match chars.next() {
        Some(c) if c.is_ascii_alphabetic() || c == '_' => {}
        _ => return false,
    }
    chars.all(|c| c.is_ascii_alphanumeric() || c == '_')
}

/// Validates the label block of a sample line (the text between `{` and
/// `}`): comma-separated `name="value"` pairs with `\\`/`\"`/`\n`
/// escapes.
fn validate_labels(s: &str) -> Result<(), String> {
    let mut rest = s;
    loop {
        let eq = rest
            .find('=')
            .ok_or_else(|| format!("label pair without '=': {rest:?}"))?;
        let name = &rest[..eq];
        if !valid_label_name(name) {
            return Err(format!("invalid label name: {name:?}"));
        }
        rest = &rest[eq + 1..];
        if !rest.starts_with('"') {
            return Err(format!("label value not quoted after {name}"));
        }
        let bytes = rest.as_bytes();
        let mut i = 1;
        loop {
            match bytes.get(i) {
                None => return Err(format!("unterminated label value for {name}")),
                Some(b'\\') => i += 2,
                Some(b'"') => break,
                Some(_) => i += 1,
            }
        }
        rest = &rest[i + 1..];
        match rest.strip_prefix(',') {
            Some(tail) => rest = tail,
            None if rest.is_empty() => return Ok(()),
            None => return Err(format!("junk after label value: {rest:?}")),
        }
    }
}

/// Validates Prometheus text exposition (version 0.0.4): `# HELP` /
/// `# TYPE` preamble lines and `name[{labels}] value` samples. Returns
/// the number of sample lines. This is the committed parser the CI
/// endpoint gate round-trips `/metrics` scrapes through.
pub fn validate_exposition(text: &str) -> Result<usize, String> {
    let mut samples = 0usize;
    for (idx, line) in text.lines().enumerate() {
        let n = idx + 1;
        if line.is_empty() {
            continue;
        }
        if let Some(comment) = line.strip_prefix('#') {
            let comment = comment.strip_prefix(' ').unwrap_or(comment);
            if let Some(rest) = comment.strip_prefix("TYPE ") {
                let mut parts = rest.splitn(2, ' ');
                let name = parts.next().unwrap_or("");
                let kind = parts.next().unwrap_or("");
                if !valid_metric_name(name) {
                    return Err(format!("line {n}: invalid metric name in TYPE: {name:?}"));
                }
                if !matches!(
                    kind,
                    "counter" | "gauge" | "histogram" | "summary" | "untyped"
                ) {
                    return Err(format!("line {n}: unknown metric type: {kind:?}"));
                }
            } else if !comment.starts_with("HELP ") {
                // Bare comments are legal in the format; accept them.
            }
            continue;
        }
        // Sample line: metric name, optional {labels}, value, optional
        // timestamp.
        let name_end = line
            .find(|c: char| !(c.is_ascii_alphanumeric() || c == '_' || c == ':'))
            .unwrap_or(line.len());
        let name = &line[..name_end];
        if !valid_metric_name(name) {
            return Err(format!("line {n}: invalid metric name: {line:?}"));
        }
        let mut rest = &line[name_end..];
        if let Some(tail) = rest.strip_prefix('{') {
            let close = tail
                .find('}')
                .ok_or_else(|| format!("line {n}: unterminated label block"))?;
            validate_labels(&tail[..close]).map_err(|e| format!("line {n}: {e}"))?;
            rest = &tail[close + 1..];
        }
        let rest = rest.trim_start();
        let mut parts = rest.split_whitespace();
        let value = parts
            .next()
            .ok_or_else(|| format!("line {n}: sample without a value"))?;
        let value_ok = value.parse::<f64>().is_ok()
            || matches!(value, "+Inf" | "-Inf" | "NaN" | "Nan" | "nan");
        if !value_ok {
            return Err(format!("line {n}: unparseable sample value: {value:?}"));
        }
        if let Some(ts) = parts.next() {
            if ts.parse::<i64>().is_err() {
                return Err(format!("line {n}: unparseable timestamp: {ts:?}"));
            }
        }
        if parts.next().is_some() {
            return Err(format!("line {n}: trailing junk on sample line"));
        }
        samples += 1;
    }
    Ok(samples)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::metrics::Registry;

    /// The golden test for the exposition format: a registry with all
    /// three instrument kinds renders byte-for-byte as pinned here.
    #[test]
    fn render_golden() {
        let r = Registry::new();
        let c = r.counter(
            "treequery_queries_executed_total",
            "Queries run through Engine::eval paths.",
        );
        let g = r.gauge("treequery_live_bytes", "Live heap bytes right now.");
        let f = r.histogram_family(
            "treequery_stage_ns",
            "Per-stage wall time in nanoseconds.",
            "stage",
        );
        c.add(42);
        g.set(1 << 20);
        let h = f.with_label("exec.semijoin");
        h.observe(1); // bucket 0 ([0,2)), le="1"
        h.observe(3); // bucket 1 ([2,4)), le="3"
        h.observe(3);
        f.with_label("exec.sweep").observe(9); // bucket 3 ([8,16)), le="15"

        let expected = "\
# HELP treequery_queries_executed_total Queries run through Engine::eval paths.
# TYPE treequery_queries_executed_total counter
treequery_queries_executed_total 42
# HELP treequery_live_bytes Live heap bytes right now.
# TYPE treequery_live_bytes gauge
treequery_live_bytes 1048576
# HELP treequery_stage_ns Per-stage wall time in nanoseconds.
# TYPE treequery_stage_ns histogram
treequery_stage_ns_bucket{stage=\"exec.semijoin\",le=\"1\"} 1
treequery_stage_ns_bucket{stage=\"exec.semijoin\",le=\"3\"} 3
treequery_stage_ns_bucket{stage=\"exec.semijoin\",le=\"+Inf\"} 3
treequery_stage_ns_sum{stage=\"exec.semijoin\"} 7
treequery_stage_ns_count{stage=\"exec.semijoin\"} 3
treequery_stage_ns_bucket{stage=\"exec.sweep\",le=\"1\"} 0
treequery_stage_ns_bucket{stage=\"exec.sweep\",le=\"3\"} 0
treequery_stage_ns_bucket{stage=\"exec.sweep\",le=\"7\"} 0
treequery_stage_ns_bucket{stage=\"exec.sweep\",le=\"15\"} 1
treequery_stage_ns_bucket{stage=\"exec.sweep\",le=\"+Inf\"} 1
treequery_stage_ns_sum{stage=\"exec.sweep\"} 9
treequery_stage_ns_count{stage=\"exec.sweep\"} 1
";
        assert_eq!(render_registry(&r), expected);
    }

    #[test]
    fn counter_family_renders_one_line_per_label() {
        let r = Registry::new();
        let f = r.counter_family("treequery_serve_requests", "Requests by verb.", "verb");
        f.with_label("query").add(3);
        f.with_label("edit").inc();
        let text = render_registry(&r);
        assert!(text.contains("# TYPE treequery_serve_requests counter"));
        assert!(text.contains("treequery_serve_requests{verb=\"edit\"} 1\n"));
        assert!(text.contains("treequery_serve_requests{verb=\"query\"} 3\n"));
        assert_eq!(validate_exposition(&text).unwrap(), 2);
    }

    #[test]
    fn empty_family_renders_preamble_only() {
        let r = Registry::new();
        r.histogram_family("treequery_idle_ns", "never observed", "stage");
        let text = render_registry(&r);
        assert!(text.contains("# TYPE treequery_idle_ns histogram"));
        assert!(!text.contains("_bucket"));
    }

    #[test]
    fn label_values_are_escaped() {
        let r = Registry::new();
        let f = r.histogram_family("treequery_esc_ns", "", "q");
        f.with_label("a\"b\\c").observe(1);
        let text = render_registry(&r);
        assert!(text.contains("q=\"a\\\"b\\\\c\""), "got: {text}");
    }

    #[test]
    fn validate_accepts_rendered_registries() {
        let r = Registry::new();
        r.counter("treequery_ok_total", "fine").add(3);
        r.gauge("treequery_depth", "fine").set(-2);
        let f = r.histogram_family("treequery_lat_ns", "fine", "stage");
        f.with_label("exec.sweep\"x").observe(7);
        let text = render_registry(&r);
        let samples = validate_exposition(&text).unwrap();
        let sample_lines = text.lines().filter(|l| !l.starts_with('#')).count();
        assert_eq!(samples, sample_lines);
        assert!(samples >= 6, "counter + gauge + buckets/sum/count: {text}");
    }

    /// Tenant names are user-controlled strings flowing into label
    /// values, so the escape path is load-bearing: every escapable
    /// character must survive `CounterFamily`/`GaugeFamily`/
    /// `HistogramFamily` → render → `validate_exposition` intact.
    #[test]
    fn hostile_label_values_round_trip_every_family_kind() {
        let hostile = "quote\" back\\slash new\nline";
        let r = Registry::new();
        r.counter_family("treequery_esc_requests", "by tenant", "tenant")
            .with_label(hostile)
            .add(2);
        r.gauge_family("treequery_esc_burn", "by tenant", "tenant")
            .with_label(hostile)
            .set(-5);
        r.histogram_family("treequery_esc_lat_ns", "by tenant", "tenant")
            .with_label(hostile)
            .observe(3);
        let text = render_registry(&r);
        // Rendered escapes, per the exposition spec.
        let escaped = "tenant=\"quote\\\" back\\\\slash new\\nline\"";
        assert!(
            text.contains(&format!("treequery_esc_requests{{{escaped}}} 2\n")),
            "counter family: {text}"
        );
        assert!(
            text.contains(&format!("treequery_esc_burn{{{escaped}}} -5\n")),
            "gauge family: {text}"
        );
        assert!(
            text.contains(&format!("treequery_esc_lat_ns_count{{{escaped}}} 1\n")),
            "histogram family: {text}"
        );
        // No raw (unescaped) quote/newline inside a label block: every
        // sample line must still be one line that validates.
        let samples = validate_exposition(&text).expect("hostile labels still validate");
        let sample_lines = text.lines().filter(|l| !l.starts_with('#')).count();
        assert_eq!(samples, sample_lines);
    }

    #[test]
    fn each_escapable_character_escapes_alone() {
        for (raw, escaped) in [("\"", "\\\""), ("\\", "\\\\"), ("\n", "\\n")] {
            let r = Registry::new();
            r.counter_family("treequery_esc_one", "", "tenant")
                .with_label(raw)
                .inc();
            let text = render_registry(&r);
            assert!(
                text.contains(&format!("treequery_esc_one{{tenant=\"{escaped}\"}} 1\n")),
                "raw {raw:?} rendered: {text}"
            );
            validate_exposition(&text).expect("single hostile char validates");
        }
    }

    #[test]
    fn render_prefixed_filters_by_name() {
        let r = Registry::new();
        r.counter("treequery_tenant_queries", "").add(1);
        r.counter("treequery_serve_requests_total", "").add(2);
        let text = render_prefixed(&r, "treequery_tenant_");
        assert!(text.contains("treequery_tenant_queries 1\n"));
        assert!(!text.contains("treequery_serve_requests_total"));
        assert_eq!(validate_exposition(&text).unwrap(), 1);
    }

    #[test]
    fn validate_rejects_malformed_lines() {
        assert!(validate_exposition("9metric 1\n").is_err());
        assert!(validate_exposition("m{unclosed=\"v\" 1\n").is_err());
        assert!(validate_exposition("m{l=\"v\"} notanumber\n").is_err());
        assert!(validate_exposition("# TYPE m rocket\n").is_err());
        assert!(validate_exposition("m 1 2 3\n").is_err());
        assert_eq!(validate_exposition("m{l=\"a\\\"b\"} +Inf\n").unwrap(), 1);
        assert_eq!(validate_exposition("").unwrap(), 0);
    }

    #[test]
    fn help_newlines_are_escaped() {
        let r = Registry::new();
        r.counter("treequery_nl_total", "line one\nline two");
        let text = render_registry(&r);
        assert!(text.contains("# HELP treequery_nl_total line one\\nline two\n"));
    }
}
