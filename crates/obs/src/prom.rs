//! Prometheus text exposition format (version 0.0.4) for the metrics
//! registry.
//!
//! [`render_registry`] turns a [`crate::metrics::Registry`] gather into the `text/plain; version=0.0.4` wire format: `# HELP` /
//! `# TYPE` preamble per metric, one sample line per value, and for
//! histograms the cumulative `le`-labeled bucket series plus `_sum` and
//! `_count`. The output is deterministic (registration order for
//! metrics, lexicographic label order within a family), which is what
//! makes the golden test possible.
//!
//! Our histograms bucket by powers of two, so the rendered `le` bounds
//! are `1, 2, 4, …` up to the highest non-empty bucket, then `+Inf`.
//! Empty families render only their preamble — a scrape can always see
//! the metric exists.

use crate::histogram::LatencyHistogram;
use crate::metrics::{MetricSnapshot, MetricValue, Registry};

/// The content type Prometheus expects for this exposition.
pub const CONTENT_TYPE: &str = "text/plain; version=0.0.4";

/// Escapes a HELP string (`\` and newline, per the format spec).
fn escape_help(s: &str) -> String {
    s.replace('\\', "\\\\").replace('\n', "\\n")
}

/// Escapes a label value (`\`, `"`, and newline).
fn escape_label(s: &str) -> String {
    s.replace('\\', "\\\\")
        .replace('"', "\\\"")
        .replace('\n', "\\n")
}

fn render_histogram(out: &mut String, name: &str, labels: &str, h: &LatencyHistogram) {
    // Cumulative buckets up to the last non-empty one. Bucket `i` holds
    // values in `[2^i, 2^(i+1))`, so its `le` bound is `2^(i+1) - 1`
    // (inclusive, integer-valued observations).
    let counts = h.bucket_counts();
    let last = counts.iter().rposition(|&c| c > 0);
    let mut cum = 0u64;
    if let Some(last) = last {
        for (i, &c) in counts.iter().enumerate().take(last + 1) {
            cum += c;
            let bound = if i >= 63 {
                u64::MAX
            } else {
                (1u64 << (i + 1)) - 1
            };
            out.push_str(&format!("{name}_bucket{{{labels},le=\"{bound}\"}} {cum}\n"));
        }
    }
    out.push_str(&format!(
        "{name}_bucket{{{labels},le=\"+Inf\"}} {}\n",
        h.count()
    ));
    out.push_str(&format!("{name}_sum{{{labels}}} {}\n", h.sum_ns()));
    out.push_str(&format!("{name}_count{{{labels}}} {}\n", h.count()));
}

/// Renders one gathered snapshot list in exposition order.
pub fn render_snapshots(snapshots: &[MetricSnapshot]) -> String {
    let mut out = String::new();
    for m in snapshots {
        if !m.help.is_empty() {
            out.push_str(&format!("# HELP {} {}\n", m.name, escape_help(m.help)));
        }
        match &m.value {
            MetricValue::Counter(v) => {
                out.push_str(&format!("# TYPE {} counter\n", m.name));
                out.push_str(&format!("{} {}\n", m.name, v));
            }
            MetricValue::Gauge(v) => {
                out.push_str(&format!("# TYPE {} gauge\n", m.name));
                out.push_str(&format!("{} {}\n", m.name, v));
            }
            MetricValue::Histograms(label, rows) => {
                out.push_str(&format!("# TYPE {} histogram\n", m.name));
                for (value, hist) in rows {
                    let labels = format!("{label}=\"{}\"", escape_label(value));
                    render_histogram(&mut out, m.name, &labels, hist);
                }
            }
        }
    }
    out
}

/// Renders a whole registry: `render_snapshots(&registry.gather())`.
pub fn render_registry(registry: &Registry) -> String {
    render_snapshots(&registry.gather())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::metrics::Registry;

    /// The golden test for the exposition format: a registry with all
    /// three instrument kinds renders byte-for-byte as pinned here.
    #[test]
    fn render_golden() {
        let r = Registry::new();
        let c = r.counter(
            "treequery_queries_executed_total",
            "Queries run through Engine::eval paths.",
        );
        let g = r.gauge("treequery_live_bytes", "Live heap bytes right now.");
        let f = r.histogram_family(
            "treequery_stage_ns",
            "Per-stage wall time in nanoseconds.",
            "stage",
        );
        c.add(42);
        g.set(1 << 20);
        let h = f.with_label("exec.semijoin");
        h.observe(1); // bucket 0 ([0,2)), le="1"
        h.observe(3); // bucket 1 ([2,4)), le="3"
        h.observe(3);
        f.with_label("exec.sweep").observe(9); // bucket 3 ([8,16)), le="15"

        let expected = "\
# HELP treequery_queries_executed_total Queries run through Engine::eval paths.
# TYPE treequery_queries_executed_total counter
treequery_queries_executed_total 42
# HELP treequery_live_bytes Live heap bytes right now.
# TYPE treequery_live_bytes gauge
treequery_live_bytes 1048576
# HELP treequery_stage_ns Per-stage wall time in nanoseconds.
# TYPE treequery_stage_ns histogram
treequery_stage_ns_bucket{stage=\"exec.semijoin\",le=\"1\"} 1
treequery_stage_ns_bucket{stage=\"exec.semijoin\",le=\"3\"} 3
treequery_stage_ns_bucket{stage=\"exec.semijoin\",le=\"+Inf\"} 3
treequery_stage_ns_sum{stage=\"exec.semijoin\"} 7
treequery_stage_ns_count{stage=\"exec.semijoin\"} 3
treequery_stage_ns_bucket{stage=\"exec.sweep\",le=\"1\"} 0
treequery_stage_ns_bucket{stage=\"exec.sweep\",le=\"3\"} 0
treequery_stage_ns_bucket{stage=\"exec.sweep\",le=\"7\"} 0
treequery_stage_ns_bucket{stage=\"exec.sweep\",le=\"15\"} 1
treequery_stage_ns_bucket{stage=\"exec.sweep\",le=\"+Inf\"} 1
treequery_stage_ns_sum{stage=\"exec.sweep\"} 9
treequery_stage_ns_count{stage=\"exec.sweep\"} 1
";
        assert_eq!(render_registry(&r), expected);
    }

    #[test]
    fn empty_family_renders_preamble_only() {
        let r = Registry::new();
        r.histogram_family("treequery_idle_ns", "never observed", "stage");
        let text = render_registry(&r);
        assert!(text.contains("# TYPE treequery_idle_ns histogram"));
        assert!(!text.contains("_bucket"));
    }

    #[test]
    fn label_values_are_escaped() {
        let r = Registry::new();
        let f = r.histogram_family("treequery_esc_ns", "", "q");
        f.with_label("a\"b\\c").observe(1);
        let text = render_registry(&r);
        assert!(text.contains("q=\"a\\\"b\\\\c\""), "got: {text}");
    }

    #[test]
    fn help_newlines_are_escaped() {
        let r = Registry::new();
        r.counter("treequery_nl_total", "line one\nline two");
        let text = render_registry(&r);
        assert!(text.contains("# HELP treequery_nl_total line one\\nline two\n"));
    }
}
