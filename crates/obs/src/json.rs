//! A serde-free JSON value: builder, renderer, and parser.
//!
//! The build environment has no crates.io access, so the machine-readable
//! surfaces (`harness --report`, `JsonLinesRecorder`,
//! `explain_analyze().to_json()`) hand-roll their JSON through this small
//! value type instead of depending on `serde`.

/// A JSON value. Object keys keep insertion order (reports stay diffable
/// across runs).
#[derive(Clone, Debug, PartialEq)]
pub enum Json {
    /// `null`.
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// An unsigned integer (the common case for counters and nanoseconds).
    U64(u64),
    /// A signed integer.
    I64(i64),
    /// A float (rendered with enough precision to round-trip).
    F64(f64),
    /// A string.
    Str(String),
    /// An array.
    Arr(Vec<Json>),
    /// An object, insertion-ordered.
    Obj(Vec<(String, Json)>),
}

impl Json {
    /// An empty object.
    pub fn obj() -> Json {
        Json::Obj(Vec::new())
    }

    /// Adds (or replaces) a key in an object; panics on non-objects.
    pub fn set(mut self, key: impl Into<String>, value: impl Into<Json>) -> Json {
        let Json::Obj(fields) = &mut self else {
            panic!("Json::set on a non-object");
        };
        let key = key.into();
        let value = value.into();
        if let Some(slot) = fields.iter_mut().find(|(k, _)| *k == key) {
            slot.1 = value;
        } else {
            fields.push((key, value));
        }
        self
    }

    /// Object field lookup (`None` on non-objects and missing keys).
    pub fn get(&self, key: &str) -> Option<&Json> {
        match self {
            Json::Obj(fields) => fields.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// The value as a u64, if it is one.
    pub fn as_u64(&self) -> Option<u64> {
        match self {
            Json::U64(v) => Some(*v),
            Json::I64(v) => u64::try_from(*v).ok(),
            _ => None,
        }
    }

    /// The value as an f64: floats directly, integers widened (lossy
    /// above 2^53, like JSON itself).
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Json::F64(v) => Some(*v),
            Json::U64(v) => Some(*v as f64),
            Json::I64(v) => Some(*v as f64),
            _ => None,
        }
    }

    /// The value as a string slice, if it is one.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Json::Str(s) => Some(s),
            _ => None,
        }
    }

    /// The value as an array slice, if it is one.
    pub fn as_arr(&self) -> Option<&[Json]> {
        match self {
            Json::Arr(v) => Some(v),
            _ => None,
        }
    }

    /// Renders to a compact JSON string.
    pub fn render(&self) -> String {
        let mut out = String::new();
        self.write(&mut out);
        out
    }

    fn write(&self, out: &mut String) {
        match self {
            Json::Null => out.push_str("null"),
            Json::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
            Json::U64(v) => out.push_str(&v.to_string()),
            Json::I64(v) => out.push_str(&v.to_string()),
            Json::F64(v) => {
                if v.is_finite() {
                    // `{:?}` prints shortest-round-trip floats.
                    out.push_str(&format!("{v:?}"));
                } else {
                    out.push_str("null");
                }
            }
            Json::Str(s) => write_escaped(s, out),
            Json::Arr(items) => {
                out.push('[');
                for (i, item) in items.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    item.write(out);
                }
                out.push(']');
            }
            Json::Obj(fields) => {
                out.push('{');
                for (i, (k, v)) in fields.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    write_escaped(k, out);
                    out.push(':');
                    v.write(out);
                }
                out.push('}');
            }
        }
    }
}

impl From<bool> for Json {
    fn from(v: bool) -> Json {
        Json::Bool(v)
    }
}
impl From<u64> for Json {
    fn from(v: u64) -> Json {
        Json::U64(v)
    }
}
impl From<u32> for Json {
    fn from(v: u32) -> Json {
        Json::U64(v as u64)
    }
}
impl From<usize> for Json {
    fn from(v: usize) -> Json {
        Json::U64(v as u64)
    }
}
impl From<i64> for Json {
    fn from(v: i64) -> Json {
        Json::I64(v)
    }
}
impl From<f64> for Json {
    fn from(v: f64) -> Json {
        Json::F64(v)
    }
}
impl From<&str> for Json {
    fn from(v: &str) -> Json {
        Json::Str(v.to_owned())
    }
}
impl From<String> for Json {
    fn from(v: String) -> Json {
        Json::Str(v)
    }
}
impl From<Vec<Json>> for Json {
    fn from(v: Vec<Json>) -> Json {
        Json::Arr(v)
    }
}

fn write_escaped(s: &str, out: &mut String) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
}

/// A parse failure, with the byte offset it occurred at.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct JsonParseError {
    /// Byte offset of the failure in the input.
    pub offset: usize,
    /// What went wrong.
    pub message: String,
}

impl std::fmt::Display for JsonParseError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "JSON parse error at byte {}: {}",
            self.offset, self.message
        )
    }
}

impl std::error::Error for JsonParseError {}

/// Parses one JSON value (trailing whitespace allowed, nothing else).
/// Used by the tests that validate the harness's `--report` output.
pub fn parse_json(input: &str) -> Result<Json, JsonParseError> {
    let mut p = Parser {
        bytes: input.as_bytes(),
        pos: 0,
    };
    p.skip_ws();
    let v = p.value()?;
    p.skip_ws();
    if p.pos != p.bytes.len() {
        return Err(p.err("trailing characters after value"));
    }
    Ok(v)
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl Parser<'_> {
    fn err(&self, message: &str) -> JsonParseError {
        JsonParseError {
            offset: self.pos,
            message: message.to_owned(),
        }
    }

    fn skip_ws(&mut self) {
        while let Some(&b) = self.bytes.get(self.pos) {
            if matches!(b, b' ' | b'\t' | b'\n' | b'\r') {
                self.pos += 1;
            } else {
                break;
            }
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn eat(&mut self, b: u8) -> Result<(), JsonParseError> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(self.err(&format!("expected '{}'", b as char)))
        }
    }

    fn eat_literal(&mut self, lit: &str) -> Result<(), JsonParseError> {
        if self.bytes[self.pos..].starts_with(lit.as_bytes()) {
            self.pos += lit.len();
            Ok(())
        } else {
            Err(self.err(&format!("expected '{lit}'")))
        }
    }

    fn value(&mut self) -> Result<Json, JsonParseError> {
        match self.peek() {
            Some(b'n') => self.eat_literal("null").map(|()| Json::Null),
            Some(b't') => self.eat_literal("true").map(|()| Json::Bool(true)),
            Some(b'f') => self.eat_literal("false").map(|()| Json::Bool(false)),
            Some(b'"') => self.string().map(Json::Str),
            Some(b'[') => self.array(),
            Some(b'{') => self.object(),
            Some(b'-' | b'0'..=b'9') => self.number(),
            _ => Err(self.err("expected a JSON value")),
        }
    }

    fn array(&mut self) -> Result<Json, JsonParseError> {
        self.eat(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Json::Arr(items));
        }
        loop {
            self.skip_ws();
            items.push(self.value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Json::Arr(items));
                }
                _ => return Err(self.err("expected ',' or ']'")),
            }
        }
    }

    fn object(&mut self) -> Result<Json, JsonParseError> {
        self.eat(b'{')?;
        let mut fields = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Json::Obj(fields));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.eat(b':')?;
            self.skip_ws();
            let value = self.value()?;
            fields.push((key, value));
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Json::Obj(fields));
                }
                _ => return Err(self.err("expected ',' or '}'")),
            }
        }
    }

    fn string(&mut self) -> Result<String, JsonParseError> {
        self.eat(b'"')?;
        let mut out = String::new();
        loop {
            let start = self.pos;
            match self.peek() {
                None => return Err(self.err("unterminated string")),
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    match self.peek() {
                        Some(b'"') => out.push('"'),
                        Some(b'\\') => out.push('\\'),
                        Some(b'/') => out.push('/'),
                        Some(b'n') => out.push('\n'),
                        Some(b'r') => out.push('\r'),
                        Some(b't') => out.push('\t'),
                        Some(b'b') => out.push('\u{8}'),
                        Some(b'f') => out.push('\u{c}'),
                        Some(b'u') => {
                            let hex = self
                                .bytes
                                .get(self.pos + 1..self.pos + 5)
                                .ok_or_else(|| self.err("truncated \\u escape"))?;
                            let hex = std::str::from_utf8(hex)
                                .map_err(|_| self.err("invalid \\u escape"))?;
                            let code = u32::from_str_radix(hex, 16)
                                .map_err(|_| self.err("invalid \\u escape"))?;
                            // Surrogates are not expected in our own output.
                            out.push(
                                char::from_u32(code)
                                    .ok_or_else(|| self.err("\\u escape is not a scalar"))?,
                            );
                            self.pos += 4;
                        }
                        _ => return Err(self.err("invalid escape")),
                    }
                    self.pos += 1;
                }
                Some(_) => {
                    // Take the longest run of plain UTF-8.
                    let mut end = self.pos;
                    while end < self.bytes.len() && !matches!(self.bytes[end], b'"' | b'\\') {
                        end += 1;
                    }
                    let chunk = std::str::from_utf8(&self.bytes[start..end])
                        .map_err(|_| self.err("invalid UTF-8 in string"))?;
                    out.push_str(chunk);
                    self.pos = end;
                }
            }
        }
    }

    fn number(&mut self) -> Result<Json, JsonParseError> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        while matches!(self.peek(), Some(b'0'..=b'9')) {
            self.pos += 1;
        }
        let mut is_float = false;
        if self.peek() == Some(b'.') {
            is_float = true;
            self.pos += 1;
            while matches!(self.peek(), Some(b'0'..=b'9')) {
                self.pos += 1;
            }
        }
        if matches!(self.peek(), Some(b'e' | b'E')) {
            is_float = true;
            self.pos += 1;
            if matches!(self.peek(), Some(b'+' | b'-')) {
                self.pos += 1;
            }
            while matches!(self.peek(), Some(b'0'..=b'9')) {
                self.pos += 1;
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos]).expect("ASCII number");
        if !is_float {
            if let Ok(v) = text.parse::<u64>() {
                return Ok(Json::U64(v));
            }
            if let Ok(v) = text.parse::<i64>() {
                return Ok(Json::I64(v));
            }
        }
        text.parse::<f64>()
            .map(Json::F64)
            .map_err(|_| self.err("invalid number"))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn render_and_parse_round_trip() {
        let v = Json::obj()
            .set("name", "exec.semijoin")
            .set("calls", 3u64)
            .set("hit", true)
            .set("ratio", 0.5f64)
            .set("note", "a \"quoted\"\nline\t\\")
            .set(
                "nested",
                Json::Arr(vec![Json::Null, Json::U64(7), Json::I64(-2)]),
            );
        let text = v.render();
        let back = parse_json(&text).unwrap();
        assert_eq!(back, v);
    }

    #[test]
    fn parses_foreign_json() {
        let v =
            parse_json(r#" { "a" : [ 1 , 2.5 , -3 , 1e3 ] , "b" : { } , "c" : "A" } "#).unwrap();
        assert_eq!(v.get("a").unwrap().as_arr().unwrap().len(), 4);
        assert_eq!(v.get("a").unwrap().as_arr().unwrap()[0].as_u64(), Some(1));
        assert_eq!(v.get("c").unwrap().as_str(), Some("A"));
    }

    #[test]
    fn rejects_malformed_input() {
        for bad in ["", "{", "[1,]", "{\"a\":}", "\"unterminated", "1 2", "nul"] {
            assert!(parse_json(bad).is_err(), "{bad:?} should fail");
        }
    }

    #[test]
    fn set_replaces_existing_keys() {
        let v = Json::obj().set("k", 1u64).set("k", 2u64);
        assert_eq!(v.get("k").unwrap().as_u64(), Some(2));
        assert_eq!(v.render(), r#"{"k":2}"#);
    }
}
