//! Allocation accounting: a counting [`GlobalAlloc`] wrapper with
//! thread-local attribution scopes.
//!
//! The paper's bounds are *resource* bounds — Theorem 3.2 is as much a
//! space claim (the ground Horn formula is linear in `|D|`) as a time
//! claim — so bytes and allocations are first-class observables here,
//! mirroring the span layer's design:
//!
//! * [`CountingAlloc`] wraps the system allocator. `treequery-obs`
//!   installs it as the process `#[global_allocator]`, so every crate in
//!   the workspace is covered without per-binary setup. When accounting
//!   is **off** (the default) each allocation pays one relaxed atomic
//!   load — the same disabled-path budget the span layer holds itself to
//!   (enforced by `harness --check-noop-overhead`).
//! * [`AccountingGuard`] turns accounting on for a region (nestable;
//!   reference-counted). While on, process-wide totals
//!   ([`global_stats`]: allocations, bytes, live bytes, peak live) are
//!   maintained on every alloc/dealloc.
//! * [`AllocScope`] attributes allocations to a *stage name* — the same
//!   dot-separated names the span layer uses (`exec.semijoin`,
//!   `hornsat.solve`, …). Scopes are a thread-local stack: the innermost
//!   scope on the allocating thread is charged (self-exclusive, like a
//!   span's self time). Worker pools propagate the submitting thread's
//!   scope with [`current_scope`] + [`with_scope`], so a kernel chunk
//!   running on a pool worker still charges the stage that dispatched
//!   it.
//!
//! Closed scopes merge their counters into a process-wide per-name table
//! read by `EXPLAIN ANALYZE` ([`take_scope_totals`]) — which is what
//! puts `mem` columns next to the per-stage wall times.

use std::alloc::{GlobalAlloc, Layout, System};
use std::cell::Cell;
use std::collections::BTreeMap;
use std::sync::atomic::{AtomicBool, AtomicI64, AtomicU64, AtomicUsize, Ordering};
use std::sync::{Arc, Mutex};

/// The counting allocator. Installed by `treequery-obs` as the process
/// `#[global_allocator]`; do not install a second one.
pub struct CountingAlloc;

/// Fast-path switch: mirrors `ENABLE_DEPTH > 0`. One relaxed load per
/// allocation when accounting is off.
static ACCOUNTING: AtomicBool = AtomicBool::new(false);
/// Reference count of active [`AccountingGuard`]s.
static ENABLE_DEPTH: AtomicUsize = AtomicUsize::new(0);

// Process-wide totals, maintained only while accounting is on.
static G_ALLOCS: AtomicU64 = AtomicU64::new(0);
static G_FREES: AtomicU64 = AtomicU64::new(0);
static G_BYTES: AtomicU64 = AtomicU64::new(0);
static G_FREED: AtomicU64 = AtomicU64::new(0);
static G_LIVE: AtomicI64 = AtomicI64::new(0);
static G_PEAK: AtomicI64 = AtomicI64::new(0);

/// Per-scope counters, shared across threads (pool workers charge the
/// submitting stage's cell through the propagated handle).
#[derive(Debug)]
struct ScopeCell {
    name: &'static str,
    allocs: AtomicU64,
    frees: AtomicU64,
    bytes: AtomicU64,
    freed: AtomicU64,
    live: AtomicI64,
    peak: AtomicI64,
}

impl ScopeCell {
    fn new(name: &'static str) -> ScopeCell {
        ScopeCell {
            name,
            allocs: AtomicU64::new(0),
            frees: AtomicU64::new(0),
            bytes: AtomicU64::new(0),
            freed: AtomicU64::new(0),
            live: AtomicI64::new(0),
            peak: AtomicI64::new(0),
        }
    }

    fn charge_alloc(&self, size: u64) {
        self.allocs.fetch_add(1, Ordering::Relaxed);
        self.bytes.fetch_add(size, Ordering::Relaxed);
        let live = self.live.fetch_add(size as i64, Ordering::Relaxed) + size as i64;
        self.peak.fetch_max(live, Ordering::Relaxed);
    }

    fn charge_dealloc(&self, size: u64) {
        self.frees.fetch_add(1, Ordering::Relaxed);
        self.freed.fetch_add(size, Ordering::Relaxed);
        self.live.fetch_sub(size as i64, Ordering::Relaxed);
    }

    fn stats(&self) -> ScopeStats {
        ScopeStats {
            allocs: self.allocs.load(Ordering::Relaxed),
            frees: self.frees.load(Ordering::Relaxed),
            bytes: self.bytes.load(Ordering::Relaxed),
            freed_bytes: self.freed.load(Ordering::Relaxed),
            peak_live: self.peak.load(Ordering::Relaxed).max(0) as u64,
        }
    }
}

/// A snapshot of one attribution scope's counters.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct ScopeStats {
    /// Allocations charged to the scope.
    pub allocs: u64,
    /// Deallocations charged to the scope.
    pub frees: u64,
    /// Bytes allocated while the scope was innermost.
    pub bytes: u64,
    /// Bytes freed while the scope was innermost.
    pub freed_bytes: u64,
    /// Peak of the scope's own net live bytes (allocated − freed within
    /// the scope; clamped at zero — a scope that only frees reports 0).
    pub peak_live: u64,
}

impl ScopeStats {
    fn merge(&mut self, other: &ScopeStats) {
        self.allocs += other.allocs;
        self.frees += other.frees;
        self.bytes += other.bytes;
        self.freed_bytes += other.freed_bytes;
        // Scopes with the same name are sequenced or concurrent; either
        // way the max is the honest upper envelope we can keep after the
        // cells are gone.
        self.peak_live = self.peak_live.max(other.peak_live);
    }
}

/// Process-wide allocation totals (valid while accounting is on).
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct GlobalStats {
    /// Total allocations.
    pub allocs: u64,
    /// Total deallocations.
    pub frees: u64,
    /// Total bytes allocated.
    pub bytes: u64,
    /// Total bytes freed.
    pub freed_bytes: u64,
    /// Currently live bytes (allocated − freed since accounting began;
    /// clamped at zero).
    pub live_bytes: u64,
    /// Peak of `live_bytes` since the last [`reset_peak_live`].
    pub peak_live: u64,
}

std::thread_local! {
    /// The innermost attribution scope on this thread. A raw pointer so
    /// the allocation hot path never touches a type with a destructor;
    /// validity is guaranteed by the [`AllocScope`]/[`with_scope`] frame
    /// that set it (the pointer is cleared before that frame releases
    /// its `Arc`).
    static CURRENT: Cell<*const ScopeCell> = const { Cell::new(std::ptr::null()) };
}

// `inline(never)`: keeps the TLS access and its lazy-init check out of
// the allocator's disabled fast path, which must stay a bare
// load-test-branch around the `System` call.
#[inline(never)]
fn charge_alloc(size: usize) {
    let size = size as u64;
    G_ALLOCS.fetch_add(1, Ordering::Relaxed);
    G_BYTES.fetch_add(size, Ordering::Relaxed);
    let live = G_LIVE.fetch_add(size as i64, Ordering::Relaxed) + size as i64;
    G_PEAK.fetch_max(live, Ordering::Relaxed);
    let cell = CURRENT.with(Cell::get);
    if !cell.is_null() {
        // SAFETY: non-null means an AllocScope / with_scope frame on this
        // thread is alive and holds the Arc; it nulls the pointer before
        // dropping it.
        unsafe { (*cell).charge_alloc(size) };
    }
}

#[inline(never)]
fn charge_dealloc(size: usize) {
    let size = size as u64;
    G_FREES.fetch_add(1, Ordering::Relaxed);
    G_FREED.fetch_add(size, Ordering::Relaxed);
    G_LIVE.fetch_sub(size as i64, Ordering::Relaxed);
    let cell = CURRENT.with(Cell::get);
    if !cell.is_null() {
        // SAFETY: as in `charge_alloc`.
        unsafe { (*cell).charge_dealloc(size) };
    }
}

// SAFETY: forwards every operation to `System`, only adding counter
// updates that never allocate, so `GlobalAlloc`'s contract is inherited.
unsafe impl GlobalAlloc for CountingAlloc {
    #[inline]
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        let p = System.alloc(layout);
        if !p.is_null() && ACCOUNTING.load(Ordering::Relaxed) {
            charge_alloc(layout.size());
        }
        p
    }

    #[inline]
    unsafe fn alloc_zeroed(&self, layout: Layout) -> *mut u8 {
        let p = System.alloc_zeroed(layout);
        if !p.is_null() && ACCOUNTING.load(Ordering::Relaxed) {
            charge_alloc(layout.size());
        }
        p
    }

    #[inline]
    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        if ACCOUNTING.load(Ordering::Relaxed) {
            charge_dealloc(layout.size());
        }
        System.dealloc(ptr, layout);
    }

    #[inline]
    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        let p = System.realloc(ptr, layout, new_size);
        if !p.is_null() && ACCOUNTING.load(Ordering::Relaxed) {
            // One grow/shrink = one allocation of the new block plus one
            // free of the old, so `bytes` totals remain "every byte the
            // allocator was asked for" (Vec's doubling shows up exactly).
            charge_alloc(new_size);
            charge_dealloc(layout.size());
        }
        p
    }
}

/// Turns accounting on for the guard's lifetime. Nestable and
/// refcounted: accounting stays on until the outermost guard drops.
#[derive(Debug)]
pub struct AccountingGuard(());

impl AccountingGuard {
    /// Enables allocation accounting (process-wide).
    pub fn begin() -> AccountingGuard {
        if ENABLE_DEPTH.fetch_add(1, Ordering::SeqCst) == 0 {
            ACCOUNTING.store(true, Ordering::SeqCst);
        }
        AccountingGuard(())
    }
}

impl Drop for AccountingGuard {
    fn drop(&mut self) {
        if ENABLE_DEPTH.fetch_sub(1, Ordering::SeqCst) == 1 {
            ACCOUNTING.store(false, Ordering::SeqCst);
        }
    }
}

/// Whether allocation accounting is currently on.
#[inline]
pub fn accounting() -> bool {
    ACCOUNTING.load(Ordering::Relaxed)
}

/// The process-wide totals. Counters only move while accounting is on,
/// so a `snapshot → work → snapshot` delta brackets exactly the
/// accounted region.
pub fn global_stats() -> GlobalStats {
    GlobalStats {
        allocs: G_ALLOCS.load(Ordering::Relaxed),
        frees: G_FREES.load(Ordering::Relaxed),
        bytes: G_BYTES.load(Ordering::Relaxed),
        freed_bytes: G_FREED.load(Ordering::Relaxed),
        live_bytes: G_LIVE.load(Ordering::Relaxed).max(0) as u64,
        peak_live: G_PEAK.load(Ordering::Relaxed).max(0) as u64,
    }
}

/// Resets the global peak-live watermark to the current live level, so
/// the next [`global_stats`] read reports the peak *since this call* —
/// the "how much extra memory did this query need" question E21 asks.
pub fn reset_peak_live() {
    G_PEAK.store(G_LIVE.load(Ordering::Relaxed), Ordering::Relaxed);
}

/// Closed-scope totals by stage name, merged as owner scopes drop.
static SCOPE_TOTALS: Mutex<BTreeMap<&'static str, ScopeStats>> = Mutex::new(BTreeMap::new());

/// Drains and returns the per-stage totals accumulated since the last
/// call (name-sorted). `EXPLAIN ANALYZE` drains before and after its
/// measured run so the table holds exactly that run's stages; like the
/// span recorder slot, the table is process-global — concurrent analyzed
/// runs would mix their attributions.
pub fn take_scope_totals() -> Vec<(&'static str, ScopeStats)> {
    let mut map = SCOPE_TOTALS.lock().expect("scope totals poisoned");
    std::mem::take(&mut *map).into_iter().collect()
}

/// An attribution scope: while it is the innermost scope on a thread,
/// that thread's allocations are charged to `name`. Inert (and free
/// beyond one relaxed load) when accounting is off.
#[derive(Debug)]
pub struct AllocScope {
    /// `Some` only while accounting was on at entry.
    cell: Option<Arc<ScopeCell>>,
    prev: *const ScopeCell,
}

impl AllocScope {
    /// Pushes an attribution scope named `name` onto this thread's
    /// stack. Use the span layer's stage names so `EXPLAIN ANALYZE` can
    /// join `mem` columns onto the measured stage tree.
    pub fn enter(name: &'static str) -> AllocScope {
        if !ACCOUNTING.load(Ordering::Relaxed) {
            return AllocScope {
                cell: None,
                prev: std::ptr::null(),
            };
        }
        // The Arc itself is allocated before the scope becomes current,
        // so a scope never charges its own bookkeeping to itself.
        let cell = Arc::new(ScopeCell::new(name));
        let prev = CURRENT.with(|c| c.replace(Arc::as_ptr(&cell)));
        AllocScope {
            cell: Some(cell),
            prev,
        }
    }

    /// The scope's own counters so far (self-exclusive: bytes charged
    /// while a nested scope was innermost belong to the nested scope).
    pub fn stats(&self) -> ScopeStats {
        self.cell
            .as_ref()
            .map_or(ScopeStats::default(), |c| c.stats())
    }
}

impl Drop for AllocScope {
    fn drop(&mut self) {
        if let Some(cell) = self.cell.take() {
            // Restore the stack *before* any bookkeeping that may
            // allocate, so the merge below is charged to the parent.
            CURRENT.with(|c| c.set(self.prev));
            let stats = cell.stats();
            let mut map = SCOPE_TOTALS.lock().expect("scope totals poisoned");
            map.entry(cell.name).or_default().merge(&stats);
        }
    }
}

/// A cloneable handle to a live scope, for carrying attribution across
/// threads (the worker pool captures one at submission).
#[derive(Clone, Debug)]
pub struct ScopeHandle(Arc<ScopeCell>);

/// The innermost scope of the current thread, if any. The handle keeps
/// the scope's counters alive independently of the originating
/// [`AllocScope`] guard.
pub fn current_scope() -> Option<ScopeHandle> {
    let ptr = CURRENT.with(Cell::get);
    if ptr.is_null() {
        return None;
    }
    // SAFETY: a non-null CURRENT means the AllocScope / with_scope frame
    // that set it is still alive on this thread (they null the pointer
    // before releasing their Arc), so the strong count is ≥ 1 and the
    // pointer came from `Arc::as_ptr`.
    unsafe {
        Arc::increment_strong_count(ptr);
        Some(ScopeHandle(Arc::from_raw(ptr)))
    }
}

/// Runs `f` with `handle`'s scope installed as this thread's innermost
/// scope (restored afterwards, also on panic). This is how pool workers
/// charge the submitting stage.
pub fn with_scope<T>(handle: &ScopeHandle, f: impl FnOnce() -> T) -> T {
    struct Restore(*const ScopeCell);
    impl Drop for Restore {
        fn drop(&mut self) {
            CURRENT.with(|c| c.set(self.0));
        }
    }
    let prev = CURRENT.with(|c| c.replace(Arc::as_ptr(&handle.0)));
    let _restore = Restore(prev);
    f()
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Serializes the accounting tests: the enable switch and the totals
    /// table are process-global.
    static TEST_LOCK: Mutex<()> = Mutex::new(());

    fn lock() -> std::sync::MutexGuard<'static, ()> {
        TEST_LOCK.lock().unwrap_or_else(|e| e.into_inner())
    }

    #[test]
    fn disabled_scopes_are_inert() {
        let _l = lock();
        assert!(!accounting(), "tests serialize on TEST_LOCK");
        let s = AllocScope::enter("test.inert");
        let _v: Vec<u64> = Vec::with_capacity(64);
        assert_eq!(s.stats(), ScopeStats::default());
    }

    #[test]
    fn scope_attributes_this_threads_allocations() {
        let _l = lock();
        let _on = AccountingGuard::begin();
        let scope = AllocScope::enter("test.attrib");
        let v: Vec<u8> = Vec::with_capacity(4096);
        let stats = scope.stats();
        drop(v);
        assert!(stats.allocs >= 1, "{stats:?}");
        assert!(stats.bytes >= 4096, "{stats:?}");
        assert!(stats.peak_live >= 4096, "{stats:?}");
        let after = scope.stats();
        assert!(after.frees >= 1 && after.freed_bytes >= 4096, "{after:?}");
    }

    #[test]
    fn nesting_is_self_exclusive() {
        let _l = lock();
        let _on = AccountingGuard::begin();
        let outer = AllocScope::enter("test.outer");
        {
            let inner = AllocScope::enter("test.inner");
            let v: Vec<u8> = Vec::with_capacity(1 << 16);
            assert!(inner.stats().bytes >= 1 << 16);
            drop(v);
        }
        // The inner scope's 64 KiB were not charged to the outer scope.
        assert!(outer.stats().bytes < 1 << 16, "{:?}", outer.stats());
    }

    #[test]
    fn closed_scopes_merge_into_the_totals_table() {
        let _l = lock();
        let _on = AccountingGuard::begin();
        take_scope_totals();
        {
            let _s = AllocScope::enter("test.totals");
            let _v: Vec<u8> = Vec::with_capacity(2048);
        }
        let totals = take_scope_totals();
        let row = totals.iter().find(|(n, _)| *n == "test.totals");
        let (_, stats) = row.expect("closed scope recorded");
        assert!(stats.bytes >= 2048, "{stats:?}");
    }

    #[test]
    fn handles_carry_attribution_across_threads() {
        let _l = lock();
        let _on = AccountingGuard::begin();
        let scope = AllocScope::enter("test.cross");
        let handle = current_scope().expect("scope is current");
        std::thread::scope(|s| {
            s.spawn(|| {
                with_scope(&handle, || {
                    let _v: Vec<u8> = Vec::with_capacity(8192);
                });
            });
        });
        assert!(scope.stats().bytes >= 8192, "{:?}", scope.stats());
    }

    #[test]
    fn global_stats_move_only_while_accounting() {
        let _l = lock();
        let _on = AccountingGuard::begin();
        let before = global_stats();
        let v: Vec<u8> = Vec::with_capacity(1 << 14);
        let after = global_stats();
        drop(v);
        assert!(after.bytes >= before.bytes + (1 << 14));
        assert!(after.allocs > before.allocs);
    }
}
