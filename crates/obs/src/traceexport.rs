//! Chrome Trace Event export for flight-recorded queries.
//!
//! Converts [`QueryRecord`] span lists into the Trace Event JSON format
//! (the `{"traceEvents": [...]}` object form) loadable in Perfetto and
//! `chrome://tracing`: each span becomes a complete (`ph: "X"`) event
//! with microsecond `ts`/`dur`, `pid` 1, and the span's dense per-thread
//! id as `tid` — so cross-worker chunk spans (`exec.sweep.chunk`,
//! `exec.join.chunk`, …) land on their worker's own track.
//!
//! Two modes:
//!
//! * [`chrome_trace`] — real timestamps (nanoseconds since the tracing
//!   epoch, as fractional microseconds). What `harness --trace` and
//!   `Engine::trace_last_query` emit.
//! * [`chrome_trace_canonical`] — deterministic: rebuilds each thread's
//!   span forest from close order and depths alone, then assigns
//!   synthetic integer microsecond intervals by DFS and renumbers
//!   threads densely. Byte-identical across runs for the same logical
//!   execution; this is what the golden test pins.
//!
//! [`validate_chrome_trace`] is the committed parser check the CI gate
//! round-trips `harness --trace` output through.

use crate::flight::QueryRecord;
use crate::json::Json;
use crate::span::{FieldValue, SpanRecord};
use std::sync::Arc;

fn fields_json(span: &SpanRecord) -> Json {
    let mut args = Json::obj();
    for f in &span.fields {
        args = match &f.value {
            FieldValue::U64(v) => args.set(f.key, *v),
            FieldValue::F64(v) => args.set(f.key, *v),
            FieldValue::Bool(v) => args.set(f.key, *v),
            FieldValue::Str(v) => args.set(f.key, v.as_str()),
        };
    }
    args
}

fn complete_event(span: &SpanRecord, query_id: u64, ts: Json, dur: Json, tid: u64) -> Json {
    Json::obj()
        .set("name", span.name)
        .set("cat", "treequery")
        .set("ph", "X")
        .set("ts", ts)
        .set("dur", dur)
        .set("pid", 1u64)
        .set("tid", tid)
        .set(
            "args",
            fields_json(span)
                .set("query_id", query_id)
                .set("depth", span.depth),
        )
}

/// Exports records with their real timings: `ts` is the span's start in
/// fractional microseconds since the process tracing epoch, `tid` the
/// dense id of the thread the span closed on.
pub fn chrome_trace(records: &[Arc<QueryRecord>]) -> Json {
    let mut events = Vec::new();
    for record in records {
        for span in &record.spans {
            events.push(complete_event(
                span,
                record.id,
                Json::F64(span.start_ns as f64 / 1000.0),
                Json::F64(span.duration_ns.max(1) as f64 / 1000.0),
                span.thread,
            ));
        }
    }
    Json::obj().set("traceEvents", Json::Arr(events))
}

/// A span subtree rebuilt from close order and depths.
struct Node<'a> {
    span: &'a SpanRecord,
    children: Vec<Node<'a>>,
}

/// Rebuilds one thread's span forest from its spans in close order.
/// Spans close children-first, so a span at depth `d` adopts the
/// trailing run of already-built subtrees whose roots are deeper than
/// `d`.
fn build_forest<'a>(spans: &[&'a SpanRecord]) -> Vec<Node<'a>> {
    let mut pending: Vec<Node<'_>> = Vec::new();
    for span in spans {
        let mut k = pending.len();
        while k > 0 && pending[k - 1].span.depth > span.depth {
            k -= 1;
        }
        let children = pending.split_off(k);
        pending.push(Node { span, children });
    }
    pending
}

/// Assigns synthetic nested intervals: entering a node ticks the clock,
/// leaving it ticks again, so every parent strictly contains its
/// children and siblings never overlap.
fn assign(node: &Node<'_>, clock: &mut u64, query_id: u64, tid: u64, events: &mut Vec<Json>) {
    let ts = *clock;
    *clock += 1;
    let mut children = Vec::new();
    for child in &node.children {
        assign(child, clock, query_id, tid, &mut children);
    }
    *clock += 1;
    events.push(complete_event(
        node.span,
        query_id,
        Json::U64(ts),
        Json::U64(*clock - ts),
        tid,
    ));
    events.append(&mut children);
}

/// Deterministic export: per-record, groups spans by thread (threads
/// renumbered densely in order of first appearance), rebuilds each
/// thread's forest from close order + depths, and assigns synthetic
/// integer-microsecond intervals by DFS. No wall-clock quantity survives
/// into the output, so the same logical execution renders byte-identical
/// across runs.
pub fn chrome_trace_canonical(records: &[Arc<QueryRecord>]) -> Json {
    let mut events = Vec::new();
    let mut clock = 0u64;
    for record in records {
        let mut threads: Vec<(u64, Vec<&SpanRecord>)> = Vec::new();
        for span in &record.spans {
            match threads.iter_mut().find(|(t, _)| *t == span.thread) {
                Some((_, spans)) => spans.push(span),
                None => threads.push((span.thread, vec![span])),
            }
        }
        for (tid, (_, spans)) in threads.iter().enumerate() {
            for root in build_forest(spans) {
                assign(&root, &mut clock, record.id, tid as u64, &mut events);
            }
        }
    }
    Json::obj().set("traceEvents", Json::Arr(events))
}

/// Aggregate facts [`validate_chrome_trace`] reports about a trace.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct TraceStats {
    /// Total complete (`ph: "X"`) events.
    pub events: usize,
    /// Distinct `args.query_id` values.
    pub queries: usize,
    /// Events whose name marks parallel chunk work (`*.chunk`,
    /// `*.part`, `exec.ground_chunk`).
    pub chunk_events: usize,
    /// Distinct `tid` values.
    pub threads: usize,
}

fn is_chunk_span(name: &str) -> bool {
    name.ends_with(".chunk") || name.ends_with(".part") || name == "exec.ground_chunk"
}

/// Structural check for an exported trace: the top level must be an
/// object with a `traceEvents` array; every event must be a complete
/// event with `name`/`ph`/`ts`/`dur`/`pid`/`tid`/`args.query_id`; and
/// every query id present must contribute exactly one complete
/// `exec.run` span tree root. Returns aggregate [`TraceStats`].
pub fn validate_chrome_trace(trace: &Json) -> Result<TraceStats, String> {
    let events = trace
        .get("traceEvents")
        .ok_or("missing traceEvents key")?
        .as_arr()
        .ok_or("traceEvents is not an array")?;
    let mut stats = TraceStats::default();
    let mut queries: Vec<(u64, usize)> = Vec::new(); // (query_id, exec.run count)
    let mut tids: Vec<u64> = Vec::new();
    for (i, event) in events.iter().enumerate() {
        let name = event
            .get("name")
            .and_then(Json::as_str)
            .ok_or_else(|| format!("event {i}: missing name"))?;
        let ph = event
            .get("ph")
            .and_then(Json::as_str)
            .ok_or_else(|| format!("event {i}: missing ph"))?;
        if ph != "X" {
            return Err(format!("event {i}: unexpected phase {ph:?}"));
        }
        for key in ["ts", "dur"] {
            let v = event
                .get(key)
                .and_then(Json::as_f64)
                .ok_or_else(|| format!("event {i}: missing numeric {key}"))?;
            if !v.is_finite() || v < 0.0 {
                return Err(format!("event {i}: non-finite or negative {key}"));
            }
        }
        event
            .get("pid")
            .and_then(Json::as_u64)
            .ok_or_else(|| format!("event {i}: missing pid"))?;
        let tid = event
            .get("tid")
            .and_then(Json::as_u64)
            .ok_or_else(|| format!("event {i}: missing tid"))?;
        let query_id = event
            .get("args")
            .and_then(|a| a.get("query_id"))
            .and_then(Json::as_u64)
            .ok_or_else(|| format!("event {i}: missing args.query_id"))?;
        stats.events += 1;
        if is_chunk_span(name) {
            stats.chunk_events += 1;
        }
        if !tids.contains(&tid) {
            tids.push(tid);
        }
        match queries.iter_mut().find(|(q, _)| *q == query_id) {
            Some((_, runs)) => {
                if name == "exec.run" {
                    *runs += 1;
                }
            }
            None => queries.push((query_id, (name == "exec.run") as usize)),
        }
    }
    for (query_id, runs) in &queries {
        if *runs != 1 {
            return Err(format!(
                "query {query_id}: expected exactly one exec.run root, found {runs}"
            ));
        }
    }
    stats.queries = queries.len();
    stats.threads = tids.len();
    Ok(stats)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::span::Field;

    fn span(
        name: &'static str,
        start_ns: u64,
        duration_ns: u64,
        depth: u32,
        thread: u64,
    ) -> SpanRecord {
        SpanRecord {
            name,
            start_ns,
            duration_ns,
            depth,
            thread,
            fields: Vec::new(),
        }
    }

    fn record(spans: Vec<SpanRecord>) -> Arc<QueryRecord> {
        Arc::new(QueryRecord {
            id: 1,
            query: "//a".to_owned(),
            source: "xpath".to_owned(),
            query_fingerprint: 1,
            tree_fingerprint: 2,
            strategy: "xpath/set-at-a-time".to_owned(),
            rationale: String::new(),
            parallel_rationale: String::new(),
            workers: 1,
            cache_hit: false,
            wall_ns: 100,
            rows: 1,
            error: None,
            quiesce_retries: 0,
            torn: false,
            spans,
            dropped_spans: 0,
            tenant: String::new(),
            trace_id: String::new(),
            admission_wait_ns: 0,
            resp_bytes: 0,
        })
    }

    #[test]
    fn forest_reconstruction_nests_by_close_order_and_depth() {
        // Close order: inner (d2), inner (d2), mid (d1), root (d0),
        // then a second root (d0).
        let spans = [
            span("exec.sweep", 10, 5, 2, 0),
            span("exec.semijoin", 20, 5, 2, 0),
            span("exec.stage", 5, 30, 1, 0),
            span("exec.run", 0, 50, 0, 0),
            span("exec.run2", 60, 5, 0, 0),
        ];
        let refs: Vec<&SpanRecord> = spans.iter().collect();
        let forest = build_forest(&refs);
        assert_eq!(forest.len(), 2);
        assert_eq!(forest[0].span.name, "exec.run");
        assert_eq!(forest[0].children.len(), 1);
        assert_eq!(forest[0].children[0].span.name, "exec.stage");
        assert_eq!(forest[0].children[0].children.len(), 2);
        assert_eq!(forest[1].span.name, "exec.run2");
        assert!(forest[1].children.is_empty());
    }

    #[test]
    fn canonical_events_nest_and_never_overlap() {
        let rec = record(vec![
            span("exec.sweep", 10, 5, 1, 3),
            span("exec.run", 0, 50, 0, 3),
        ]);
        let trace = chrome_trace_canonical(&[rec]);
        let events = trace.get("traceEvents").unwrap().as_arr().unwrap();
        assert_eq!(events.len(), 2);
        // DFS emits the parent first; tid is densely renumbered to 0.
        let parent = &events[0];
        let child = &events[1];
        assert_eq!(parent.get("name").unwrap().as_str(), Some("exec.run"));
        assert_eq!(parent.get("tid").unwrap().as_u64(), Some(0));
        let pts = parent.get("ts").unwrap().as_u64().unwrap();
        let pdur = parent.get("dur").unwrap().as_u64().unwrap();
        let cts = child.get("ts").unwrap().as_u64().unwrap();
        let cdur = child.get("dur").unwrap().as_u64().unwrap();
        assert!(
            pts < cts && cts + cdur < pts + pdur,
            "child strictly inside parent"
        );
    }

    #[test]
    fn canonical_is_independent_of_timings_and_thread_ids() {
        let a = record(vec![
            span("exec.sweep", 17, 999, 1, 5),
            span("exec.run", 3, 12345, 0, 5),
        ]);
        let b = record(vec![
            span("exec.sweep", 400, 1, 1, 11),
            span("exec.run", 390, 20, 0, 11),
        ]);
        assert_eq!(
            chrome_trace_canonical(&[a]).render(),
            chrome_trace_canonical(&[b]).render()
        );
    }

    #[test]
    fn validate_accepts_real_export_and_counts_chunks() {
        let rec = record(vec![
            span("exec.sweep.chunk", 5, 3, 2, 1),
            span("exec.sweep.chunk", 5, 4, 2, 2),
            span("exec.sweep", 4, 10, 1, 0),
            span("exec.run", 0, 20, 0, 0),
        ]);
        let trace = chrome_trace(&[rec]);
        let parsed = crate::parse_json(&trace.render()).unwrap();
        let stats = validate_chrome_trace(&parsed).unwrap();
        assert_eq!(stats.events, 4);
        assert_eq!(stats.queries, 1);
        assert_eq!(stats.chunk_events, 2);
        assert_eq!(stats.threads, 3);
    }

    #[test]
    fn validate_rejects_structurally_broken_traces() {
        assert!(validate_chrome_trace(&Json::obj()).is_err());
        // A query with no exec.run root.
        let rec = record(vec![span("exec.sweep", 0, 1, 1, 0)]);
        assert!(validate_chrome_trace(&chrome_trace(&[rec])).is_err());
        // An event missing args.query_id.
        let bad = Json::obj().set(
            "traceEvents",
            Json::Arr(vec![Json::obj()
                .set("name", "exec.run")
                .set("ph", "X")
                .set("ts", 0u64)
                .set("dur", 1u64)
                .set("pid", 1u64)
                .set("tid", 0u64)
                .set("args", Json::obj())]),
        );
        assert!(validate_chrome_trace(&bad).is_err());
    }

    #[test]
    fn fields_ride_into_args() {
        let mut s = span("exec.run", 0, 10, 0, 0);
        s.fields.push(Field {
            key: "strategy",
            value: FieldValue::Str("xpath/set-at-a-time".to_owned()),
        });
        s.fields.push(Field {
            key: "rows",
            value: FieldValue::U64(7),
        });
        let trace = chrome_trace(&[record(vec![s])]);
        let ev = &trace.get("traceEvents").unwrap().as_arr().unwrap()[0];
        let args = ev.get("args").unwrap();
        assert_eq!(
            args.get("strategy").unwrap().as_str(),
            Some("xpath/set-at-a-time")
        );
        assert_eq!(args.get("rows").unwrap().as_u64(), Some(7));
        assert_eq!(args.get("query_id").unwrap().as_u64(), Some(1));
    }
}
