//! Per-cost-class latency SLOs with multi-window burn-rate tracking.
//!
//! The paper's fragment taxonomy (Gottlob–Koch–Schulz) gives every plan
//! a complexity band — `O(|D|·|Q|)` core, output-sensitive enumeration,
//! polynomial fixpoints, exponential backtracking — and the query
//! service admits by that band. The natural latency promise is therefore
//! *per cost class*: "linear plans answer in 50 ms" is a contract the
//! theory says the engine can keep, while a single global objective
//! would let exponential stragglers mask a broken fast lane.
//!
//! [`SloTracker`] keeps, per class, two sliding windows of good/bad
//! counts (an observation is *good* when its latency is at or under the
//! class threshold): a **fast** window (default 1 min) that reacts
//! quickly, and a **slow** window (default 1 hour) that filters blips.
//! Each window reports attainment and a **burn rate** — how fast the
//! error budget is being consumed, `(1 - attainment) / (1 - target)` —
//! and a class is *breached* only when **both** windows burn faster than
//! budget (the standard multi-window alert: the fast window alone pages
//! on noise, the slow window alone pages an hour late).
//!
//! All integer math, scaled to parts-per-million (`ppm`): a burn of
//! 1 000 000 ppm means "consuming budget exactly as fast as allowed".
//! Time comes from an injectable [`SloClock`], so goldens pin exact
//! window contents with a [`ManualClock`] instead of sleeping.
//!
//! Windows are rings of [`BUCKETS`] epoch-tagged buckets. A bucket's
//! slot is `epoch % BUCKETS`; a slot holding a stale epoch is reset on
//! write and skipped on read, so expiry costs nothing until the slot is
//! reused — the same ticket-style invariant as the flight recorder's
//! rings.

use std::collections::BTreeMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};
use std::time::{Duration, Instant};

use crate::metrics::Registry;
use crate::Json;

/// The time source for window bucketing. Injectable so tests drive the
/// windows deterministically.
pub trait SloClock: Send + Sync {
    /// Nanoseconds since an arbitrary fixed origin.
    fn now_ns(&self) -> u64;
}

/// The production clock: monotonic nanoseconds since construction.
#[derive(Debug)]
pub struct MonotonicClock {
    origin: Instant,
}

impl MonotonicClock {
    /// A clock starting at zero now.
    pub fn new() -> MonotonicClock {
        MonotonicClock {
            origin: Instant::now(),
        }
    }
}

impl Default for MonotonicClock {
    fn default() -> MonotonicClock {
        MonotonicClock::new()
    }
}

impl SloClock for MonotonicClock {
    fn now_ns(&self) -> u64 {
        self.origin.elapsed().as_nanos() as u64
    }
}

/// A hand-cranked clock for deterministic tests.
#[derive(Debug, Default)]
pub struct ManualClock(AtomicU64);

impl ManualClock {
    /// A clock reading `start_ns`.
    pub fn new(start_ns: u64) -> ManualClock {
        ManualClock(AtomicU64::new(start_ns))
    }

    /// Moves the clock forward by `ns`.
    pub fn advance(&self, ns: u64) {
        self.0.fetch_add(ns, Ordering::Relaxed);
    }
}

impl SloClock for ManualClock {
    fn now_ns(&self) -> u64 {
        self.0.load(Ordering::Relaxed)
    }
}

/// One latency objective: queries of `class` should finish within
/// `threshold_ns`.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Objective {
    /// The cost-class key (`linear`, `output_sensitive`, `polynomial`,
    /// `exponential`).
    pub class: String,
    /// The latency threshold separating good from bad observations.
    pub threshold_ns: u64,
}

/// Tracker configuration: the objectives, the attainment target, and the
/// two window spans.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct SloConfig {
    /// One objective per cost class.
    pub objectives: Vec<Objective>,
    /// Target attainment in parts-per-million (990 000 = 99 %).
    pub target_ppm: u32,
    /// The reactive window (default 1 minute).
    pub fast_window: Duration,
    /// The smoothing window (default 1 hour).
    pub slow_window: Duration,
}

impl Default for SloConfig {
    fn default() -> SloConfig {
        SloConfig {
            objectives: Vec::new(),
            target_ppm: 990_000,
            fast_window: Duration::from_secs(60),
            slow_window: Duration::from_secs(3600),
        }
    }
}

/// Buckets per sliding window.
pub const BUCKETS: u64 = 60;

/// Burn rate scale: this many ppm = burning budget exactly at the
/// allowed rate.
pub const BURN_UNIT_PPM: u64 = 1_000_000;

#[derive(Clone, Copy, Debug, Default)]
struct Bucket {
    epoch: u64,
    good: u64,
    bad: u64,
}

#[derive(Debug)]
struct Window {
    /// Width of one bucket in nanoseconds (window span / BUCKETS).
    width_ns: u64,
    buckets: [Bucket; BUCKETS as usize],
}

impl Window {
    fn new(span: Duration) -> Window {
        Window {
            width_ns: ((span.as_nanos() as u64) / BUCKETS).max(1),
            buckets: [Bucket::default(); BUCKETS as usize],
        }
    }

    fn observe(&mut self, now_ns: u64, good: bool) {
        let epoch = now_ns / self.width_ns;
        let b = &mut self.buckets[(epoch % BUCKETS) as usize];
        if b.epoch != epoch {
            *b = Bucket {
                epoch,
                good: 0,
                bad: 0,
            };
        }
        if good {
            b.good += 1;
        } else {
            b.bad += 1;
        }
    }

    /// `(good, bad)` totals over buckets still inside the window.
    /// Distinct epochs sharing a slot differ by multiples of `BUCKETS`,
    /// so `epoch + BUCKETS > current` is exactly "not stale".
    fn totals(&self, now_ns: u64) -> (u64, u64) {
        let current = now_ns / self.width_ns;
        let mut good = 0;
        let mut bad = 0;
        for b in &self.buckets {
            if b.epoch + BUCKETS > current && b.epoch <= current && (b.good | b.bad) != 0 {
                good += b.good;
                bad += b.bad;
            }
        }
        (good, bad)
    }
}

#[derive(Debug)]
struct ClassState {
    threshold_ns: u64,
    fast: Window,
    slow: Window,
}

/// One window's report: raw counts, attainment, and burn rate.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct WindowReport {
    /// Observations at or under the threshold.
    pub good: u64,
    /// Observations over the threshold.
    pub bad: u64,
    /// `good / (good + bad)` in ppm; 1 000 000 for an empty window (no
    /// traffic is not a violation).
    pub attainment_ppm: u64,
    /// Budget-consumption rate in ppm of the allowed rate (see
    /// [`BURN_UNIT_PPM`]).
    pub burn_ppm: u64,
}

/// One class's report across both windows.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct SloReport {
    /// The cost-class key.
    pub class: String,
    /// The objective threshold.
    pub threshold_ns: u64,
    /// The reactive window.
    pub fast: WindowReport,
    /// The smoothing window.
    pub slow: WindowReport,
    /// Both windows burning over budget.
    pub breached: bool,
}

/// The tracker: owns per-class window state behind one mutex (observe is
/// a few adds; queries hold it for microseconds).
pub struct SloTracker {
    target_ppm: u32,
    clock: Arc<dyn SloClock>,
    classes: Mutex<BTreeMap<String, ClassState>>,
}

impl SloTracker {
    /// A tracker over `config`'s objectives, reading `clock`.
    pub fn new(config: SloConfig, clock: Arc<dyn SloClock>) -> SloTracker {
        let classes = config
            .objectives
            .iter()
            .map(|o| {
                (
                    o.class.clone(),
                    ClassState {
                        threshold_ns: o.threshold_ns,
                        fast: Window::new(config.fast_window),
                        slow: Window::new(config.slow_window),
                    },
                )
            })
            .collect();
        SloTracker {
            target_ppm: config.target_ppm.min(1_000_000),
            clock,
            classes: Mutex::new(classes),
        }
    }

    /// The attainment target in ppm.
    pub fn target_ppm(&self) -> u32 {
        self.target_ppm
    }

    /// Records one observation for `class`. Classes without an objective
    /// are ignored — an SLO is a promise you chose to make, not a
    /// property of every query.
    pub fn observe(&self, class: &str, latency_ns: u64) {
        let now = self.clock.now_ns();
        let mut classes = self.classes.lock().expect("slo tracker poisoned");
        if let Some(state) = classes.get_mut(class) {
            let good = latency_ns <= state.threshold_ns;
            state.fast.observe(now, good);
            state.slow.observe(now, good);
        }
    }

    fn window_report(&self, w: &Window, now: u64) -> WindowReport {
        let (good, bad) = w.totals(now);
        // An empty window attains vacuously.
        let attainment_ppm = (good * 1_000_000)
            .checked_div(good + bad)
            .unwrap_or(1_000_000);
        let bad_ppm = 1_000_000 - attainment_ppm;
        let budget_ppm = (1_000_000 - self.target_ppm as u64).max(1);
        WindowReport {
            good,
            bad,
            attainment_ppm,
            burn_ppm: bad_ppm * BURN_UNIT_PPM / budget_ppm,
        }
    }

    /// A report per class, class-key-sorted.
    pub fn report(&self) -> Vec<SloReport> {
        let now = self.clock.now_ns();
        let classes = self.classes.lock().expect("slo tracker poisoned");
        classes
            .iter()
            .map(|(class, state)| {
                let fast = self.window_report(&state.fast, now);
                let slow = self.window_report(&state.slow, now);
                SloReport {
                    class: class.clone(),
                    threshold_ns: state.threshold_ns,
                    breached: fast.burn_ppm >= BURN_UNIT_PPM && slow.burn_ppm >= BURN_UNIT_PPM,
                    fast,
                    slow,
                }
            })
            .collect()
    }

    /// The report as JSON (the `slo` wire verb's `classes` field).
    pub fn to_json(&self) -> Json {
        fn window_json(w: &WindowReport) -> Json {
            Json::obj()
                .set("good", w.good)
                .set("bad", w.bad)
                .set("attainment_ppm", w.attainment_ppm)
                .set("burn_ppm", w.burn_ppm)
        }
        Json::Arr(
            self.report()
                .iter()
                .map(|r| {
                    Json::obj()
                        .set("class", r.class.as_str())
                        .set("threshold_ms", r.threshold_ns / 1_000_000)
                        .set("fast", window_json(&r.fast))
                        .set("slow", window_json(&r.slow))
                        .set("breached", r.breached)
                })
                .collect(),
        )
    }

    /// Publishes the current report into `registry` as five
    /// class-labeled gauge families (`treequery_slo_*`). Idempotent:
    /// re-registers nothing on repeat calls.
    pub fn publish(&self, registry: &Registry) {
        let fast_att = registry.gauge_family_or_existing(
            "treequery_slo_fast_attainment_ppm",
            "Fast-window SLO attainment per cost class, parts-per-million.",
            "class",
        );
        let slow_att = registry.gauge_family_or_existing(
            "treequery_slo_slow_attainment_ppm",
            "Slow-window SLO attainment per cost class, parts-per-million.",
            "class",
        );
        let fast_burn = registry.gauge_family_or_existing(
            "treequery_slo_fast_burn_ppm",
            "Fast-window error-budget burn rate per cost class (1000000 = at budget).",
            "class",
        );
        let slow_burn = registry.gauge_family_or_existing(
            "treequery_slo_slow_burn_ppm",
            "Slow-window error-budget burn rate per cost class (1000000 = at budget).",
            "class",
        );
        let breached = registry.gauge_family_or_existing(
            "treequery_slo_breached",
            "Whether both burn-rate windows are over budget (1 = breached).",
            "class",
        );
        for r in self.report() {
            fast_att
                .with_label(&r.class)
                .set(r.fast.attainment_ppm as i64);
            slow_att
                .with_label(&r.class)
                .set(r.slow.attainment_ppm as i64);
            fast_burn.with_label(&r.class).set(r.fast.burn_ppm as i64);
            slow_burn.with_label(&r.class).set(r.slow.burn_ppm as i64);
            breached.with_label(&r.class).set(r.breached as i64);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const MS: u64 = 1_000_000;
    const SEC: u64 = 1_000_000_000;

    fn tracker(clock: Arc<ManualClock>) -> SloTracker {
        SloTracker::new(
            SloConfig {
                objectives: vec![
                    Objective {
                        class: "linear".into(),
                        threshold_ns: 50 * MS,
                    },
                    Objective {
                        class: "exponential".into(),
                        threshold_ns: 2000 * MS,
                    },
                ],
                ..SloConfig::default()
            },
            clock,
        )
    }

    #[test]
    fn empty_windows_attain_fully_and_burn_nothing() {
        let t = tracker(Arc::new(ManualClock::new(0)));
        let report = t.report();
        assert_eq!(report.len(), 2);
        for r in &report {
            assert_eq!(r.fast.attainment_ppm, 1_000_000);
            assert_eq!(r.fast.burn_ppm, 0);
            assert!(!r.breached);
        }
    }

    /// The deterministic golden for the burn-rate math: 9 good + 1 bad
    /// at a 99 % target (1 % budget) is 90 % attainment — a 10 %
    /// bad-fraction burning the budget at 10× (10 000 000 ppm).
    #[test]
    fn burn_rate_golden_under_the_manual_clock() {
        let clock = Arc::new(ManualClock::new(5 * SEC));
        let t = tracker(Arc::clone(&clock));
        for _ in 0..9 {
            t.observe("linear", 10 * MS); // good: under 50 ms
        }
        t.observe("linear", 80 * MS); // bad: over 50 ms
        let report = t.report();
        let linear = report.iter().find(|r| r.class == "linear").unwrap();
        assert_eq!((linear.fast.good, linear.fast.bad), (9, 1));
        assert_eq!(linear.fast.attainment_ppm, 900_000);
        assert_eq!(linear.fast.burn_ppm, 10_000_000);
        assert_eq!((linear.slow.good, linear.slow.bad), (9, 1));
        assert!(linear.breached, "10x burn in both windows breaches");
        // The untouched class is clean.
        let exp = report.iter().find(|r| r.class == "exponential").unwrap();
        assert_eq!(exp.fast.attainment_ppm, 1_000_000);
        assert!(!exp.breached);

        // And the full JSON golden, byte-pinned (BTreeMap order:
        // exponential before linear).
        let json = t.to_json().render();
        assert_eq!(
            json,
            "[{\"class\":\"exponential\",\"threshold_ms\":2000,\
\"fast\":{\"good\":0,\"bad\":0,\"attainment_ppm\":1000000,\"burn_ppm\":0},\
\"slow\":{\"good\":0,\"bad\":0,\"attainment_ppm\":1000000,\"burn_ppm\":0},\
\"breached\":false},\
{\"class\":\"linear\",\"threshold_ms\":50,\
\"fast\":{\"good\":9,\"bad\":1,\"attainment_ppm\":900000,\"burn_ppm\":10000000},\
\"slow\":{\"good\":9,\"bad\":1,\"attainment_ppm\":900000,\"burn_ppm\":10000000},\
\"breached\":true}]"
        );
    }

    #[test]
    fn fast_window_forgets_while_slow_window_remembers() {
        let clock = Arc::new(ManualClock::new(0));
        let t = tracker(Arc::clone(&clock));
        t.observe("linear", 500 * MS); // bad
                                       // 2 minutes later the bad observation has left the 1-minute
                                       // window but still sits in the 1-hour one.
        clock.advance(120 * SEC);
        t.observe("linear", MS); // good
        let report = t.report();
        let linear = report.iter().find(|r| r.class == "linear").unwrap();
        assert_eq!((linear.fast.good, linear.fast.bad), (1, 0));
        assert_eq!((linear.slow.good, linear.slow.bad), (1, 1));
        assert_eq!(linear.fast.burn_ppm, 0);
        assert_eq!(linear.slow.attainment_ppm, 500_000);
        assert!(!linear.breached, "fast window recovered: no breach");
        // Another hour and the slow window forgets too.
        clock.advance(3600 * SEC);
        let report = t.report();
        let linear = report.iter().find(|r| r.class == "linear").unwrap();
        assert_eq!((linear.slow.good, linear.slow.bad), (0, 0));
    }

    #[test]
    fn bucket_slots_are_reused_without_resurrecting_old_epochs() {
        let clock = Arc::new(ManualClock::new(0));
        let t = tracker(Arc::clone(&clock));
        // Fast window bucket width is 1s (60s / 60). Observing 61s apart
        // lands in the same slot with different epochs.
        t.observe("linear", MS);
        clock.advance(61 * SEC);
        t.observe("linear", MS);
        let report = t.report();
        let linear = report.iter().find(|r| r.class == "linear").unwrap();
        assert_eq!(
            (linear.fast.good, linear.fast.bad),
            (1, 0),
            "the first observation's epoch was overwritten, not added"
        );
    }

    #[test]
    fn unknown_classes_are_ignored() {
        let t = tracker(Arc::new(ManualClock::new(0)));
        t.observe("quantum", 1);
        assert_eq!(t.report().len(), 2);
    }

    #[test]
    fn publish_exposes_class_labeled_gauges() {
        let clock = Arc::new(ManualClock::new(0));
        let t = tracker(Arc::clone(&clock));
        for _ in 0..9 {
            t.observe("linear", MS);
        }
        t.observe("linear", 500 * MS);
        let r = Registry::new();
        t.publish(&r);
        t.publish(&r); // idempotent re-publish
        let text = crate::prom::render_prefixed(&r, "treequery_slo_");
        assert!(
            text.contains("treequery_slo_fast_attainment_ppm{class=\"linear\"} 900000\n"),
            "{text}"
        );
        assert!(
            text.contains("treequery_slo_fast_burn_ppm{class=\"linear\"} 10000000\n"),
            "{text}"
        );
        assert!(
            text.contains("treequery_slo_breached{class=\"linear\"} 1\n"),
            "{text}"
        );
        assert!(
            text.contains("treequery_slo_breached{class=\"exponential\"} 0\n"),
            "{text}"
        );
        crate::prom::validate_exposition(&text).expect("slo exposition validates");
    }
}
