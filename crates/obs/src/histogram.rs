//! Fixed-bucket latency histograms with percentile summaries.

/// Number of buckets in a [`LatencyHistogram`]: bucket `i` covers
/// `[2^i, 2^(i+1))` nanoseconds (bucket 0 covers `[0, 2)`), so the last
/// bucket starts at `2^63` ns — far beyond any span this engine records.
pub const HISTOGRAM_BUCKETS: usize = 64;

/// A latency histogram over power-of-two nanosecond buckets.
///
/// Recording is O(1) (one `leading_zeros` + one increment); percentile
/// queries interpolate linearly inside the bucket that crosses the rank,
/// so the reported value is exact to within a factor of 2 and typically
/// much closer. Fixed buckets mean merge is element-wise addition and the
/// memory footprint is constant (64 × `u64`).
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct LatencyHistogram {
    counts: [u64; HISTOGRAM_BUCKETS],
    total: u64,
    sum_ns: u64,
    max_ns: u64,
}

impl Default for LatencyHistogram {
    fn default() -> Self {
        LatencyHistogram {
            counts: [0; HISTOGRAM_BUCKETS],
            total: 0,
            sum_ns: 0,
            max_ns: 0,
        }
    }
}

/// The index of the bucket covering `ns`.
fn bucket_of(ns: u64) -> usize {
    (64 - ns.leading_zeros() as usize).saturating_sub(1)
}

/// The inclusive lower bound of bucket `i`.
fn bucket_lo(i: usize) -> u64 {
    if i == 0 {
        0
    } else {
        1u64 << i
    }
}

/// The exclusive upper bound of bucket `i` (saturating for the last).
fn bucket_hi(i: usize) -> u64 {
    if i + 1 >= 64 {
        u64::MAX
    } else {
        1u64 << (i + 1)
    }
}

impl LatencyHistogram {
    /// An empty histogram.
    pub fn new() -> Self {
        Self::default()
    }

    /// Records one observation of `ns` nanoseconds.
    pub fn record(&mut self, ns: u64) {
        self.counts[bucket_of(ns)] += 1;
        self.total += 1;
        self.sum_ns = self.sum_ns.saturating_add(ns);
        self.max_ns = self.max_ns.max(ns);
    }

    /// Number of recorded observations.
    pub fn count(&self) -> u64 {
        self.total
    }

    /// Sum of all recorded observations, in nanoseconds (saturating).
    pub fn sum_ns(&self) -> u64 {
        self.sum_ns
    }

    /// Largest recorded observation, in nanoseconds.
    pub fn max_ns(&self) -> u64 {
        self.max_ns
    }

    /// The raw per-bucket counts (bucket `i` covers `[2^i, 2^(i+1))`);
    /// what the Prometheus renderer turns into cumulative `le` series.
    pub fn bucket_counts(&self) -> &[u64; HISTOGRAM_BUCKETS] {
        &self.counts
    }

    /// Mean observation in nanoseconds (0 when empty).
    pub fn mean_ns(&self) -> u64 {
        self.sum_ns.checked_div(self.total).unwrap_or(0)
    }

    /// Element-wise merge of another histogram into this one.
    pub fn merge(&mut self, other: &LatencyHistogram) {
        for (a, b) in self.counts.iter_mut().zip(&other.counts) {
            *a += b;
        }
        self.total += other.total;
        self.sum_ns = self.sum_ns.saturating_add(other.sum_ns);
        self.max_ns = self.max_ns.max(other.max_ns);
    }

    /// The `q`-quantile (`0.0 ..= 1.0`) in nanoseconds: the smallest value
    /// `v` such that at least `⌈q · count⌉` observations are `≤ v`,
    /// linearly interpolated inside the crossing bucket and clamped to the
    /// recorded maximum. Returns 0 on an empty histogram.
    pub fn quantile(&self, q: f64) -> u64 {
        if self.total == 0 {
            return 0;
        }
        let q = q.clamp(0.0, 1.0);
        let rank = ((q * self.total as f64).ceil() as u64).max(1);
        if rank >= self.total {
            return self.max_ns;
        }
        let mut seen = 0u64;
        for (i, &c) in self.counts.iter().enumerate() {
            if c == 0 {
                continue;
            }
            if seen + c >= rank {
                // Interpolate the rank's position inside this bucket.
                let into = (rank - seen - 1) as f64 + 0.5;
                let frac = into / c as f64;
                let lo = bucket_lo(i) as f64;
                let hi = bucket_hi(i).min(self.max_ns.max(1)) as f64;
                let hi = hi.max(lo);
                return (lo + frac * (hi - lo)).round() as u64;
            }
            seen += c;
        }
        self.max_ns
    }

    /// p50/p95/p99 plus count, mean, and max — the row the harness report
    /// and `EXPLAIN ANALYZE` print.
    pub fn summary(&self) -> HistogramSummary {
        HistogramSummary {
            count: self.total,
            mean_ns: self.mean_ns(),
            p50_ns: self.quantile(0.50),
            p95_ns: self.quantile(0.95),
            p99_ns: self.quantile(0.99),
            max_ns: self.max_ns,
        }
    }
}

/// A condensed view of a [`LatencyHistogram`].
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct HistogramSummary {
    /// Number of observations.
    pub count: u64,
    /// Mean in nanoseconds.
    pub mean_ns: u64,
    /// Median in nanoseconds.
    pub p50_ns: u64,
    /// 95th percentile in nanoseconds.
    pub p95_ns: u64,
    /// 99th percentile in nanoseconds.
    pub p99_ns: u64,
    /// Maximum in nanoseconds.
    pub max_ns: u64,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bucket_boundaries() {
        assert_eq!(bucket_of(0), 0);
        assert_eq!(bucket_of(1), 0);
        assert_eq!(bucket_of(2), 1);
        assert_eq!(bucket_of(3), 1);
        assert_eq!(bucket_of(4), 2);
        assert_eq!(bucket_of(1023), 9);
        assert_eq!(bucket_of(1024), 10);
        assert_eq!(bucket_of(u64::MAX), 63);
        for i in 0..HISTOGRAM_BUCKETS {
            assert_eq!(bucket_of(bucket_lo(i).max(1)), i);
        }
    }

    #[test]
    fn empty_histogram_is_all_zeroes() {
        let h = LatencyHistogram::new();
        assert_eq!(h.count(), 0);
        assert_eq!(h.quantile(0.5), 0);
        assert_eq!(h.summary(), HistogramSummary::default());
    }

    #[test]
    fn single_value_has_flat_percentiles() {
        let mut h = LatencyHistogram::new();
        h.record(1000);
        let s = h.summary();
        assert_eq!(s.count, 1);
        assert_eq!(s.max_ns, 1000);
        // Every percentile lands in the [512, 1024) bucket, clamped to max.
        for q in [0.0, 0.5, 0.95, 0.99, 1.0] {
            let v = h.quantile(q);
            assert!((512..=1000).contains(&v), "q={q}: {v}");
        }
    }

    #[test]
    fn uniform_distribution_percentiles() {
        // 1..=1000 ns, one observation each: p50 ≈ 500, p95 ≈ 950,
        // p99 ≈ 990, all within one power-of-two bucket of the true value.
        let mut h = LatencyHistogram::new();
        for v in 1..=1000u64 {
            h.record(v);
        }
        let s = h.summary();
        assert_eq!(s.count, 1000);
        assert_eq!(s.max_ns, 1000);
        assert_eq!(s.mean_ns, 500);
        assert!((384..=640).contains(&s.p50_ns), "p50 = {}", s.p50_ns);
        assert!((768..=1000).contains(&s.p95_ns), "p95 = {}", s.p95_ns);
        assert!((896..=1000).contains(&s.p99_ns), "p99 = {}", s.p99_ns);
        assert!(s.p50_ns <= s.p95_ns && s.p95_ns <= s.p99_ns);
    }

    #[test]
    fn bimodal_distribution_percentiles() {
        // 90 fast (≈100ns) + 10 slow (≈100µs): p50 is fast, p95/p99 slow.
        let mut h = LatencyHistogram::new();
        for _ in 0..90 {
            h.record(100);
        }
        for _ in 0..10 {
            h.record(100_000);
        }
        let s = h.summary();
        assert!((64..256).contains(&s.p50_ns), "p50 = {}", s.p50_ns);
        assert!(s.p95_ns >= 65_536, "p95 = {}", s.p95_ns);
        assert!(s.p99_ns >= 65_536, "p99 = {}", s.p99_ns);
    }

    #[test]
    fn quantile_is_monotone_and_bounded() {
        let mut h = LatencyHistogram::new();
        for v in [3u64, 17, 90, 2048, 70_000, 70_001, 1_000_000] {
            h.record(v);
        }
        let mut prev = 0;
        for i in 0..=100 {
            let v = h.quantile(i as f64 / 100.0);
            assert!(v >= prev, "quantile not monotone at {i}");
            assert!(v <= h.max_ns());
            prev = v;
        }
        assert_eq!(h.quantile(1.0), h.max_ns());
    }

    #[test]
    fn merge_equals_combined_recording() {
        let mut a = LatencyHistogram::new();
        let mut b = LatencyHistogram::new();
        let mut both = LatencyHistogram::new();
        for v in [5u64, 10, 100, 1000] {
            a.record(v);
            both.record(v);
        }
        for v in [7u64, 70, 700, 7000] {
            b.record(v);
            both.record(v);
        }
        a.merge(&b);
        assert_eq!(a, both);
    }
}
