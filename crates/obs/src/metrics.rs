//! A typed metrics registry: monotonic counters, gauges, and labeled
//! histogram families over the span layer's 64-bucket
//! [`LatencyHistogram`].
//!
//! The executor's original `Metrics` struct is a fixed block of atomics —
//! fine for the pipeline's own counters, but every new observable meant
//! another hand-written field, snapshot entry, and JSON line. New
//! metrics now register here instead: a [`Registry`] owns named
//! instruments, hands out cheap cloneable handles ([`Counter`],
//! [`Gauge`], [`HistogramFamily`]), and [`gather`](Registry::gather)s a
//! point-in-time snapshot that `obs::prom` renders in the Prometheus
//! text exposition format (`harness --serve-metrics`).
//!
//! Names must match the Prometheus charset
//! (`[a-zA-Z_:][a-zA-Z0-9_:]*`); registration panics otherwise, so a bad
//! name fails the first test that touches it rather than a scrape.

use std::collections::BTreeMap;
use std::sync::atomic::{AtomicI64, AtomicU64, Ordering};
use std::sync::{Arc, Mutex, OnceLock};

use crate::histogram::LatencyHistogram;

/// A monotonically increasing counter.
#[derive(Clone, Debug, Default)]
pub struct Counter(Arc<AtomicU64>);

impl Counter {
    /// Adds 1.
    pub fn inc(&self) {
        self.add(1);
    }

    /// Adds `n`.
    pub fn add(&self, n: u64) {
        self.0.fetch_add(n, Ordering::Relaxed);
    }

    /// The current value.
    pub fn get(&self) -> u64 {
        self.0.load(Ordering::Relaxed)
    }
}

/// A gauge: a value that can go up and down.
#[derive(Clone, Debug, Default)]
pub struct Gauge(Arc<AtomicI64>);

impl Gauge {
    /// Sets the value.
    pub fn set(&self, v: i64) {
        self.0.store(v, Ordering::Relaxed);
    }

    /// Adds `d` (may be negative).
    pub fn add(&self, d: i64) {
        self.0.fetch_add(d, Ordering::Relaxed);
    }

    /// The current value.
    pub fn get(&self) -> i64 {
        self.0.load(Ordering::Relaxed)
    }
}

/// One labeled histogram inside a family.
#[derive(Clone, Debug)]
pub struct Histogram(Arc<Mutex<LatencyHistogram>>);

impl Histogram {
    /// Records one observation (nanoseconds, bytes — any non-negative
    /// quantity; buckets are powers of two).
    pub fn observe(&self, value: u64) {
        self.0.lock().expect("histogram poisoned").record(value);
    }

    /// A copy of the underlying histogram.
    pub fn snapshot(&self) -> LatencyHistogram {
        self.0.lock().expect("histogram poisoned").clone()
    }
}

/// A family of counters distinguished by one label's values — the shape
/// the query service uses for per-verb request counts and per-code error
/// counts (`treequery_serve_requests{verb="query"}`, …). Cells are
/// created on first use and render as one sample line per label value.
#[derive(Clone, Debug)]
pub struct CounterFamily {
    label: &'static str,
    cells: Arc<Mutex<BTreeMap<String, Counter>>>,
}

impl CounterFamily {
    /// The counter for one label value, created on first use.
    pub fn with_label(&self, value: &str) -> Counter {
        let mut cells = self.cells.lock().expect("counter family poisoned");
        cells.entry(value.to_owned()).or_default().clone()
    }

    /// The label name.
    pub fn label_name(&self) -> &'static str {
        self.label
    }
}

/// A family of gauges distinguished by one label's values — what the
/// SLO tracker uses for per-cost-class attainment and burn rates
/// (`treequery_slo_fast_burn_ppm{class="linear"}`, …). Cells are created
/// on first use and render as one sample line per label value.
#[derive(Clone, Debug)]
pub struct GaugeFamily {
    label: &'static str,
    cells: Arc<Mutex<BTreeMap<String, Gauge>>>,
}

impl GaugeFamily {
    /// The gauge for one label value, created on first use.
    pub fn with_label(&self, value: &str) -> Gauge {
        let mut cells = self.cells.lock().expect("gauge family poisoned");
        cells.entry(value.to_owned()).or_default().clone()
    }

    /// The label name.
    pub fn label_name(&self) -> &'static str {
        self.label
    }
}

/// A family of histograms distinguished by label values (one label name,
/// the common case: `stage`, `strategy`, …).
#[derive(Clone, Debug)]
pub struct HistogramFamily {
    label: &'static str,
    cells: Arc<Mutex<BTreeMap<String, Histogram>>>,
}

impl HistogramFamily {
    /// The histogram for one label value, created on first use.
    pub fn with_label(&self, value: &str) -> Histogram {
        let mut cells = self.cells.lock().expect("histogram family poisoned");
        cells
            .entry(value.to_owned())
            .or_insert_with(|| Histogram(Arc::new(Mutex::new(LatencyHistogram::new()))))
            .clone()
    }

    /// The label name.
    pub fn label_name(&self) -> &'static str {
        self.label
    }
}

/// What one instrument looks like at gather time.
#[derive(Clone, Debug)]
pub enum MetricValue {
    /// A counter's value.
    Counter(u64),
    /// A gauge's value.
    Gauge(i64),
    /// `(label value, count)` rows of a counter family, label-sorted.
    Counters(&'static str, Vec<(String, u64)>),
    /// `(label value, value)` rows of a gauge family, label-sorted.
    Gauges(&'static str, Vec<(String, i64)>),
    /// `(label value, histogram)` rows of a family, label-sorted.
    Histograms(&'static str, Vec<(String, LatencyHistogram)>),
}

/// A gathered instrument: name, help text, value.
#[derive(Clone, Debug)]
pub struct MetricSnapshot {
    /// The metric name (Prometheus charset).
    pub name: &'static str,
    /// The help text (rendered as `# HELP`).
    pub help: &'static str,
    /// The value(s).
    pub value: MetricValue,
}

enum Instrument {
    Counter(Counter),
    Gauge(Gauge),
    CounterFamily(CounterFamily),
    GaugeFamily(GaugeFamily),
    Family(HistogramFamily),
}

struct Registered {
    name: &'static str,
    help: &'static str,
    instrument: Instrument,
}

/// A collection of named instruments. Most code uses the process-wide
/// [`global`] registry; tests construct their own.
#[derive(Default)]
pub struct Registry {
    metrics: Mutex<Vec<Registered>>,
}

fn valid_name(name: &str) -> bool {
    let mut chars = name.chars();
    match chars.next() {
        Some(c) if c.is_ascii_alphabetic() || c == '_' || c == ':' => {}
        _ => return false,
    }
    chars.all(|c| c.is_ascii_alphanumeric() || c == '_' || c == ':')
}

impl Registry {
    /// An empty registry.
    pub fn new() -> Registry {
        Registry::default()
    }

    fn register(&self, name: &'static str, help: &'static str, instrument: Instrument) {
        assert!(valid_name(name), "invalid metric name {name:?}");
        let mut metrics = self.metrics.lock().expect("registry poisoned");
        assert!(
            metrics.iter().all(|m| m.name != name),
            "metric {name:?} registered twice"
        );
        metrics.push(Registered {
            name,
            help,
            instrument,
        });
    }

    /// Registers and returns a counter.
    pub fn counter(&self, name: &'static str, help: &'static str) -> Counter {
        let c = Counter::default();
        self.register(name, help, Instrument::Counter(c.clone()));
        c
    }

    /// Registers and returns a gauge.
    pub fn gauge(&self, name: &'static str, help: &'static str) -> Gauge {
        let g = Gauge::default();
        self.register(name, help, Instrument::Gauge(g.clone()));
        g
    }

    /// Registers and returns a counter family keyed by one label.
    pub fn counter_family(
        &self,
        name: &'static str,
        help: &'static str,
        label: &'static str,
    ) -> CounterFamily {
        assert!(valid_name(label), "invalid label name {label:?}");
        let f = CounterFamily {
            label,
            cells: Arc::new(Mutex::new(BTreeMap::new())),
        };
        self.register(name, help, Instrument::CounterFamily(f.clone()));
        f
    }

    /// Registers and returns a gauge family keyed by one label.
    pub fn gauge_family(
        &self,
        name: &'static str,
        help: &'static str,
        label: &'static str,
    ) -> GaugeFamily {
        assert!(valid_name(label), "invalid label name {label:?}");
        let f = GaugeFamily {
            label,
            cells: Arc::new(Mutex::new(BTreeMap::new())),
        };
        self.register(name, help, Instrument::GaugeFamily(f.clone()));
        f
    }

    /// Registers and returns a histogram family keyed by one label.
    pub fn histogram_family(
        &self,
        name: &'static str,
        help: &'static str,
        label: &'static str,
    ) -> HistogramFamily {
        assert!(valid_name(label), "invalid label name {label:?}");
        let f = HistogramFamily {
            label,
            cells: Arc::new(Mutex::new(BTreeMap::new())),
        };
        self.register(name, help, Instrument::Family(f.clone()));
        f
    }

    /// A point-in-time snapshot of every instrument, in registration
    /// order (the order the exposition renders in).
    pub fn gather(&self) -> Vec<MetricSnapshot> {
        let metrics = self.metrics.lock().expect("registry poisoned");
        metrics
            .iter()
            .map(|m| MetricSnapshot {
                name: m.name,
                help: m.help,
                value: match &m.instrument {
                    Instrument::Counter(c) => MetricValue::Counter(c.get()),
                    Instrument::Gauge(g) => MetricValue::Gauge(g.get()),
                    Instrument::CounterFamily(f) => {
                        let cells = f.cells.lock().expect("counter family poisoned");
                        MetricValue::Counters(
                            f.label,
                            cells.iter().map(|(k, v)| (k.clone(), v.get())).collect(),
                        )
                    }
                    Instrument::GaugeFamily(f) => {
                        let cells = f.cells.lock().expect("gauge family poisoned");
                        MetricValue::Gauges(
                            f.label,
                            cells.iter().map(|(k, v)| (k.clone(), v.get())).collect(),
                        )
                    }
                    Instrument::Family(f) => {
                        let cells = f.cells.lock().expect("histogram family poisoned");
                        MetricValue::Histograms(
                            f.label,
                            cells
                                .iter()
                                .map(|(k, v)| (k.clone(), v.snapshot()))
                                .collect(),
                        )
                    }
                },
            })
            .collect()
    }

    /// Looks up an already-registered counter by name, or registers it.
    /// The idempotent form for call sites that can run more than once
    /// (experiment loops, repeated harness runs in one process).
    pub fn counter_or_existing(&self, name: &'static str, help: &'static str) -> Counter {
        {
            let metrics = self.metrics.lock().expect("registry poisoned");
            if let Some(m) = metrics.iter().find(|m| m.name == name) {
                if let Instrument::Counter(c) = &m.instrument {
                    return c.clone();
                }
                panic!("metric {name:?} already registered with a different type");
            }
        }
        self.counter(name, help)
    }

    /// Looks up an already-registered gauge by name, or registers it.
    pub fn gauge_or_existing(&self, name: &'static str, help: &'static str) -> Gauge {
        {
            let metrics = self.metrics.lock().expect("registry poisoned");
            if let Some(m) = metrics.iter().find(|m| m.name == name) {
                if let Instrument::Gauge(g) = &m.instrument {
                    return g.clone();
                }
                panic!("metric {name:?} already registered with a different type");
            }
        }
        self.gauge(name, help)
    }

    /// Looks up an already-registered counter family by name, or
    /// registers it.
    pub fn counter_family_or_existing(
        &self,
        name: &'static str,
        help: &'static str,
        label: &'static str,
    ) -> CounterFamily {
        {
            let metrics = self.metrics.lock().expect("registry poisoned");
            if let Some(m) = metrics.iter().find(|m| m.name == name) {
                if let Instrument::CounterFamily(f) = &m.instrument {
                    assert_eq!(f.label, label, "metric {name:?} label mismatch");
                    return f.clone();
                }
                panic!("metric {name:?} already registered with a different type");
            }
        }
        self.counter_family(name, help, label)
    }

    /// Looks up an already-registered gauge family by name, or registers
    /// it.
    pub fn gauge_family_or_existing(
        &self,
        name: &'static str,
        help: &'static str,
        label: &'static str,
    ) -> GaugeFamily {
        {
            let metrics = self.metrics.lock().expect("registry poisoned");
            if let Some(m) = metrics.iter().find(|m| m.name == name) {
                if let Instrument::GaugeFamily(f) = &m.instrument {
                    assert_eq!(f.label, label, "metric {name:?} label mismatch");
                    return f.clone();
                }
                panic!("metric {name:?} already registered with a different type");
            }
        }
        self.gauge_family(name, help, label)
    }

    /// Looks up an already-registered histogram family by name, or
    /// registers it.
    pub fn histogram_family_or_existing(
        &self,
        name: &'static str,
        help: &'static str,
        label: &'static str,
    ) -> HistogramFamily {
        {
            let metrics = self.metrics.lock().expect("registry poisoned");
            if let Some(m) = metrics.iter().find(|m| m.name == name) {
                if let Instrument::Family(f) = &m.instrument {
                    assert_eq!(f.label, label, "metric {name:?} label mismatch");
                    return f.clone();
                }
                panic!("metric {name:?} already registered with a different type");
            }
        }
        self.histogram_family(name, help, label)
    }
}

/// The process-wide registry (what `--serve-metrics` exposes).
pub fn global() -> &'static Registry {
    static GLOBAL: OnceLock<Registry> = OnceLock::new();
    GLOBAL.get_or_init(Registry::new)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counters_and_gauges_register_and_move() {
        let r = Registry::new();
        let c = r.counter("test_total", "a counter");
        let g = r.gauge("test_live", "a gauge");
        c.inc();
        c.add(4);
        g.set(10);
        g.add(-3);
        assert_eq!(c.get(), 5);
        assert_eq!(g.get(), 7);
        let snap = r.gather();
        assert_eq!(snap.len(), 2);
        assert!(matches!(snap[0].value, MetricValue::Counter(5)));
        assert!(matches!(snap[1].value, MetricValue::Gauge(7)));
    }

    #[test]
    fn histogram_families_key_by_label_value() {
        let r = Registry::new();
        let f = r.histogram_family("test_latency_ns", "stage latency", "stage");
        f.with_label("exec.run").observe(100);
        f.with_label("exec.run").observe(200);
        f.with_label("exec.sweep").observe(50);
        let snap = r.gather();
        let MetricValue::Histograms(label, rows) = &snap[0].value else {
            panic!("expected histograms");
        };
        assert_eq!(*label, "stage");
        assert_eq!(rows.len(), 2);
        assert_eq!(rows[0].0, "exec.run");
        assert_eq!(rows[0].1.count(), 2);
        assert_eq!(rows[1].1.count(), 1);
    }

    #[test]
    fn gauge_families_key_by_label_value_and_move_both_ways() {
        let r = Registry::new();
        let f = r.gauge_family("test_burn_ppm", "burn rate", "class");
        f.with_label("linear").set(250_000);
        f.with_label("exponential").set(4_000_000);
        f.with_label("linear").add(-50_000);
        let snap = r.gather();
        let MetricValue::Gauges(label, rows) = &snap[0].value else {
            panic!("expected gauges");
        };
        assert_eq!(*label, "class");
        assert_eq!(
            rows,
            &vec![
                ("exponential".to_owned(), 4_000_000),
                ("linear".to_owned(), 200_000)
            ]
        );
        let again = r.gauge_family_or_existing("test_burn_ppm", "burn rate", "class");
        again.with_label("linear").set(7);
        assert_eq!(f.with_label("linear").get(), 7);
    }

    #[test]
    fn or_existing_is_idempotent() {
        let r = Registry::new();
        let a = r.counter_or_existing("twice_total", "h");
        let b = r.counter_or_existing("twice_total", "h");
        a.inc();
        b.inc();
        assert_eq!(a.get(), 2);
        assert_eq!(r.gather().len(), 1);
    }

    #[test]
    #[should_panic(expected = "invalid metric name")]
    fn bad_names_are_rejected() {
        Registry::new().counter("bad-name", "dashes are not prometheus");
    }

    #[test]
    #[should_panic(expected = "registered twice")]
    fn duplicate_names_are_rejected() {
        let r = Registry::new();
        r.counter("dup_total", "");
        r.counter("dup_total", "");
    }
}
