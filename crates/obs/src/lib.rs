#![warn(missing_docs)]

//! `treequery-obs`: the observability substrate of the query pipeline.
//!
//! Zero-dependency (offline-friendly, like `shims/`) tracing and metrics
//! primitives:
//!
//! * [`span`] / [`Span`] — a lightweight span core: a thread-safe span
//!   stack (per-thread depth tracking) with monotonic timing and
//!   structured fields, dispatched to the installed [`Recorder`];
//! * [`Recorder`] — the sink trait, with [`NoopRecorder`] (the disabled
//!   path costs one relaxed atomic load; verified by the harness's
//!   `--check-noop-overhead`), [`CollectingRecorder`] (in-memory
//!   aggregation: per-span-name call counts, wall time, latency
//!   histograms, field sums, and a bounded ring-buffer event log), and
//!   [`JsonLinesRecorder`] (one JSON object per closed span, streamed to
//!   any writer);
//! * [`LatencyHistogram`] — fixed power-of-two-bucket latency histograms
//!   with p50/p95/p99 summaries;
//! * [`RingLog`] — a bounded ring buffer keeping the most recent events;
//! * [`Json`] — a serde-free JSON value with a renderer and a parser,
//!   used by the bench harness's `--report` path and by
//!   `Engine::explain_analyze`'s machine-readable output.
//!
//! Recording is opt-in and global, like `tracing`'s subscriber: when no
//! recorder is installed, [`span`] returns an inert guard without reading
//! the clock. Install one for a scope with [`with_recorder`], or
//! process-wide with [`set_recorder`].

pub mod alloc;
pub mod env;
pub mod flight;
mod histogram;
mod json;
pub mod metrics;
pub mod prom;
mod recorder;
mod ring;
pub mod slo;
mod span;
pub mod traceexport;

pub use histogram::{HistogramSummary, LatencyHistogram, HISTOGRAM_BUCKETS};
pub use json::{parse_json, Json, JsonParseError};
pub use recorder::{
    summarize_spans, CollectingRecorder, JsonLinesRecorder, NoopRecorder, Recorder, SpanSummary,
};
pub use ring::RingLog;
pub use span::{current_depth, span, with_ambient_depth, Field, FieldValue, Span, SpanRecord};

/// The counting allocator wraps [`std::alloc::System`] for every binary
/// in the workspace. Its disabled path is one relaxed atomic load per
/// `alloc`/`dealloc` (bounded by the `--check-noop-overhead` CI gate);
/// accounting only runs inside an [`alloc::AccountingGuard`] scope.
#[global_allocator]
static COUNTING_ALLOC: alloc::CountingAlloc = alloc::CountingAlloc;

use std::sync::atomic::{AtomicU32, Ordering};
use std::sync::{Arc, Mutex};

/// Bit in [`FLAGS`]: a span [`Recorder`] is installed.
pub(crate) const FLAG_RECORDER: u32 = 1 << 0;
/// Bit in [`FLAGS`]: the [`flight`] recorder is installed.
pub(crate) const FLAG_FLIGHT: u32 = 1 << 1;

/// The single enable word every instrumentation fast path loads: one bit
/// per subsystem (span recorder, flight recorder). Folding all the
/// enables into one atomic keeps the fully-disabled [`span`] path at
/// exactly one relaxed load no matter how many subsystems exist — the
/// invariant the `--check-noop-overhead` CI gate budgets.
static FLAGS: AtomicU32 = AtomicU32::new(0);

static RECORDER: Mutex<Option<Arc<dyn Recorder>>> = Mutex::new(None);

/// The current enable bits. One relaxed atomic load — this is the entire
/// cost instrumented code pays when all observability is off.
#[inline]
pub(crate) fn flags() -> u32 {
    FLAGS.load(Ordering::Relaxed)
}

pub(crate) fn set_flag(bit: u32) {
    FLAGS.fetch_or(bit, Ordering::Release);
}

pub(crate) fn clear_flag(bit: u32) {
    FLAGS.fetch_and(!bit, Ordering::Release);
}

/// Whether a span recorder is currently installed. (The flight recorder
/// has its own bit; see [`flight::enabled`].)
#[inline]
pub fn recording() -> bool {
    flags() & FLAG_RECORDER != 0
}

/// Installs `recorder` process-wide (replacing any previous one).
pub fn set_recorder(recorder: Arc<dyn Recorder>) {
    let mut slot = RECORDER.lock().expect("recorder slot poisoned");
    *slot = Some(recorder);
    set_flag(FLAG_RECORDER);
}

/// Uninstalls the process-wide recorder; subsequent [`span`] calls are
/// inert again (unless the flight recorder is on).
pub fn clear_recorder() {
    let mut slot = RECORDER.lock().expect("recorder slot poisoned");
    clear_flag(FLAG_RECORDER);
    *slot = None;
}

/// The currently installed recorder, if any.
pub fn current_recorder() -> Option<Arc<dyn Recorder>> {
    if !recording() {
        return None;
    }
    RECORDER.lock().expect("recorder slot poisoned").clone()
}

/// Runs `f` with `recorder` installed, restoring the previous recorder
/// afterwards (also on panic). Spans opened by *any* thread during the
/// scope are dispatched to `recorder` — which is what lets one call
/// observe `Engine::eval_batch`'s scoped workers. Nested scopes restore
/// in LIFO order; concurrent scopes on different threads would race on
/// the single global slot, so callers wanting isolated numbers (e.g.
/// `explain_analyze`) should not overlap scopes.
pub fn with_recorder<T>(recorder: Arc<dyn Recorder>, f: impl FnOnce() -> T) -> T {
    struct Restore(Option<Arc<dyn Recorder>>);
    impl Drop for Restore {
        fn drop(&mut self) {
            let mut slot = RECORDER.lock().expect("recorder slot poisoned");
            if self.0.is_some() {
                set_flag(FLAG_RECORDER);
            } else {
                clear_flag(FLAG_RECORDER);
            }
            *slot = self.0.take();
        }
    }
    let previous = {
        let mut slot = RECORDER.lock().expect("recorder slot poisoned");
        let previous = slot.take();
        *slot = Some(recorder);
        set_flag(FLAG_RECORDER);
        previous
    };
    let _restore = Restore(previous);
    f()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn disabled_spans_are_inert() {
        clear_recorder();
        assert!(!recording());
        let s = span("test.inert");
        assert!(!s.is_recording());
        drop(s);
    }

    #[test]
    fn with_recorder_scopes_and_restores() {
        let rec = Arc::new(CollectingRecorder::default());
        let collected = with_recorder(rec.clone(), || {
            assert!(recording());
            {
                let mut s = span("test.outer");
                s.record_u64("items", 3);
                let _inner = span("test.inner");
            }
            rec.finished_spans()
        });
        assert!(!recording());
        assert_eq!(collected.len(), 2);
        // Spans close innermost-first.
        assert_eq!(collected[0].name, "test.inner");
        assert_eq!(collected[0].depth, 1);
        assert_eq!(collected[1].name, "test.outer");
        assert_eq!(collected[1].depth, 0);
        assert_eq!(collected[1].fields[0].key, "items");
        assert_eq!(collected[1].fields[0].value, FieldValue::U64(3));
    }

    #[test]
    fn with_recorder_restores_on_panic() {
        let rec = Arc::new(CollectingRecorder::default());
        let result = std::panic::catch_unwind(|| {
            with_recorder(rec, || panic!("boom"));
        });
        assert!(result.is_err());
        assert!(!recording());
    }

    #[test]
    fn spans_from_spawned_threads_are_recorded() {
        let rec = Arc::new(CollectingRecorder::default());
        with_recorder(rec.clone(), || {
            std::thread::scope(|s| {
                for _ in 0..4 {
                    s.spawn(|| {
                        let _g = span("test.worker");
                    });
                }
            });
        });
        let summary = rec.summary();
        let worker = summary.iter().find(|s| s.name == "test.worker").unwrap();
        assert_eq!(worker.calls, 4);
    }
}
