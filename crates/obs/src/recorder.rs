//! Recorder sinks: where closed spans go.

use std::collections::BTreeMap;
use std::io::Write;
use std::sync::Mutex;

use crate::histogram::{HistogramSummary, LatencyHistogram};
use crate::json::Json;
use crate::ring::RingLog;
use crate::span::{FieldValue, SpanRecord};

/// A sink for closed spans. Implementations must be cheap and
/// thread-safe: spans arrive from every thread that runs instrumented
/// code, including `Engine::eval_batch` workers.
pub trait Recorder: Send + Sync {
    /// Called once per closed span.
    fn record_span(&self, span: &SpanRecord);
}

/// Discards everything. Installing it is equivalent to (but slower than)
/// installing nothing: prefer `clear_recorder` so the disabled fast path
/// — one relaxed atomic load, no clock read — applies.
#[derive(Clone, Copy, Debug, Default)]
pub struct NoopRecorder;

impl Recorder for NoopRecorder {
    fn record_span(&self, _span: &SpanRecord) {}
}

/// Per-span-name aggregate kept by a [`CollectingRecorder`].
#[derive(Clone, Debug)]
pub struct SpanSummary {
    /// The span name.
    pub name: &'static str,
    /// Number of closed spans with this name.
    pub calls: u64,
    /// Total wall time across those spans, in nanoseconds.
    pub total_ns: u64,
    /// Smallest nesting depth the name was seen at (for tree rendering).
    pub depth: u32,
    /// Latency distribution of the individual spans.
    pub latency: HistogramSummary,
    /// Sums of every `u64` field recorded on those spans, by key.
    pub field_sums: Vec<(&'static str, u64)>,
}

impl SpanSummary {
    /// The summary as a JSON object (the harness report row).
    pub fn to_json(&self) -> Json {
        let mut fields = Json::obj();
        for (k, v) in &self.field_sums {
            fields = fields.set(*k, *v);
        }
        Json::obj()
            .set("name", self.name)
            .set("calls", self.calls)
            .set("total_ns", self.total_ns)
            .set("p50_ns", self.latency.p50_ns)
            .set("p95_ns", self.latency.p95_ns)
            .set("p99_ns", self.latency.p99_ns)
            .set("max_ns", self.latency.max_ns)
            .set("fields", fields)
    }
}

#[derive(Debug)]
struct Agg {
    calls: u64,
    total_ns: u64,
    depth: u32,
    first_start_ns: u64,
    first_seen: usize,
    hist: LatencyHistogram,
    field_sums: BTreeMap<&'static str, u64>,
}

#[derive(Debug)]
struct CollectingInner {
    aggregates: BTreeMap<&'static str, Agg>,
    recent: RingLog<SpanRecord>,
    seen: usize,
}

/// Aggregates spans in memory: per-name call counts, total wall time,
/// latency histograms, and `u64`-field sums, plus a bounded ring buffer
/// of the most recent raw spans (the event log).
#[derive(Debug)]
pub struct CollectingRecorder {
    inner: Mutex<CollectingInner>,
}

impl Default for CollectingRecorder {
    fn default() -> Self {
        CollectingRecorder::with_ring_capacity(4096)
    }
}

impl CollectingRecorder {
    /// A recorder retaining at most `capacity` raw spans (aggregates are
    /// unbounded in span *names*, which form a small fixed taxonomy).
    pub fn with_ring_capacity(capacity: usize) -> Self {
        CollectingRecorder {
            inner: Mutex::new(CollectingInner {
                aggregates: BTreeMap::new(),
                recent: RingLog::new(capacity),
                seen: 0,
            }),
        }
    }

    /// Per-name aggregates, ordered by each name's earliest span *start*
    /// (delivery order won't do: spans are delivered when they close, so
    /// children would sort before the parents that enclose them — start
    /// order keeps `AnalyzedPlan::render`'s indented tree well-formed).
    pub fn summary(&self) -> Vec<SpanSummary> {
        let inner = self.inner.lock().expect("collecting recorder poisoned");
        let mut rows: Vec<(u64, usize, SpanSummary)> = inner
            .aggregates
            .iter()
            .map(|(name, a)| {
                (
                    a.first_start_ns,
                    a.first_seen,
                    SpanSummary {
                        name,
                        calls: a.calls,
                        total_ns: a.total_ns,
                        depth: a.depth,
                        latency: a.hist.summary(),
                        field_sums: a.field_sums.iter().map(|(k, v)| (*k, *v)).collect(),
                    },
                )
            })
            .collect();
        rows.sort_by_key(|(start, seen, _)| (*start, *seen));
        rows.into_iter().map(|(_, _, s)| s).collect()
    }

    /// The latency histogram of one span name, if it was ever recorded.
    pub fn histogram(&self, name: &str) -> Option<LatencyHistogram> {
        let inner = self.inner.lock().expect("collecting recorder poisoned");
        inner.aggregates.get(name).map(|a| a.hist.clone())
    }

    /// The most recent raw spans (the bounded event log), oldest first.
    pub fn finished_spans(&self) -> Vec<SpanRecord> {
        let inner = self.inner.lock().expect("collecting recorder poisoned");
        inner.recent.iter().cloned().collect()
    }

    /// Total spans delivered (including any evicted from the ring).
    pub fn spans_seen(&self) -> usize {
        self.inner
            .lock()
            .expect("collecting recorder poisoned")
            .seen
    }

    /// Drops all aggregates and retained spans.
    pub fn reset(&self) {
        let mut inner = self.inner.lock().expect("collecting recorder poisoned");
        inner.aggregates.clear();
        let capacity = inner.recent.capacity();
        inner.recent = RingLog::new(capacity);
        inner.seen = 0;
    }
}

impl Recorder for CollectingRecorder {
    fn record_span(&self, span: &SpanRecord) {
        let mut inner = self.inner.lock().expect("collecting recorder poisoned");
        let first_seen = inner.seen;
        inner.seen += 1;
        let agg = inner.aggregates.entry(span.name).or_insert_with(|| Agg {
            calls: 0,
            total_ns: 0,
            depth: span.depth,
            first_start_ns: span.start_ns,
            first_seen,
            hist: LatencyHistogram::new(),
            field_sums: BTreeMap::new(),
        });
        agg.calls += 1;
        agg.first_start_ns = agg.first_start_ns.min(span.start_ns);
        agg.total_ns = agg.total_ns.saturating_add(span.duration_ns);
        agg.depth = agg.depth.min(span.depth);
        agg.hist.record(span.duration_ns);
        for field in &span.fields {
            if let FieldValue::U64(v) = field.value {
                let slot = agg.field_sums.entry(field.key).or_insert(0);
                *slot = slot.saturating_add(v);
            }
        }
        inner.recent.push(span.clone());
    }
}

/// Aggregates a list of already-closed spans into per-name summaries —
/// the same shape a [`CollectingRecorder`] scope would have produced.
/// Used by the flight recorder's slow-query log to rebuild an
/// `EXPLAIN ANALYZE` rendering from a [`QueryRecord`]'s captured spans
/// after the fact.
///
/// [`QueryRecord`]: crate::flight::QueryRecord
pub fn summarize_spans(spans: &[SpanRecord]) -> Vec<SpanSummary> {
    let rec = CollectingRecorder::with_ring_capacity(1);
    for span in spans {
        rec.record_span(span);
    }
    rec.summary()
}

/// Streams one JSON object per closed span to a writer (a `jsonl` trace
/// that external tools can tail).
pub struct JsonLinesRecorder {
    out: Mutex<Box<dyn Write + Send>>,
}

impl JsonLinesRecorder {
    /// Wraps any writer (a `File`, a `Vec<u8>` behind a cursor, stderr…).
    pub fn new(out: impl Write + Send + 'static) -> Self {
        JsonLinesRecorder {
            out: Mutex::new(Box::new(out)),
        }
    }

    /// Flushes the underlying writer.
    pub fn flush(&self) -> std::io::Result<()> {
        self.out.lock().expect("jsonl recorder poisoned").flush()
    }
}

/// The JSON object written for one span.
pub(crate) fn span_to_json(span: &SpanRecord) -> Json {
    let mut fields = Json::obj();
    for f in &span.fields {
        fields = match &f.value {
            FieldValue::U64(v) => fields.set(f.key, *v),
            FieldValue::F64(v) => fields.set(f.key, *v),
            FieldValue::Bool(v) => fields.set(f.key, *v),
            FieldValue::Str(v) => fields.set(f.key, v.as_str()),
        };
    }
    Json::obj()
        .set("span", span.name)
        .set("start_ns", span.start_ns)
        .set("duration_ns", span.duration_ns)
        .set("depth", span.depth)
        .set("thread", span.thread)
        .set("fields", fields)
}

impl Recorder for JsonLinesRecorder {
    fn record_span(&self, span: &SpanRecord) {
        let line = span_to_json(span).render();
        let mut out = self.out.lock().expect("jsonl recorder poisoned");
        // A failed trace write must not take down the query: drop it.
        let _ = writeln!(out, "{line}");
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::span::Field;
    use std::sync::Arc;

    fn record(name: &'static str, duration_ns: u64, fields: Vec<Field>) -> SpanRecord {
        SpanRecord {
            name,
            start_ns: 0,
            duration_ns,
            depth: 0,
            thread: 0,
            fields,
        }
    }

    #[test]
    fn collecting_recorder_aggregates_per_name() {
        let rec = CollectingRecorder::default();
        rec.record_span(&record(
            "a",
            100,
            vec![Field {
                key: "n",
                value: FieldValue::U64(5),
            }],
        ));
        rec.record_span(&record(
            "a",
            300,
            vec![Field {
                key: "n",
                value: FieldValue::U64(7),
            }],
        ));
        rec.record_span(&record("b", 50, Vec::new()));
        let summary = rec.summary();
        assert_eq!(summary.len(), 2);
        assert_eq!(summary[0].name, "a");
        assert_eq!(summary[0].calls, 2);
        assert_eq!(summary[0].total_ns, 400);
        assert_eq!(summary[0].field_sums, vec![("n", 12)]);
        assert_eq!(summary[1].name, "b");
        assert_eq!(rec.spans_seen(), 3);
        rec.reset();
        assert!(rec.summary().is_empty());
    }

    #[test]
    fn ring_bounds_raw_spans_but_not_aggregates() {
        let rec = CollectingRecorder::with_ring_capacity(2);
        for i in 0..5 {
            rec.record_span(&record("a", i, Vec::new()));
        }
        assert_eq!(rec.finished_spans().len(), 2);
        assert_eq!(rec.summary()[0].calls, 5);
    }

    #[test]
    fn jsonl_recorder_writes_parseable_lines() {
        #[derive(Clone)]
        struct SharedBuf(Arc<Mutex<Vec<u8>>>);
        impl Write for SharedBuf {
            fn write(&mut self, buf: &[u8]) -> std::io::Result<usize> {
                self.0.lock().unwrap().extend_from_slice(buf);
                Ok(buf.len())
            }
            fn flush(&mut self) -> std::io::Result<()> {
                Ok(())
            }
        }
        let buf = SharedBuf(Arc::new(Mutex::new(Vec::new())));
        let rec = JsonLinesRecorder::new(buf.clone());
        rec.record_span(&record(
            "exec.sweep",
            1234,
            vec![Field {
                key: "nodes",
                value: FieldValue::U64(9),
            }],
        ));
        rec.flush().unwrap();
        let text = String::from_utf8(buf.0.lock().unwrap().clone()).unwrap();
        let line = text.lines().next().unwrap();
        let v = crate::parse_json(line).unwrap();
        assert_eq!(v.get("span").unwrap().as_str(), Some("exec.sweep"));
        assert_eq!(v.get("duration_ns").unwrap().as_u64(), Some(1234));
        assert_eq!(
            v.get("fields").unwrap().get("nodes").unwrap().as_u64(),
            Some(9)
        );
    }
}
