//! The query flight recorder: a bounded, process-global ring of
//! per-query records, plus a slow-query log.
//!
//! Once [`install`]ed, every engine evaluation gets a monotonically
//! increasing query id and leaves behind a [`QueryRecord`]: the query
//! text and fingerprints, the chosen strategy with the planner's
//! rationale, wall time, result cardinality, cache hit/miss, the raw
//! span tree of the run, and a degraded-counters tag. The most recent
//! records are retained in a fixed-capacity ring ([`recent`]); records
//! whose wall time exceeded the slow threshold are additionally retained
//! in a separate ring with their full `EXPLAIN ANALYZE` text and a
//! re-runnable reproducer rendering ([`slow_recent`]).
//!
//! **Disabled path.** Like the span recorder, the flight recorder costs
//! nothing when off: its enable bit lives in the same atomic word the
//! span gate loads, so instrumented code pays one relaxed load total for
//! both subsystems (budgeted by `--check-noop-overhead`).
//!
//! **Ring semantics.** Each submission takes a ticket from an atomic
//! counter and writes slot `ticket % capacity`, overwriting only records
//! with *older* tickets. Concurrent out-of-order completions therefore
//! cannot resurrect an evicted record: once all in-flight submissions
//! settle, the ring holds exactly the newest `capacity` records (the
//! property the eviction proptest pins).
//!
//! Span capture rides the existing [`crate::span`] machinery: the engine
//! scopes a thread-local *current query id* around each evaluation (the
//! worker pool propagates it into chunk tasks alongside ambient depth),
//! open spans remember it, and closed spans are buffered per query until
//! the engine calls [`take_spans`] and [`submit`]s the finished record.

use std::cell::Cell;
use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};

use crate::json::Json;
use crate::recorder::span_to_json;
use crate::span::SpanRecord;

/// Tunables for the flight recorder. [`FlightConfig::from_env`] resolves
/// the slow threshold from `TREEQUERY_SLOW_MS`.
#[derive(Clone, Debug, PartialEq)]
pub struct FlightConfig {
    /// Recent-query ring capacity (records kept in [`recent`]).
    pub capacity: usize,
    /// Slow-query ring capacity (records kept in [`slow_recent`]).
    pub slow_capacity: usize,
    /// Wall-time threshold above which a query is logged as slow, in
    /// nanoseconds. `None` disables the slow log (a per-engine
    /// `PlannerConfig::slow_query_ms` can still opt in).
    pub slow_threshold_ns: Option<u64>,
    /// Per-query cap on buffered spans; spans past it are counted in
    /// [`QueryRecord::dropped_spans`] instead of retained.
    pub max_spans_per_query: usize,
}

impl Default for FlightConfig {
    fn default() -> Self {
        FlightConfig {
            capacity: 128,
            slow_capacity: 32,
            slow_threshold_ns: None,
            max_spans_per_query: 4096,
        }
    }
}

impl FlightConfig {
    /// The default configuration with the slow threshold taken from the
    /// `TREEQUERY_SLOW_MS` environment variable (milliseconds; `0` logs
    /// every query). An unparsable value falls back to the default and
    /// warns once on stderr (see [`crate::env`]).
    pub fn from_env() -> FlightConfig {
        match std::env::var("TREEQUERY_SLOW_MS") {
            Ok(raw) => FlightConfig::from_slow_ms(&raw),
            Err(_) => FlightConfig::default(),
        }
    }

    /// [`from_env`](FlightConfig::from_env) with the raw knob value
    /// passed in — the testable parse path.
    pub fn from_slow_ms(raw: &str) -> FlightConfig {
        FlightConfig {
            slow_threshold_ns: crate::env::u64_value("TREEQUERY_SLOW_MS", raw)
                .map(|ms| ms.saturating_mul(1_000_000)),
            ..FlightConfig::default()
        }
    }
}

/// One completed evaluation, as captured by the flight recorder.
#[derive(Clone, Debug)]
pub struct QueryRecord {
    /// The monotonically increasing query id (1-based; unique per
    /// process for one installed recorder).
    pub id: u64,
    /// The query source text, as submitted (or the normalized rendering
    /// when the query was lowered from an already-parsed form).
    pub query: String,
    /// The originating front-end (`xpath`, `cq`, `datalog`).
    pub source: String,
    /// Fingerprint of the query's normalized form.
    pub query_fingerprint: u64,
    /// Fingerprint of the tree the query ran against.
    pub tree_fingerprint: u64,
    /// The strategy the planner chose (e.g. `xpath/set-at-a-time`).
    pub strategy: String,
    /// The planner's rationale for that choice.
    pub rationale: String,
    /// The parallelism decision's rationale.
    pub parallel_rationale: String,
    /// Worker threads the plan was allowed to use.
    pub workers: u64,
    /// Whether the plan came from the plan cache.
    pub cache_hit: bool,
    /// End-to-end wall time of the evaluation, in nanoseconds.
    pub wall_ns: u64,
    /// Result cardinality (nodes or tuples); 0 on error.
    pub rows: u64,
    /// The error message, when the evaluation failed.
    pub error: Option<String>,
    /// Retries the post-run counter read needed to quiesce (see
    /// `Metrics::snapshot_quiesced`); non-zero means the record was
    /// captured under concurrent load.
    pub quiesce_retries: u32,
    /// Whether the counter read never quiesced — the record's timing is
    /// exact but any attached counters are degraded.
    pub torn: bool,
    /// The spans that closed while this query was current, in close
    /// order (the raw material for the Chrome trace export).
    pub spans: Vec<SpanRecord>,
    /// Spans dropped past [`FlightConfig::max_spans_per_query`].
    pub dropped_spans: u64,
    /// The tenant the serving layer attributed the query to (empty for
    /// direct engine use — the library has no tenants).
    pub tenant: String,
    /// The end-to-end trace id stamped on the wire request (empty for
    /// direct engine use).
    pub trace_id: String,
    /// Time the request waited in admission before evaluation, in
    /// nanoseconds (0 for direct engine use and fast-lane admissions
    /// that never waited).
    pub admission_wait_ns: u64,
    /// Serialized response size in bytes, attached after the fact by
    /// [`annotate_response`] (0 until then, and always 0 for direct
    /// engine use).
    pub resp_bytes: u64,
}

impl QueryRecord {
    /// The record as a JSON object; `include_spans` controls whether the
    /// raw span list rides along (the `/flight` endpoint omits it).
    pub fn to_json(&self, include_spans: bool) -> Json {
        let mut obj = Json::obj()
            .set("id", self.id)
            .set("query", self.query.as_str())
            .set("source", self.source.as_str())
            .set("query_fingerprint", self.query_fingerprint)
            .set("tree_fingerprint", self.tree_fingerprint)
            .set("strategy", self.strategy.as_str())
            .set("rationale", self.rationale.as_str())
            .set("parallel", self.parallel_rationale.as_str())
            .set("workers", self.workers)
            .set("cache_hit", self.cache_hit)
            .set("wall_ns", self.wall_ns)
            .set("rows", self.rows)
            .set("quiesce_retries", self.quiesce_retries)
            .set("torn", self.torn)
            .set("span_count", self.spans.len() as u64)
            .set("dropped_spans", self.dropped_spans)
            .set("admission_wait_ns", self.admission_wait_ns)
            .set("resp_bytes", self.resp_bytes);
        if !self.tenant.is_empty() {
            obj = obj.set("tenant", self.tenant.as_str());
        }
        if !self.trace_id.is_empty() {
            obj = obj.set("trace_id", self.trace_id.as_str());
        }
        if let Some(e) = &self.error {
            obj = obj.set("error", e.as_str());
        }
        if include_spans {
            obj = obj.set(
                "spans",
                Json::Arr(self.spans.iter().map(span_to_json).collect()),
            );
        }
        obj
    }
}

/// Extra material retained for a slow query: the rendered
/// `EXPLAIN ANALYZE` text and a re-runnable reproducer.
#[derive(Clone, Debug)]
pub struct SlowDetail {
    /// The full `EXPLAIN ANALYZE` rendering of the captured run.
    pub explain: String,
    /// A reproducer rendering: tree fingerprint + query source, enough
    /// to re-run the query against a structurally identical tree.
    pub reproducer: String,
}

/// A slow-query log entry: the record plus its [`SlowDetail`].
#[derive(Clone, Debug)]
pub struct SlowQuery {
    /// The captured record.
    pub record: Arc<QueryRecord>,
    /// `EXPLAIN ANALYZE` text and reproducer.
    pub detail: SlowDetail,
}

impl SlowQuery {
    /// The entry as a JSON object (the `/slow` endpoint row).
    pub fn to_json(&self) -> Json {
        self.record
            .to_json(false)
            .set("explain", self.detail.explain.as_str())
            .set("reproducer", self.detail.reproducer.as_str())
    }
}

/// One ring slot: the submission ticket paired with the stored value.
type Slot<T> = Mutex<Option<(u64, T)>>;

/// A ticket-guarded overwrite ring: slot `ticket % capacity` holds the
/// newest record assigned to it, so at quiescence the ring holds exactly
/// the newest `capacity` submissions regardless of completion order.
struct TicketRing<T> {
    ticket: AtomicU64,
    slots: Box<[Slot<T>]>,
}

impl<T: Clone> TicketRing<T> {
    fn new(capacity: usize) -> TicketRing<T> {
        let capacity = capacity.max(1);
        let mut slots = Vec::with_capacity(capacity);
        slots.resize_with(capacity, || Mutex::new(None));
        TicketRing {
            ticket: AtomicU64::new(0),
            slots: slots.into_boxed_slice(),
        }
    }

    fn push(&self, value: T) {
        let ticket = self.ticket.fetch_add(1, Ordering::Relaxed);
        let slot = &self.slots[(ticket % self.slots.len() as u64) as usize];
        let mut guard = slot.lock().expect("flight ring slot poisoned");
        match &*guard {
            // A concurrent later submission already claimed the slot;
            // overwriting it would resurrect an evicted generation.
            Some((held, _)) if *held > ticket => {}
            _ => *guard = Some((ticket, value)),
        }
    }

    /// Total submissions so far.
    fn submitted(&self) -> u64 {
        self.ticket.load(Ordering::Relaxed)
    }

    /// Rewrites retained values in place: `f` returns `Some(new)` for
    /// values it wants replaced. Ticket ownership is untouched, so the
    /// eviction invariant is preserved.
    fn update(&self, mut f: impl FnMut(&T) -> Option<T>) {
        for slot in self.slots.iter() {
            let mut guard = slot.lock().expect("flight ring slot poisoned");
            if let Some((ticket, value)) = &*guard {
                if let Some(new) = f(value) {
                    *guard = Some((*ticket, new));
                }
            }
        }
    }

    /// Retained values, oldest first (by ticket).
    fn collect(&self) -> Vec<T> {
        let mut rows: Vec<(u64, T)> = self
            .slots
            .iter()
            .filter_map(|s| s.lock().expect("flight ring slot poisoned").clone())
            .collect();
        rows.sort_by_key(|(t, _)| *t);
        rows.into_iter().map(|(_, v)| v).collect()
    }
}

/// Per-query buffer of closed spans awaiting [`take_spans`].
struct Pending {
    spans: Vec<SpanRecord>,
    dropped: u64,
}

struct FlightState {
    config: FlightConfig,
    next_id: AtomicU64,
    recent: TicketRing<Arc<QueryRecord>>,
    slow: TicketRing<SlowQuery>,
    pending: Mutex<HashMap<u64, Pending>>,
}

static STATE: Mutex<Option<Arc<FlightState>>> = Mutex::new(None);

thread_local! {
    /// The query id spans opened on this thread attribute to (0 = none).
    static CURRENT: Cell<u64> = const { Cell::new(0) };
    /// The wire-request context the serving layer attached (None for
    /// direct engine use).
    static REQUEST_CTX: std::cell::RefCell<Option<RequestCtx>> =
        const { std::cell::RefCell::new(None) };
}

/// Wire-request context the serving layer attaches around an evaluation
/// so the engine-built [`QueryRecord`] carries tenant attribution, the
/// end-to-end trace id, and the admission wait. Scoped with
/// [`with_request_ctx`]; read by the engine via [`request_ctx`] when it
/// builds the record.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct RequestCtx {
    /// The session's tenant.
    pub tenant: String,
    /// The request's trace id (client-supplied or server-generated).
    pub trace_id: String,
    /// Nanoseconds the request waited in admission.
    pub admission_wait_ns: u64,
}

/// Runs `f` with `ctx` as this thread's request context, restoring the
/// previous context afterwards (also on panic).
pub fn with_request_ctx<T>(ctx: RequestCtx, f: impl FnOnce() -> T) -> T {
    struct Restore(Option<RequestCtx>);
    impl Drop for Restore {
        fn drop(&mut self) {
            REQUEST_CTX.with(|c| *c.borrow_mut() = self.0.take());
        }
    }
    let previous = REQUEST_CTX.with(|c| c.borrow_mut().replace(ctx));
    let _restore = Restore(previous);
    f()
}

/// The request context attached to this thread, if any.
pub fn request_ctx() -> Option<RequestCtx> {
    REQUEST_CTX.with(|c| c.borrow().clone())
}

fn state() -> Option<Arc<FlightState>> {
    STATE.lock().expect("flight state poisoned").clone()
}

/// Installs the flight recorder process-wide (replacing any previous
/// one and discarding its retained records).
pub fn install(config: FlightConfig) {
    let state = Arc::new(FlightState {
        recent: TicketRing::new(config.capacity),
        slow: TicketRing::new(config.slow_capacity),
        next_id: AtomicU64::new(0),
        pending: Mutex::new(HashMap::new()),
        config,
    });
    let mut slot = STATE.lock().expect("flight state poisoned");
    *slot = Some(state);
    crate::set_flag(crate::FLAG_FLIGHT);
}

/// Uninstalls the flight recorder; evaluation goes back to the
/// one-relaxed-load disabled path and retained records are dropped.
pub fn uninstall() {
    let mut slot = STATE.lock().expect("flight state poisoned");
    crate::clear_flag(crate::FLAG_FLIGHT);
    *slot = None;
}

/// Whether the flight recorder is installed. One relaxed atomic load
/// (the same word the span gate reads).
#[inline]
pub fn enabled() -> bool {
    crate::flags() & crate::FLAG_FLIGHT != 0
}

/// The installed slow threshold, if any (engine configuration may
/// override it per engine).
pub fn slow_threshold_ns() -> Option<u64> {
    state().and_then(|s| s.config.slow_threshold_ns)
}

/// Assigns the next query id (1-based). Returns 0 when the recorder is
/// not installed — 0 is never a valid query id.
pub fn begin_query() -> u64 {
    match state() {
        Some(s) => s.next_id.fetch_add(1, Ordering::Relaxed) + 1,
        None => 0,
    }
}

/// The query id spans opened on this thread currently attribute to
/// (0 = none). Worker pools capture this on the submitting thread and
/// replay it on workers via [`with_current_query`], exactly like
/// ambient span depth.
#[inline]
pub fn current_query() -> u64 {
    CURRENT.with(|c| c.get())
}

/// Runs `f` with this thread's current query id set to `id`, restoring
/// the previous id afterwards (also on panic).
pub fn with_current_query<T>(id: u64, f: impl FnOnce() -> T) -> T {
    struct Restore(u64);
    impl Drop for Restore {
        fn drop(&mut self) {
            CURRENT.with(|c| c.set(self.0));
        }
    }
    let previous = CURRENT.with(|c| c.replace(id));
    let _restore = Restore(previous);
    f()
}

/// Buffers a closed span for query `id`. Called by the span core when a
/// span that opened under a current query closes.
pub(crate) fn deliver(id: u64, span: SpanRecord) {
    let Some(state) = state() else { return };
    let mut pending = state.pending.lock().expect("flight pending poisoned");
    // Bound the buffer map itself: a query that never submits (e.g. a
    // panicking evaluation) must not pin memory forever.
    if pending.len() >= 1024 && !pending.contains_key(&id) {
        return;
    }
    let entry = pending.entry(id).or_insert_with(|| Pending {
        spans: Vec::new(),
        dropped: 0,
    });
    if entry.spans.len() >= state.config.max_spans_per_query {
        entry.dropped += 1;
    } else {
        entry.spans.push(span);
    }
}

/// Removes and returns the spans buffered for query `id` (close order)
/// plus the count of spans dropped past the per-query cap.
pub fn take_spans(id: u64) -> (Vec<SpanRecord>, u64) {
    let Some(state) = state() else {
        return (Vec::new(), 0);
    };
    let mut pending = state.pending.lock().expect("flight pending poisoned");
    match pending.remove(&id) {
        Some(p) => (p.spans, p.dropped),
        None => (Vec::new(), 0),
    }
}

/// Submits a finished record into the recent ring (and, when
/// `slow_detail` is given, the slow ring), and publishes the record's
/// per-stage latencies into the global metrics registry.
pub fn submit(record: QueryRecord, slow_detail: Option<SlowDetail>) {
    let Some(state) = state() else { return };
    publish_metrics(&record, slow_detail.is_some());
    let record = Arc::new(record);
    state.recent.push(Arc::clone(&record));
    if let Some(detail) = slow_detail {
        state.slow.push(SlowQuery { record, detail });
    }
}

/// Attaches wire-side response accounting to an already-submitted
/// record: the serialized response size, and (when `serialize_ns` is
/// non-zero) a synthetic `serve.serialize` span on the same tracing
/// time base as the real spans. Serialization necessarily happens
/// *after* the engine submits the record — the response body is built
/// from the evaluation result — so the rings are patched in place; the
/// record with `id` may already be evicted, in which case this is a
/// no-op. Ring tickets are untouched, so eviction order is preserved.
pub fn annotate_response(id: u64, resp_bytes: u64, serialize_ns: u64) {
    let Some(state) = state() else { return };
    let serialize_span = (serialize_ns > 0).then(|| SpanRecord {
        name: "serve.serialize",
        start_ns: crate::span::now_since_epoch_ns().saturating_sub(serialize_ns),
        duration_ns: serialize_ns,
        depth: 0,
        thread: crate::span::current_thread_id(),
        fields: Vec::new(),
    });
    let annotate = |record: &Arc<QueryRecord>| -> Option<Arc<QueryRecord>> {
        if record.id != id {
            return None;
        }
        let mut new = (**record).clone();
        new.resp_bytes = resp_bytes;
        if let Some(span) = serialize_span.clone() {
            new.spans.push(span);
        }
        Some(Arc::new(new))
    };
    state.recent.update(annotate);
    state.slow.update(|sq: &SlowQuery| {
        annotate(&sq.record).map(|record| SlowQuery {
            record,
            detail: sq.detail.clone(),
        })
    });
}

/// Publishes one record's observables into [`crate::metrics::global`]:
/// per-stage latency histogram families keyed by span name, per-source
/// wall-time histograms, and the flight counters/last-id gauge.
fn publish_metrics(record: &QueryRecord, slow: bool) {
    let registry = crate::metrics::global();
    registry
        .counter_or_existing(
            "treequery_flight_queries_total",
            "Queries captured by the flight recorder.",
        )
        .inc();
    if slow {
        registry
            .counter_or_existing(
                "treequery_flight_slow_total",
                "Queries that exceeded the slow-query threshold.",
            )
            .inc();
    }
    registry
        .gauge_or_existing(
            "treequery_flight_last_query_id",
            "Most recently submitted flight-recorder query id.",
        )
        .set(i64::try_from(record.id).unwrap_or(i64::MAX));
    registry
        .histogram_family_or_existing(
            "treequery_query_wall_ns",
            "End-to-end query wall time by front-end.",
            "source",
        )
        .with_label(&record.source)
        .observe(record.wall_ns);
    let stages = registry.histogram_family_or_existing(
        "treequery_stage_latency_ns",
        "Per-stage span latency across flight-recorded queries.",
        "stage",
    );
    for span in &record.spans {
        stages.with_label(span.name).observe(span.duration_ns);
    }
}

/// The retained recent records, oldest first. Empty when the recorder
/// is not installed.
pub fn recent() -> Vec<Arc<QueryRecord>> {
    state().map(|s| s.recent.collect()).unwrap_or_default()
}

/// The retained slow-query entries, oldest first.
pub fn slow_recent() -> Vec<SlowQuery> {
    state().map(|s| s.slow.collect()).unwrap_or_default()
}

/// The most recently submitted record, if any.
pub fn latest() -> Option<Arc<QueryRecord>> {
    recent().pop()
}

/// Total records submitted to the installed recorder.
pub fn submitted_total() -> u64 {
    state().map(|s| s.recent.submitted()).unwrap_or(0)
}

/// The `/flight` endpoint body: recent records (without raw spans) plus
/// ring accounting.
pub fn recent_json() -> Json {
    let records = recent();
    let submitted = submitted_total();
    Json::obj()
        .set("submitted", submitted)
        .set("retained", records.len() as u64)
        .set("evicted", submitted.saturating_sub(records.len() as u64))
        .set(
            "records",
            Json::Arr(records.iter().map(|r| r.to_json(false)).collect()),
        )
}

/// The `/slow` endpoint body: slow-query entries with their
/// `EXPLAIN ANALYZE` text and reproducers.
pub fn slow_json() -> Json {
    let rows = slow_recent();
    Json::obj().set("retained", rows.len() as u64).set(
        "records",
        Json::Arr(rows.iter().map(SlowQuery::to_json).collect()),
    )
}

#[cfg(test)]
pub(crate) fn test_lock() -> std::sync::MutexGuard<'static, ()> {
    static LOCK: Mutex<()> = Mutex::new(());
    match LOCK.lock() {
        Ok(g) => g,
        Err(poisoned) => poisoned.into_inner(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    pub(crate) fn record(id: u64) -> QueryRecord {
        QueryRecord {
            id,
            query: format!("//q{id}"),
            source: "xpath".to_owned(),
            query_fingerprint: id,
            tree_fingerprint: 7,
            strategy: "xpath/set-at-a-time".to_owned(),
            rationale: "test".to_owned(),
            parallel_rationale: "sequential".to_owned(),
            workers: 1,
            cache_hit: false,
            wall_ns: 1000 + id,
            rows: id,
            error: None,
            quiesce_retries: 0,
            torn: false,
            spans: Vec::new(),
            dropped_spans: 0,
            tenant: String::new(),
            trace_id: String::new(),
            admission_wait_ns: 0,
            resp_bytes: 0,
        }
    }

    #[test]
    fn disabled_recorder_is_inert() {
        let _g = test_lock();
        uninstall();
        assert!(!enabled());
        assert_eq!(begin_query(), 0);
        assert!(recent().is_empty());
        assert!(slow_recent().is_empty());
        submit(record(1), None); // dropped silently
        assert_eq!(submitted_total(), 0);
    }

    #[test]
    fn ring_keeps_exactly_the_newest_n() {
        let _g = test_lock();
        install(FlightConfig {
            capacity: 4,
            ..FlightConfig::default()
        });
        for i in 1..=10u64 {
            submit(record(i), None);
        }
        let ids: Vec<u64> = recent().iter().map(|r| r.id).collect();
        assert_eq!(ids, vec![7, 8, 9, 10]);
        assert_eq!(submitted_total(), 10);
        assert_eq!(latest().unwrap().id, 10);
        uninstall();
    }

    #[test]
    fn ticket_guard_never_resurrects_an_evicted_generation() {
        // Simulate out-of-order completion: ticket 0's write lands after
        // ticket 4 already claimed the same slot.
        let ring: TicketRing<u64> = TicketRing::new(4);
        let t0 = ring.ticket.fetch_add(1, Ordering::Relaxed); // ticket 0
        for v in [1u64, 2, 3, 4] {
            ring.push(v); // tickets 1..=4; ticket 4 → slot 0
        }
        // Now deliver ticket 0's value late, directly into slot 0.
        let slot = &ring.slots[(t0 % 4) as usize];
        {
            let mut guard = slot.lock().unwrap();
            if !matches!(&*guard, Some((held, _)) if *held > t0) {
                *guard = Some((t0, 99));
            }
        }
        assert_eq!(ring.collect(), vec![1, 2, 3, 4]);
    }

    #[test]
    fn slow_ring_retains_detail() {
        let _g = test_lock();
        install(FlightConfig {
            capacity: 8,
            slow_capacity: 2,
            ..FlightConfig::default()
        });
        for i in 1..=3u64 {
            submit(
                record(i),
                Some(SlowDetail {
                    explain: format!("EXPLAIN ANALYZE #{i}"),
                    reproducer: format!("repro #{i}"),
                }),
            );
        }
        let slow = slow_recent();
        assert_eq!(slow.len(), 2);
        assert_eq!(slow[0].record.id, 2);
        assert_eq!(slow[1].record.id, 3);
        assert_eq!(slow[1].detail.explain, "EXPLAIN ANALYZE #3");
        let v = crate::parse_json(&slow_json().render()).unwrap();
        assert_eq!(v.get("retained").unwrap().as_u64(), Some(2));
        let rows = v.get("records").unwrap().as_arr().unwrap();
        assert_eq!(
            rows[1].get("reproducer").unwrap().as_str(),
            Some("repro #3")
        );
        uninstall();
    }

    #[test]
    fn pending_spans_are_buffered_per_query_and_capped() {
        let _g = test_lock();
        install(FlightConfig {
            max_spans_per_query: 2,
            ..FlightConfig::default()
        });
        let span = |name: &'static str| SpanRecord {
            name,
            start_ns: 0,
            duration_ns: 1,
            depth: 0,
            thread: 0,
            fields: Vec::new(),
        };
        let q = begin_query();
        assert!(q > 0);
        deliver(q, span("a"));
        deliver(q, span("b"));
        deliver(q, span("c")); // past the cap
        deliver(q + 1, span("other"));
        let (spans, dropped) = take_spans(q);
        assert_eq!(
            spans.iter().map(|s| s.name).collect::<Vec<_>>(),
            vec!["a", "b"]
        );
        assert_eq!(dropped, 1);
        // Taking is destructive; the other query's buffer is untouched.
        assert_eq!(take_spans(q).0.len(), 0);
        assert_eq!(take_spans(q + 1).0.len(), 1);
        uninstall();
    }

    #[test]
    fn request_ctx_scopes_and_restores() {
        assert_eq!(request_ctx(), None);
        let ctx = RequestCtx {
            tenant: "alpha".into(),
            trace_id: "t-1".into(),
            admission_wait_ns: 5,
        };
        let inner = with_request_ctx(ctx.clone(), || {
            assert_eq!(request_ctx(), Some(ctx.clone()));
            with_request_ctx(RequestCtx::default(), request_ctx)
        });
        assert_eq!(inner, Some(RequestCtx::default()));
        assert_eq!(request_ctx(), None);
    }

    #[test]
    fn annotate_response_patches_retained_records_only() {
        let _g = test_lock();
        install(FlightConfig {
            capacity: 2,
            slow_capacity: 2,
            ..FlightConfig::default()
        });
        let mut tagged = record(1);
        tagged.tenant = "alpha".into();
        tagged.trace_id = "trace-1".into();
        submit(
            tagged,
            Some(SlowDetail {
                explain: "E".into(),
                reproducer: "R".into(),
            }),
        );
        submit(record(2), None);
        annotate_response(1, 512, 3_000);
        annotate_response(999, 1, 1); // unknown id: no-op
        let recent = recent();
        let one = recent.iter().find(|r| r.id == 1).unwrap();
        assert_eq!(one.resp_bytes, 512);
        assert_eq!(one.tenant, "alpha");
        assert_eq!(one.spans.last().unwrap().name, "serve.serialize");
        assert_eq!(one.spans.last().unwrap().duration_ns, 3_000);
        assert_eq!(recent.iter().find(|r| r.id == 2).unwrap().resp_bytes, 0);
        // The slow ring's copy is patched too.
        let slow = slow_recent();
        assert_eq!(slow[0].record.resp_bytes, 512);
        assert_eq!(slow[0].detail.explain, "E");
        // The JSON carries the wire fields (and omits empty ones).
        let v = crate::parse_json(&one.to_json(false).render()).unwrap();
        assert_eq!(v.get("resp_bytes").unwrap().as_u64(), Some(512));
        assert_eq!(v.get("tenant").unwrap().as_str(), Some("alpha"));
        assert_eq!(v.get("trace_id").unwrap().as_str(), Some("trace-1"));
        let v2 = crate::parse_json(&record(3).to_json(false).render()).unwrap();
        assert!(v2.get("tenant").is_none());
        assert!(v2.get("trace_id").is_none());
        assert_eq!(v2.get("admission_wait_ns").unwrap().as_u64(), Some(0));
        uninstall();
    }

    #[test]
    fn unparsable_slow_ms_falls_back_to_default() {
        assert_eq!(
            FlightConfig::from_slow_ms("250").slow_threshold_ns,
            Some(250_000_000)
        );
        assert_eq!(FlightConfig::from_slow_ms(" 0 ").slow_threshold_ns, Some(0));
        // The typo'd knob falls back (and warns once, in crate::env).
        assert_eq!(FlightConfig::from_slow_ms("25O").slow_threshold_ns, None);
        assert!(crate::env::has_warned("TREEQUERY_SLOW_MS"));
    }

    #[test]
    fn current_query_scopes_and_restores() {
        assert_eq!(current_query(), 0);
        let inner = with_current_query(42, || {
            assert_eq!(current_query(), 42);
            with_current_query(7, current_query)
        });
        assert_eq!(inner, 7);
        assert_eq!(current_query(), 0);
    }

    #[test]
    fn flight_json_round_trips() {
        let _g = test_lock();
        install(FlightConfig {
            capacity: 2,
            ..FlightConfig::default()
        });
        submit(record(1), None);
        submit(record(2), None);
        submit(record(3), None);
        let v = crate::parse_json(&recent_json().render()).unwrap();
        assert_eq!(v.get("submitted").unwrap().as_u64(), Some(3));
        assert_eq!(v.get("retained").unwrap().as_u64(), Some(2));
        assert_eq!(v.get("evicted").unwrap().as_u64(), Some(1));
        let rows = v.get("records").unwrap().as_arr().unwrap();
        assert_eq!(rows[0].get("id").unwrap().as_u64(), Some(2));
        assert_eq!(
            rows[1].get("strategy").unwrap().as_str(),
            Some("xpath/set-at-a-time")
        );
        uninstall();
    }
}
