//! Environment-knob parsing with one-shot warnings.
//!
//! The pipeline's tunables (`TREEQUERY_SLOW_MS`, `TREEQUERY_WORKERS`)
//! used to fall back *silently* when set to something unparsable — a
//! typo like `TREEQUERY_SLOW_MS=5O` quietly disabled the slow-query log.
//! Every knob now parses through this module: a bad value still falls
//! back (a misconfigured knob must never take the process down), but the
//! first time each variable fails to parse a warning goes to stderr.
//! One warning per variable per process — knobs are often re-read (e.g.
//! every `FlightConfig::from_env`), and a warning repeated per read is
//! noise nobody reads.

use std::collections::BTreeSet;
use std::sync::Mutex;

static WARNED: Mutex<BTreeSet<&'static str>> = Mutex::new(BTreeSet::new());

/// Records that `name` failed to parse and warns on stderr the first
/// time. Returns whether this call emitted the warning.
fn warn_once(name: &'static str, raw: &str, expected: &str) -> bool {
    let mut warned = WARNED.lock().unwrap_or_else(|p| p.into_inner());
    if !warned.insert(name) {
        return false;
    }
    eprintln!("treequery: ignoring {name}={raw:?}: expected {expected}");
    true
}

/// Whether a parse warning has already been emitted for `name`.
pub fn has_warned(name: &str) -> bool {
    WARNED
        .lock()
        .unwrap_or_else(|p| p.into_inner())
        .contains(name)
}

/// Parses a raw knob value as a non-negative integer; warns (once per
/// variable) and returns `None` on anything else. The testable seam
/// under [`u64_var`].
pub fn u64_value(name: &'static str, raw: &str) -> Option<u64> {
    match raw.trim().parse::<u64>() {
        Ok(v) => Some(v),
        Err(_) => {
            warn_once(name, raw, "a non-negative integer");
            None
        }
    }
}

/// Reads `name` from the environment as a non-negative integer. Unset
/// means `None` silently; set-but-unparsable warns once and falls back.
pub fn u64_var(name: &'static str) -> Option<u64> {
    u64_value(name, &std::env::var(name).ok()?)
}

/// Parses a raw knob value as a *positive* integer (worker counts);
/// warns (once per variable) and returns `None` on anything else —
/// including `0`, which would deadlock a worker pool.
pub fn positive_usize_value(name: &'static str, raw: &str) -> Option<usize> {
    match raw.trim().parse::<usize>() {
        Ok(v) if v >= 1 => Some(v),
        _ => {
            warn_once(name, raw, "a positive integer");
            None
        }
    }
}

/// Reads `name` from the environment as a positive integer.
pub fn positive_usize_var(name: &'static str) -> Option<usize> {
    positive_usize_value(name, &std::env::var(name).ok()?)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn valid_values_parse_without_warning() {
        assert_eq!(u64_value("TEST_ENV_OK", "42"), Some(42));
        assert_eq!(u64_value("TEST_ENV_OK", "  7  "), Some(7));
        assert_eq!(positive_usize_value("TEST_ENV_OK_USIZE", "3"), Some(3));
        assert!(!has_warned("TEST_ENV_OK"));
        assert!(!has_warned("TEST_ENV_OK_USIZE"));
    }

    #[test]
    fn unparsable_values_fall_back_and_warn_exactly_once() {
        assert_eq!(u64_value("TEST_ENV_BAD", "5O"), None);
        assert!(has_warned("TEST_ENV_BAD"));
        // The second failure is silent (warn_once returns false).
        assert!(!warn_once("TEST_ENV_BAD", "5O", "a non-negative integer"));
        // A later *valid* read still parses.
        assert_eq!(u64_value("TEST_ENV_BAD", "50"), Some(50));
    }

    #[test]
    fn negative_and_empty_values_are_rejected() {
        assert_eq!(u64_value("TEST_ENV_NEG", "-3"), None);
        assert_eq!(u64_value("TEST_ENV_EMPTY", ""), None);
        assert!(has_warned("TEST_ENV_NEG"));
        assert!(has_warned("TEST_ENV_EMPTY"));
    }

    #[test]
    fn zero_workers_is_not_a_valid_pool_size() {
        assert_eq!(positive_usize_value("TEST_ENV_ZERO", "0"), None);
        assert!(has_warned("TEST_ENV_ZERO"));
    }

    #[test]
    fn unset_variables_stay_silent() {
        assert_eq!(u64_var("TEST_ENV_DEFINITELY_UNSET"), None);
        assert_eq!(positive_usize_var("TEST_ENV_DEFINITELY_UNSET"), None);
        assert!(!has_warned("TEST_ENV_DEFINITELY_UNSET"));
    }
}
