//! A bounded ring buffer keeping the most recent events.

use std::collections::VecDeque;

/// A fixed-capacity log: pushing beyond capacity drops the oldest entry,
/// so memory stays bounded no matter how long a recorder stays installed.
#[derive(Clone, Debug)]
pub struct RingLog<T> {
    buf: VecDeque<T>,
    capacity: usize,
    dropped: u64,
}

impl<T> RingLog<T> {
    /// An empty log keeping at most `capacity` entries (`capacity` 0 keeps
    /// nothing but still counts pushes).
    pub fn new(capacity: usize) -> Self {
        RingLog {
            buf: VecDeque::with_capacity(capacity.min(1024)),
            capacity,
            dropped: 0,
        }
    }

    /// Appends an entry, evicting the oldest when full.
    pub fn push(&mut self, item: T) {
        if self.capacity == 0 {
            self.dropped += 1;
            return;
        }
        if self.buf.len() == self.capacity {
            self.buf.pop_front();
            self.dropped += 1;
        }
        self.buf.push_back(item);
    }

    /// Entries currently retained, oldest first.
    pub fn iter(&self) -> impl Iterator<Item = &T> {
        self.buf.iter()
    }

    /// Number of retained entries.
    pub fn len(&self) -> usize {
        self.buf.len()
    }

    /// Whether nothing is retained.
    pub fn is_empty(&self) -> bool {
        self.buf.is_empty()
    }

    /// The configured capacity.
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Number of entries evicted (or never retained) because of the bound.
    pub fn dropped(&self) -> u64 {
        self.dropped
    }

    /// Drains the retained entries, oldest first.
    pub fn drain(&mut self) -> Vec<T> {
        self.buf.drain(..).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn keeps_the_most_recent_entries() {
        let mut log = RingLog::new(3);
        for i in 0..10 {
            log.push(i);
        }
        assert_eq!(log.len(), 3);
        assert_eq!(log.dropped(), 7);
        assert_eq!(log.iter().copied().collect::<Vec<_>>(), vec![7, 8, 9]);
        assert_eq!(log.drain(), vec![7, 8, 9]);
        assert!(log.is_empty());
    }

    #[test]
    fn zero_capacity_counts_but_keeps_nothing() {
        let mut log = RingLog::new(0);
        log.push("a");
        log.push("b");
        assert!(log.is_empty());
        assert_eq!(log.dropped(), 2);
    }
}
