//! A tiny XML subset parser and serializer.
//!
//! The paper studies queries on "the bare tree structures of the parse
//! trees of XML documents" (Section 2) — element structure only. This
//! module parses exactly that: element tags (attributes are skipped),
//! comments, processing instructions and DOCTYPE declarations are ignored,
//! text content is ignored. It is not a general XML processor.

use crate::builder::TreeBuilder;
use crate::tree::{NodeId, Tree};

/// Error produced by [`parse_xml`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct XmlError {
    /// Byte offset of the error in the input.
    pub offset: usize,
    /// Human-readable description.
    pub message: String,
}

impl std::fmt::Display for XmlError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "xml parse error at byte {}: {}",
            self.offset, self.message
        )
    }
}

impl std::error::Error for XmlError {}

struct Scanner<'a> {
    input: &'a [u8],
    pos: usize,
}

impl<'a> Scanner<'a> {
    fn err<T>(&self, message: impl Into<String>) -> Result<T, XmlError> {
        Err(XmlError {
            offset: self.pos,
            message: message.into(),
        })
    }

    fn peek(&self) -> Option<u8> {
        self.input.get(self.pos).copied()
    }

    fn starts_with(&self, s: &str) -> bool {
        self.input[self.pos..].starts_with(s.as_bytes())
    }

    fn skip_until(&mut self, pat: &str) -> Result<(), XmlError> {
        match self.input[self.pos..]
            .windows(pat.len())
            .position(|w| w == pat.as_bytes())
        {
            Some(i) => {
                self.pos += i + pat.len();
                Ok(())
            }
            None => self.err(format!("expected '{pat}'")),
        }
    }

    fn name(&mut self) -> Result<&'a str, XmlError> {
        let start = self.pos;
        while matches!(
            self.peek(),
            Some(c) if c.is_ascii_alphanumeric() || matches!(c, b'_' | b'-' | b'.' | b':')
        ) {
            self.pos += 1;
        }
        if self.pos == start {
            return self.err("expected an element name");
        }
        std::str::from_utf8(&self.input[start..self.pos]).map_err(|_| XmlError {
            offset: start,
            message: "element name is not UTF-8".into(),
        })
    }

    /// Skips attributes up to (not including) `>` or `/>`, honoring quotes.
    fn skip_attributes(&mut self) -> Result<(), XmlError> {
        loop {
            match self.peek() {
                None => return self.err("unterminated tag"),
                Some(b'>') | Some(b'/') => return Ok(()),
                Some(b'"') | Some(b'\'') => {
                    let quote = self.peek().unwrap();
                    self.pos += 1;
                    while self.peek() != Some(quote) {
                        if self.peek().is_none() {
                            return self.err("unterminated attribute value");
                        }
                        self.pos += 1;
                    }
                    self.pos += 1;
                }
                Some(_) => self.pos += 1,
            }
        }
    }
}

/// Parses the element structure of an XML document into a [`Tree`].
pub fn parse_xml(input: &str) -> Result<Tree, XmlError> {
    let mut s = Scanner {
        input: input.as_bytes(),
        pos: 0,
    };
    let mut b = TreeBuilder::new();
    let mut open: Vec<(NodeId, String)> = Vec::new();
    let mut root_seen = false;

    loop {
        match s.peek() {
            None => break,
            Some(b'<') => {
                if s.starts_with("<!--") {
                    s.skip_until("-->")?;
                } else if s.starts_with("<?") {
                    s.skip_until("?>")?;
                } else if s.starts_with("<!") {
                    // DOCTYPE and friends; no internal-subset support.
                    s.skip_until(">")?;
                } else if s.starts_with("</") {
                    s.pos += 2;
                    let name = s.name()?.to_owned();
                    while s.peek().is_some_and(|c| c.is_ascii_whitespace()) {
                        s.pos += 1;
                    }
                    if s.peek() != Some(b'>') {
                        return s.err("expected '>' after closing tag name");
                    }
                    s.pos += 1;
                    match open.pop() {
                        Some((_, expected)) if expected == name => {}
                        Some((_, expected)) => {
                            return s.err(format!(
                                "mismatched close: </{name}>, expected </{expected}>"
                            ))
                        }
                        None => return s.err(format!("close tag </{name}> without open tag")),
                    }
                } else {
                    s.pos += 1;
                    let name = s.name()?.to_owned();
                    s.skip_attributes()?;
                    let self_closing = s.peek() == Some(b'/');
                    if self_closing {
                        s.pos += 1;
                    }
                    if s.peek() != Some(b'>') {
                        return s.err("expected '>'");
                    }
                    s.pos += 1;
                    let id = match open.last() {
                        Some(&(parent, _)) => b.child(parent, &name),
                        None => {
                            if root_seen {
                                return s.err("document has more than one root element");
                            }
                            root_seen = true;
                            b.root(&name)
                        }
                    };
                    if !self_closing {
                        open.push((id, name));
                    }
                }
            }
            // Text content and whitespace are ignored.
            Some(_) => s.pos += 1,
        }
    }
    if let Some((_, name)) = open.pop() {
        return s.err(format!("unclosed element <{name}>"));
    }
    if !root_seen {
        return s.err("no root element");
    }
    Ok(b.freeze())
}

/// Serializes the element structure of a tree as XML (no text content;
/// leaves become self-closing tags).
pub fn to_xml(t: &Tree) -> String {
    let mut out = String::with_capacity(t.len() * 8);
    enum Op {
        Open(NodeId),
        Close(NodeId),
    }
    let mut stack = vec![Op::Open(t.root())];
    while let Some(op) = stack.pop() {
        match op {
            Op::Close(v) => {
                out.push_str("</");
                out.push_str(t.label_name(v));
                out.push('>');
            }
            Op::Open(v) => {
                out.push('<');
                out.push_str(t.label_name(v));
                if t.is_leaf(v) {
                    out.push_str("/>");
                } else {
                    out.push('>');
                    stack.push(Op::Close(v));
                    let children: Vec<_> = t.children(v).collect();
                    for &c in children.iter().rev() {
                        stack.push(Op::Open(c));
                    }
                }
            }
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parse_simple_document() {
        let t = parse_xml("<a><b/><c><d/></c></a>").unwrap();
        assert_eq!(t.to_string(), "a(b c(d))");
    }

    #[test]
    fn attributes_text_comments_are_skipped() {
        let doc = r#"<?xml version="1.0"?>
            <!DOCTYPE a>
            <a x="1" y='<fake>'>
              hello <!-- <not-a-tag/> --> world
              <b attr="v/>still attr"/>
            </a>"#;
        let t = parse_xml(doc).unwrap();
        assert_eq!(t.to_string(), "a(b)");
    }

    #[test]
    fn round_trip() {
        let original = "<site><people><person/><person/></people><regions/></site>";
        let t = parse_xml(original).unwrap();
        assert_eq!(to_xml(&t), original);
        let t2 = parse_xml(&to_xml(&t)).unwrap();
        assert_eq!(t.to_string(), t2.to_string());
    }

    #[test]
    fn errors() {
        assert!(parse_xml("").is_err());
        assert!(parse_xml("<a>").is_err());
        assert!(parse_xml("<a></b>").is_err());
        assert!(parse_xml("</a>").is_err());
        assert!(parse_xml("<a/><b/>").is_err());
        assert!(parse_xml("<a foo=>").is_err()); // unterminated element
    }

    #[test]
    fn pre_order_matches_tag_order() {
        // Section 2: <pre is the order of opening tags.
        let t = parse_xml("<a><b><c/></b><d/></a>").unwrap();
        let labels: Vec<_> = t.pre_order().map(|v| t.label_name(v).to_owned()).collect();
        assert_eq!(labels, ["a", "b", "c", "d"]);
        // and <post is the order of closing tags.
        let labels: Vec<_> = t.post_order().map(|v| t.label_name(v).to_owned()).collect();
        assert_eq!(labels, ["c", "b", "d", "a"]);
    }
}
