//! Interned node labels.
//!
//! The paper works over a node labeling alphabet Σ that is *not* assumed to
//! be fixed; labels are interned to small integers so that label tests are
//! integer comparisons and per-label node lists can be indexed densely.

use std::collections::HashMap;
use std::fmt;

/// An interned label. `Symbol(i)` is an index into the owning
/// [`LabelInterner`]'s string table.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct Symbol(pub u32);

impl Symbol {
    /// The dense index of this symbol.
    #[inline]
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

impl fmt::Debug for Symbol {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "Symbol({})", self.0)
    }
}

/// A string interner for node labels.
#[derive(Clone, Default)]
pub struct LabelInterner {
    by_name: HashMap<String, Symbol>,
    names: Vec<String>,
}

impl LabelInterner {
    /// Creates an empty interner.
    pub fn new() -> Self {
        Self::default()
    }

    /// Interns `name`, returning its symbol (allocating one if new).
    pub fn intern(&mut self, name: &str) -> Symbol {
        if let Some(&sym) = self.by_name.get(name) {
            return sym;
        }
        let sym =
            Symbol(u32::try_from(self.names.len()).expect("more than u32::MAX distinct labels"));
        self.names.push(name.to_owned());
        self.by_name.insert(name.to_owned(), sym);
        sym
    }

    /// Looks up an already-interned label without allocating.
    pub fn lookup(&self, name: &str) -> Option<Symbol> {
        self.by_name.get(name).copied()
    }

    /// The label string of `sym`.
    ///
    /// # Panics
    /// Panics if `sym` was not produced by this interner.
    pub fn name(&self, sym: Symbol) -> &str {
        &self.names[sym.index()]
    }

    /// Number of distinct labels interned so far.
    pub fn len(&self) -> usize {
        self.names.len()
    }

    /// Whether no label has been interned yet.
    pub fn is_empty(&self) -> bool {
        self.names.is_empty()
    }

    /// Iterates over all `(Symbol, name)` pairs in interning order.
    pub fn iter(&self) -> impl Iterator<Item = (Symbol, &str)> {
        self.names
            .iter()
            .enumerate()
            .map(|(i, n)| (Symbol(i as u32), n.as_str()))
    }
}

impl fmt::Debug for LabelInterner {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_list().entries(self.names.iter()).finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn intern_is_idempotent() {
        let mut i = LabelInterner::new();
        let a = i.intern("a");
        let b = i.intern("b");
        assert_ne!(a, b);
        assert_eq!(i.intern("a"), a);
        assert_eq!(i.len(), 2);
    }

    #[test]
    fn lookup_does_not_allocate() {
        let mut i = LabelInterner::new();
        assert!(i.lookup("a").is_none());
        let a = i.intern("a");
        assert_eq!(i.lookup("a"), Some(a));
        assert_eq!(i.len(), 1);
    }

    #[test]
    fn name_round_trips() {
        let mut i = LabelInterner::new();
        let s = i.intern("descendant");
        assert_eq!(i.name(s), "descendant");
    }

    #[test]
    fn iter_yields_in_order() {
        let mut i = LabelInterner::new();
        i.intern("x");
        i.intern("y");
        let got: Vec<_> = i.iter().map(|(s, n)| (s.0, n.to_owned())).collect();
        assert_eq!(got, vec![(0, "x".to_owned()), (1, "y".to_owned())]);
    }
}
