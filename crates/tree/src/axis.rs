//! The axis relations of Section 2 and their whole-set images.
//!
//! Every axis supports three access paths:
//!
//! * [`Axis::holds`] — an O(1) membership test via pre/post/sibling
//!   arithmetic (the "labeling scheme" view of Section 2),
//! * [`Axis::successors`] — enumeration of the successor set of one node
//!   (used by naive baselines and result enumeration),
//! * [`Axis::image`] / [`Axis::preimage`] — the image of a whole
//!   [`NodeSet`] in **O(n)** via order sweeps, never materializing the
//!   (possibly quadratic) transitive relations. These sweeps are the
//!   primitive behind the linear-time full reducer (Section 6), the
//!   X-property evaluator (Theorem 6.5) and the Core XPath evaluator.

use crate::nodeset::NodeSet;
use crate::tree::{NodeId, Tree};

/// A binary tree navigation relation ("axis", Section 2).
///
/// Paper names: `Descendant` is `Child⁺`, `DescendantOrSelf` is `Child*`,
/// `FollowingSibling` is `NextSibling⁺`, `FollowingSiblingOrSelf` is
/// `NextSibling*`.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum Axis {
    /// `Self`: {(x, x)}.
    SelfAxis,
    /// `Child(x, y)`: y is a child of x.
    Child,
    /// `Child⁺` / `Descendant`.
    Descendant,
    /// `Child*` / `Descendant-or-self`.
    DescendantOrSelf,
    /// `NextSibling(x, y)`: y is the sibling immediately right of x.
    NextSibling,
    /// `NextSibling⁺` / `Following-Sibling`.
    FollowingSibling,
    /// `NextSibling*`.
    FollowingSiblingOrSelf,
    /// `Following` (Section 2).
    Following,
    /// Inverse of `Child`.
    Parent,
    /// Inverse of `Descendant`.
    Ancestor,
    /// Inverse of `DescendantOrSelf`.
    AncestorOrSelf,
    /// Inverse of `NextSibling`.
    PrevSibling,
    /// Inverse of `FollowingSibling`.
    PrecedingSibling,
    /// Inverse of `FollowingSiblingOrSelf`.
    PrecedingSiblingOrSelf,
    /// Inverse of `Following`.
    Preceding,
}

impl Axis {
    /// All fifteen axes.
    pub const ALL: [Axis; 15] = [
        Axis::SelfAxis,
        Axis::Child,
        Axis::Descendant,
        Axis::DescendantOrSelf,
        Axis::NextSibling,
        Axis::FollowingSibling,
        Axis::FollowingSiblingOrSelf,
        Axis::Following,
        Axis::Parent,
        Axis::Ancestor,
        Axis::AncestorOrSelf,
        Axis::PrevSibling,
        Axis::PrecedingSibling,
        Axis::PrecedingSiblingOrSelf,
        Axis::Preceding,
    ];

    /// The forward axes (Section 5: a *forward* query uses only these).
    pub const FORWARD: [Axis; 8] = [
        Axis::SelfAxis,
        Axis::Child,
        Axis::Descendant,
        Axis::DescendantOrSelf,
        Axis::NextSibling,
        Axis::FollowingSibling,
        Axis::FollowingSiblingOrSelf,
        Axis::Following,
    ];

    /// Whether this is a forward axis (successors lie at larger `<pre`
    /// positions, except for `SelfAxis` which is neutral).
    pub fn is_forward(self) -> bool {
        matches!(
            self,
            Axis::SelfAxis
                | Axis::Child
                | Axis::Descendant
                | Axis::DescendantOrSelf
                | Axis::NextSibling
                | Axis::FollowingSibling
                | Axis::FollowingSiblingOrSelf
                | Axis::Following
        )
    }

    /// Whether the axis is reflexive-transitive (`R*`) or reflexive.
    pub fn is_reflexive(self) -> bool {
        matches!(
            self,
            Axis::SelfAxis
                | Axis::DescendantOrSelf
                | Axis::AncestorOrSelf
                | Axis::FollowingSiblingOrSelf
                | Axis::PrecedingSiblingOrSelf
        )
    }

    /// The inverse axis (`R⁻¹`).
    pub fn inverse(self) -> Axis {
        match self {
            Axis::SelfAxis => Axis::SelfAxis,
            Axis::Child => Axis::Parent,
            Axis::Descendant => Axis::Ancestor,
            Axis::DescendantOrSelf => Axis::AncestorOrSelf,
            Axis::NextSibling => Axis::PrevSibling,
            Axis::FollowingSibling => Axis::PrecedingSibling,
            Axis::FollowingSiblingOrSelf => Axis::PrecedingSiblingOrSelf,
            Axis::Following => Axis::Preceding,
            Axis::Parent => Axis::Child,
            Axis::Ancestor => Axis::Descendant,
            Axis::AncestorOrSelf => Axis::DescendantOrSelf,
            Axis::PrevSibling => Axis::NextSibling,
            Axis::PrecedingSibling => Axis::FollowingSibling,
            Axis::PrecedingSiblingOrSelf => Axis::FollowingSiblingOrSelf,
            Axis::Preceding => Axis::Following,
        }
    }

    /// The display name (paper notation).
    pub fn name(self) -> &'static str {
        match self {
            Axis::SelfAxis => "Self",
            Axis::Child => "Child",
            Axis::Descendant => "Child+",
            Axis::DescendantOrSelf => "Child*",
            Axis::NextSibling => "NextSibling",
            Axis::FollowingSibling => "NextSibling+",
            Axis::FollowingSiblingOrSelf => "NextSibling*",
            Axis::Following => "Following",
            Axis::Parent => "Parent",
            Axis::Ancestor => "Ancestor",
            Axis::AncestorOrSelf => "Ancestor-or-self",
            Axis::PrevSibling => "PrevSibling",
            Axis::PrecedingSibling => "Preceding-Sibling",
            Axis::PrecedingSiblingOrSelf => "Preceding-Sibling-or-self",
            Axis::Preceding => "Preceding",
        }
    }

    /// Parses an axis name; both the paper's relational notation
    /// (`Child+`, `NextSibling*`) and the W3C axis names (`descendant`,
    /// `following-sibling`) are accepted, case-insensitively.
    pub fn parse(name: &str) -> Option<Axis> {
        let lower = name.to_ascii_lowercase();
        Some(match lower.as_str() {
            "self" => Axis::SelfAxis,
            "child" => Axis::Child,
            "child+" | "descendant" => Axis::Descendant,
            "child*" | "descendant-or-self" => Axis::DescendantOrSelf,
            "nextsibling" | "next-sibling" => Axis::NextSibling,
            "nextsibling+" | "following-sibling" | "followingsibling" => Axis::FollowingSibling,
            "nextsibling*" | "following-sibling-or-self" => Axis::FollowingSiblingOrSelf,
            "following" => Axis::Following,
            "parent" | "child-1" => Axis::Parent,
            "ancestor" | "child+-1" => Axis::Ancestor,
            "ancestor-or-self" | "child*-1" => Axis::AncestorOrSelf,
            "prevsibling" | "previous-sibling" | "nextsibling-1" => Axis::PrevSibling,
            "preceding-sibling" | "precedingsibling" | "nextsibling+-1" => Axis::PrecedingSibling,
            "preceding-sibling-or-self" | "nextsibling*-1" => Axis::PrecedingSiblingOrSelf,
            "preceding" | "following-1" => Axis::Preceding,
            _ => return None,
        })
    }

    /// O(1) membership test: does `(x, y)` belong to the axis relation?
    pub fn holds(self, t: &Tree, x: NodeId, y: NodeId) -> bool {
        match self {
            Axis::SelfAxis => x == y,
            Axis::Child => t.parent(y) == Some(x),
            Axis::Descendant => t.is_ancestor(x, y),
            Axis::DescendantOrSelf => x == y || t.is_ancestor(x, y),
            Axis::NextSibling => t.next_sibling(x) == Some(y),
            Axis::FollowingSibling => {
                t.parent(x).is_some()
                    && t.parent(x) == t.parent(y)
                    && t.sibling_index(x) < t.sibling_index(y)
            }
            Axis::FollowingSiblingOrSelf => x == y || Axis::FollowingSibling.holds(t, x, y),
            Axis::Following => t.is_following(x, y),
            _ => self.inverse().holds(t, y, x),
        }
    }

    /// Enumerates the successors of `x` under this axis. Allocation-heavy;
    /// intended for baselines, enumeration and tests — the evaluators use
    /// [`Axis::image`].
    pub fn successors(self, t: &Tree, x: NodeId) -> Vec<NodeId> {
        match self {
            Axis::SelfAxis => vec![x],
            Axis::Child => t.children(x).collect(),
            Axis::Descendant => (t.pre(x) + 1..=t.pre_end(x))
                .map(|r| t.node_at_pre(r))
                .collect(),
            Axis::DescendantOrSelf => (t.pre(x)..=t.pre_end(x))
                .map(|r| t.node_at_pre(r))
                .collect(),
            Axis::NextSibling => t.next_sibling(x).into_iter().collect(),
            Axis::FollowingSibling => {
                let mut out = Vec::new();
                let mut cur = t.next_sibling(x);
                while let Some(v) = cur {
                    out.push(v);
                    cur = t.next_sibling(v);
                }
                out
            }
            Axis::FollowingSiblingOrSelf => {
                let mut out = vec![x];
                out.extend(Axis::FollowingSibling.successors(t, x));
                out
            }
            Axis::Following => (t.pre_end(x) + 1..t.len() as u32)
                .map(|r| t.node_at_pre(r))
                .collect(),
            Axis::Parent => t.parent(x).into_iter().collect(),
            Axis::Ancestor => t.ancestors(x).collect(),
            Axis::AncestorOrSelf => {
                let mut out = vec![x];
                out.extend(t.ancestors(x));
                out
            }
            Axis::PrevSibling => t.prev_sibling(x).into_iter().collect(),
            Axis::PrecedingSibling => {
                let mut out = Vec::new();
                let mut cur = t.prev_sibling(x);
                while let Some(v) = cur {
                    out.push(v);
                    cur = t.prev_sibling(v);
                }
                out
            }
            Axis::PrecedingSiblingOrSelf => {
                let mut out = vec![x];
                out.extend(Axis::PrecedingSibling.successors(t, x));
                out
            }
            Axis::Preceding => (0..t.pre(x))
                .map(|r| t.node_at_pre(r))
                .filter(|&y| t.post(y) < t.post(x))
                .collect(),
        }
    }

    /// The image `{ y | ∃ x ∈ s: Axis(x, y) }`, computed in O(n) by order
    /// sweeps (n = number of tree nodes). This is the workhorse of all the
    /// linear-time evaluators. The returned set is drawn from the
    /// thread-local [`crate::scratch`] pool; callers on the hot path hand
    /// it back with [`crate::scratch::put_set`] once consumed.
    pub fn image(self, t: &Tree, s: &NodeSet) -> NodeSet {
        let mut out = crate::scratch::take_set(t.len());
        self.image_into(t, s, &mut out);
        out
    }

    /// Writes the image of `s` into `out` (cleared first; same universe as
    /// the tree). Internal working memory comes from the thread-local
    /// scratch pool, so a warmed-up call performs no allocations.
    pub fn image_into(self, t: &Tree, s: &NodeSet, out: &mut NodeSet) {
        let n = t.len();
        debug_assert_eq!(s.universe(), n);
        debug_assert_eq!(out.universe(), n);
        out.clear();
        match self {
            Axis::SelfAxis => out.union_with(s),
            Axis::Child => {
                for x in s {
                    for c in t.children_unchecked(x) {
                        out.insert(c);
                    }
                }
            }
            Axis::Parent => {
                for x in s {
                    let p = t.parent_raw_unchecked(x);
                    if p != crate::tree::NONE {
                        out.insert(NodeId(p));
                    }
                }
            }
            Axis::NextSibling => {
                for x in s {
                    let y = t.next_sibling_raw_unchecked(x);
                    if y != crate::tree::NONE {
                        out.insert(NodeId(y));
                    }
                }
            }
            Axis::PrevSibling => {
                for x in s {
                    let y = t.prev_sibling_raw_unchecked(x);
                    if y != crate::tree::NONE {
                        out.insert(NodeId(y));
                    }
                }
            }
            Axis::Descendant | Axis::DescendantOrSelf => {
                // y has a marked proper ancestor iff some marked x seen
                // earlier in pre-order has pre_end(x) ≥ pre(y).
                let mut max_end: i64 = -1;
                for rank in 0..n as u32 {
                    let v = t.node_at_pre_unchecked(rank);
                    if i64::from(rank) <= max_end {
                        out.insert(v);
                    }
                    if s.contains(v) {
                        max_end = max_end.max(i64::from(t.pre_end_unchecked(v)));
                    }
                }
                if self == Axis::DescendantOrSelf {
                    out.union_with(s);
                }
            }
            Axis::Ancestor | Axis::AncestorOrSelf => {
                // y has a marked proper descendant iff the count of marked
                // nodes with pre rank in (pre(y), pre_end(y)] is positive.
                let mut marked_prefix = crate::scratch::take_u32s();
                marked_prefix_counts_into(t, s, &mut marked_prefix);
                for v in t.nodes() {
                    let lo = t.pre_unchecked(v) as usize + 1;
                    let hi = t.pre_end_unchecked(v) as usize + 1;
                    if marked_prefix[hi] > marked_prefix[lo] {
                        out.insert(v);
                    }
                }
                crate::scratch::put_u32s(marked_prefix);
                if self == Axis::AncestorOrSelf {
                    out.union_with(s);
                }
            }
            Axis::FollowingSibling | Axis::FollowingSiblingOrSelf => {
                let mut swept = crate::scratch::take_set(n);
                sweep_following_siblings(t, s, out, &mut swept);
                crate::scratch::put_set(swept);
                if self == Axis::FollowingSiblingOrSelf {
                    out.union_with(s);
                }
            }
            Axis::PrecedingSibling | Axis::PrecedingSiblingOrSelf => {
                let mut swept = crate::scratch::take_set(n);
                sweep_preceding_siblings(t, s, out, &mut swept);
                crate::scratch::put_set(swept);
                if self == Axis::PrecedingSiblingOrSelf {
                    out.union_with(s);
                }
            }
            Axis::Following => {
                // y follows some marked x iff the minimum post rank among
                // marked nodes seen strictly earlier in pre-order is < post(y).
                let mut min_post = u32::MAX;
                for rank in 0..n as u32 {
                    let v = t.node_at_pre_unchecked(rank);
                    if min_post < t.post_unchecked(v) {
                        out.insert(v);
                    }
                    if s.contains(v) {
                        min_post = min_post.min(t.post_unchecked(v));
                    }
                }
            }
            Axis::Preceding => {
                // y precedes some marked x iff the maximum post rank among
                // marked nodes seen strictly later in pre-order is > post(y).
                let mut max_post: i64 = -1;
                for rank in (0..n as u32).rev() {
                    let v = t.node_at_pre_unchecked(rank);
                    if max_post > i64::from(t.post_unchecked(v)) {
                        out.insert(v);
                    }
                    if s.contains(v) {
                        max_post = max_post.max(i64::from(t.post_unchecked(v)));
                    }
                }
            }
        }
    }

    /// The preimage `{ x | ∃ y ∈ s: Axis(x, y) }` — the image under the
    /// inverse axis. O(n). Pooled like [`Axis::image`].
    pub fn preimage(self, t: &Tree, s: &NodeSet) -> NodeSet {
        self.inverse().image(t, s)
    }

    /// Writes the preimage of `s` into `out`; see [`Axis::image_into`].
    pub fn preimage_into(self, t: &Tree, s: &NodeSet, out: &mut NodeSet) {
        self.inverse().image_into(t, s, out);
    }
}

/// Marks every following sibling of a marked child, one parent at a time
/// (`swept` dedups parents already handled).
pub(crate) fn sweep_following_siblings(
    t: &Tree,
    s: &NodeSet,
    out: &mut NodeSet,
    swept: &mut NodeSet,
) {
    for x in s {
        let p = t.parent_raw_unchecked(x);
        if p == crate::tree::NONE || !swept.insert(NodeId(p)) {
            continue;
        }
        let mut flag = false;
        for c in t.children_unchecked(NodeId(p)) {
            if flag {
                out.insert(c);
            }
            if s.contains(c) {
                flag = true;
            }
        }
    }
}

/// Mirror image of [`sweep_following_siblings`], sweeping right-to-left
/// through the prev-sibling links from the last child.
pub(crate) fn sweep_preceding_siblings(
    t: &Tree,
    s: &NodeSet,
    out: &mut NodeSet,
    swept: &mut NodeSet,
) {
    for x in s {
        let p = t.parent_raw_unchecked(x);
        if p == crate::tree::NONE || !swept.insert(NodeId(p)) {
            continue;
        }
        let mut flag = false;
        let mut cur = t.last_child_raw_unchecked(NodeId(p));
        while cur != crate::tree::NONE {
            let c = NodeId(cur);
            if flag {
                out.insert(c);
            }
            if s.contains(c) {
                flag = true;
            }
            cur = t.prev_sibling_raw_unchecked(c);
        }
    }
}

/// `marked_prefix_counts_into(t, s, prefix)`: `prefix[i]` = number of marked
/// nodes among the first `i` pre ranks. Reuses the provided buffer.
fn marked_prefix_counts_into(t: &Tree, s: &NodeSet, prefix: &mut Vec<u32>) {
    let n = t.len();
    prefix.clear();
    prefix.resize(n + 1, 0);
    for rank in 0..n as u32 {
        let v = t.node_at_pre_unchecked(rank);
        prefix[rank as usize + 1] = prefix[rank as usize] + u32::from(s.contains(v));
    }
}

impl std::fmt::Display for Axis {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.name())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::term::parse_term;

    fn fixture() -> Tree {
        parse_term("a(b(c d(e) f) g(h(i j) k) l)").unwrap()
    }

    /// `successors` must agree with `holds` on every pair.
    #[test]
    fn successors_agree_with_holds() {
        let t = fixture();
        for axis in Axis::ALL {
            for x in t.nodes() {
                let succ = axis.successors(&t, x);
                for y in t.nodes() {
                    assert_eq!(
                        succ.contains(&y),
                        axis.holds(&t, x, y),
                        "{axis} ({x:?},{y:?})"
                    );
                }
            }
        }
    }

    /// `image` must equal the union of per-node successor sets.
    #[test]
    fn image_agrees_with_successors() {
        let t = fixture();
        let n = t.len();
        // Try several source sets including empty, full, singletons.
        let mut sources = vec![NodeSet::empty(n), NodeSet::full(n)];
        for v in t.nodes() {
            sources.push(NodeSet::singleton(n, v));
        }
        sources.push(NodeSet::from_iter(n, t.nodes().filter(|v| v.0 % 3 == 0)));
        for axis in Axis::ALL {
            for s in &sources {
                let fast = axis.image(&t, s);
                let mut naive = NodeSet::empty(n);
                for x in s {
                    for y in axis.successors(&t, x) {
                        naive.insert(y);
                    }
                }
                assert_eq!(fast, naive, "{axis} image of {s:?}");
            }
        }
    }

    #[test]
    fn preimage_is_inverse_image() {
        let t = fixture();
        let n = t.len();
        let s = NodeSet::from_iter(n, t.nodes().filter(|v| v.0 % 2 == 0));
        for axis in Axis::ALL {
            let pre = axis.preimage(&t, &s);
            let mut naive = NodeSet::empty(n);
            for x in t.nodes() {
                if axis.successors(&t, x).iter().any(|y| s.contains(*y)) {
                    naive.insert(x);
                }
            }
            assert_eq!(pre, naive, "{axis} preimage");
        }
    }

    #[test]
    fn inverse_round_trips() {
        for axis in Axis::ALL {
            assert_eq!(axis.inverse().inverse(), axis);
        }
    }

    #[test]
    fn forward_axes_point_forward_in_pre_order() {
        let t = fixture();
        for axis in Axis::FORWARD {
            if axis == Axis::SelfAxis {
                continue;
            }
            for x in t.nodes() {
                for y in axis.successors(&t, x) {
                    if axis.is_reflexive() && x == y {
                        continue;
                    }
                    assert!(t.pre(x) < t.pre(y), "{axis} ({x:?},{y:?})");
                }
            }
        }
    }

    #[test]
    fn parse_names() {
        assert_eq!(Axis::parse("Child+"), Some(Axis::Descendant));
        assert_eq!(Axis::parse("descendant"), Some(Axis::Descendant));
        assert_eq!(
            Axis::parse("NextSibling*"),
            Some(Axis::FollowingSiblingOrSelf)
        );
        assert_eq!(
            Axis::parse("following-sibling"),
            Some(Axis::FollowingSibling)
        );
        assert_eq!(Axis::parse("ancestor-or-self"), Some(Axis::AncestorOrSelf));
        assert_eq!(Axis::parse("bogus"), None);
        for axis in Axis::ALL {
            assert_eq!(Axis::parse(axis.name()), Some(axis), "{axis}");
        }
    }

    #[test]
    fn following_partitions_with_descendant_ancestor_preceding() {
        // For any two distinct nodes exactly one of Ancestor, Descendant,
        // Following, Preceding holds.
        let t = fixture();
        for x in t.nodes() {
            for y in t.nodes() {
                if x == y {
                    continue;
                }
                let cnt = [
                    Axis::Ancestor,
                    Axis::Descendant,
                    Axis::Following,
                    Axis::Preceding,
                ]
                .iter()
                .filter(|a| a.holds(&t, x, y))
                .count();
                assert_eq!(cnt, 1, "({x:?},{y:?})");
            }
        }
    }
}
