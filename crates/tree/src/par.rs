//! Pre-order range partitioning of the axis sweeps.
//!
//! Every O(n) sweep behind [`Axis::image`] is a left-to-right (or
//! right-to-left) scan of the pre-order ranks carrying a tiny amount of
//! state: the maximum `pre_end` of a marked node seen so far
//! (`Descendant`), the minimum (`Following`) or maximum (`Preceding`)
//! post rank, or nothing at all for the local axes. All of these carries
//! are folds of an **associative** operator (max / min), so a sweep over
//! `0..n` splits into independent sweeps over pre-order ranges:
//!
//! 1. each range computes its own carry contribution in parallel
//!    ([`Axis::sweep_carry`]),
//! 2. a cheap sequential prefix (forward axes) or suffix (`Preceding`)
//!    fold combines them into the carry *entering* each range
//!    ([`incoming_carries`]),
//! 3. each range then computes its slice of the image in parallel
//!    ([`Axis::image_range`]), and the slices are ORed together.
//!
//! The OR-merge is deterministic: each output slice is a [`NodeSet`]
//! bitset, and bitwise OR is commutative, so the union over ranges is
//! byte-identical to the sequential [`Axis::image`] regardless of which
//! worker finished first. The per-range/whole-sweep agreement is
//! property-tested over all fifteen axes in this module.
//!
//! Axes without carries partition the *marked input* by pre rank instead
//! of the output: `Ancestor` walks parent chains from in-range marked
//! nodes (stopping at the first ancestor already emitted, so each chunk
//! does O(range + distinct ancestors) work), and the sibling axes sweep
//! the children of each in-range marked node's parent with the *global*
//! source set, deduplicating parents chunk-locally — every parent with a
//! marked child is swept by at least one chunk, and each sweep
//! reproduces the sequential per-parent output exactly.

use std::ops::Range;

use crate::axis::Axis;
use crate::nodeset::NodeSet;
use crate::tree::Tree;

/// Splits `0..n` (pre-order ranks) into at most `chunks` contiguous,
/// non-empty, balanced ranges covering all of `0..n`. Returns fewer
/// ranges when `n < chunks`, and none when `n == 0`.
pub fn pre_ranges(n: usize, chunks: usize) -> Vec<Range<u32>> {
    if n == 0 {
        return Vec::new();
    }
    let chunks = chunks.clamp(1, n);
    let base = n / chunks;
    let extra = n % chunks;
    let mut out = Vec::with_capacity(chunks);
    let mut start = 0usize;
    for i in 0..chunks {
        let len = base + usize::from(i < extra);
        out.push(start as u32..(start + len) as u32);
        start += len;
    }
    debug_assert_eq!(start, n);
    out
}

/// Number of ranges [`pre_ranges`] would return: `min(chunks, n)` (zero
/// for the empty tree). Pairs with [`pre_range_at`] for callers that want
/// the partition without materializing a `Vec`.
pub fn pre_range_count(n: usize, chunks: usize) -> usize {
    if n == 0 {
        0
    } else {
        chunks.clamp(1, n)
    }
}

/// The `i`-th range of the [`pre_ranges`] partition, computed
/// arithmetically (allocation-free). `i` must be below
/// [`pre_range_count`].
pub fn pre_range_at(n: usize, chunks: usize, i: usize) -> Range<u32> {
    let k = pre_range_count(n, chunks);
    debug_assert!(i < k);
    let base = n / k;
    let extra = n % k;
    let start = i * base + i.min(extra);
    let len = base + usize::from(i < extra);
    start as u32..(start + len) as u32
}

/// The direction the sweep state flows between pre-order ranges.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum CarryFlow {
    /// No inter-range state: the axis partitions its marked input.
    None,
    /// State flows left→right in pre order (`Descendant`, `Following`).
    Forward,
    /// State flows right→left in pre order (`Preceding`).
    Backward,
}

/// The associative sweep state carried between pre-order ranges.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum SweepCarry {
    /// For axes with [`CarryFlow::None`].
    None,
    /// Maximum `pre_end` of a marked node (identity −1): `Descendant`,
    /// `DescendantOrSelf`.
    MaxEnd(i64),
    /// Minimum post rank of a marked node (identity `u32::MAX`):
    /// `Following`.
    MinPost(u32),
    /// Maximum post rank of a marked node (identity −1): `Preceding`.
    MaxPost(i64),
}

impl SweepCarry {
    /// Combines two carries of the same kind (associative; identity is
    /// [`Axis::carry_identity`]). For [`CarryFlow::Forward`] axes `self`
    /// is the earlier range, for [`CarryFlow::Backward`] the later one —
    /// max/min are commutative so the distinction is immaterial.
    pub fn combine(self, other: SweepCarry) -> SweepCarry {
        match (self, other) {
            (SweepCarry::None, SweepCarry::None) => SweepCarry::None,
            (SweepCarry::MaxEnd(a), SweepCarry::MaxEnd(b)) => SweepCarry::MaxEnd(a.max(b)),
            (SweepCarry::MinPost(a), SweepCarry::MinPost(b)) => SweepCarry::MinPost(a.min(b)),
            (SweepCarry::MaxPost(a), SweepCarry::MaxPost(b)) => SweepCarry::MaxPost(a.max(b)),
            (a, b) => panic!("combined mismatched sweep carries {a:?} and {b:?}"),
        }
    }
}

/// The carry entering each range, given every range's own contribution
/// (in pre-order range order). A prefix fold for forward axes, a suffix
/// fold for backward ones, all identities for carry-free axes.
pub fn incoming_carries(axis: Axis, chunk_carries: &[SweepCarry]) -> Vec<SweepCarry> {
    let k = chunk_carries.len();
    let mut out = vec![axis.carry_identity(); k];
    match axis.carry_flow() {
        CarryFlow::None => {}
        CarryFlow::Forward => {
            let mut acc = axis.carry_identity();
            for i in 0..k {
                out[i] = acc;
                acc = acc.combine(chunk_carries[i]);
            }
        }
        CarryFlow::Backward => {
            let mut acc = axis.carry_identity();
            for i in (0..k).rev() {
                out[i] = acc;
                acc = acc.combine(chunk_carries[i]);
            }
        }
    }
    out
}

/// In-place variant of [`incoming_carries`]: rewrites each range's own
/// contribution into the carry *entering* that range, without allocating.
pub fn incoming_carries_in_place(axis: Axis, carries: &mut [SweepCarry]) {
    match axis.carry_flow() {
        CarryFlow::None => {
            for c in carries.iter_mut() {
                *c = axis.carry_identity();
            }
        }
        CarryFlow::Forward => {
            let mut acc = axis.carry_identity();
            for c in carries.iter_mut() {
                let own = *c;
                *c = acc;
                acc = acc.combine(own);
            }
        }
        CarryFlow::Backward => {
            let mut acc = axis.carry_identity();
            for c in carries.iter_mut().rev() {
                let own = *c;
                *c = acc;
                acc = acc.combine(own);
            }
        }
    }
}

impl Axis {
    /// How this axis's sweep state flows between pre-order ranges.
    pub fn carry_flow(self) -> CarryFlow {
        match self {
            Axis::Descendant | Axis::DescendantOrSelf | Axis::Following => CarryFlow::Forward,
            Axis::Preceding => CarryFlow::Backward,
            _ => CarryFlow::None,
        }
    }

    /// The identity element of this axis's carry (the carry entering the
    /// first range swept).
    pub fn carry_identity(self) -> SweepCarry {
        match self {
            Axis::Descendant | Axis::DescendantOrSelf => SweepCarry::MaxEnd(-1),
            Axis::Following => SweepCarry::MinPost(u32::MAX),
            Axis::Preceding => SweepCarry::MaxPost(-1),
            _ => SweepCarry::None,
        }
    }

    /// The carry *contribution* of one pre-order range: the fold of the
    /// sweep update over the marked nodes whose pre rank lies in
    /// `range`. Ranges can compute this independently (phase 1 of the
    /// parallel sweep).
    pub fn sweep_carry(self, t: &Tree, s: &NodeSet, range: Range<u32>) -> SweepCarry {
        debug_assert!(range.end as usize <= t.len());
        match self {
            Axis::Descendant | Axis::DescendantOrSelf => {
                let mut max_end: i64 = -1;
                for rank in range {
                    let v = t.node_at_pre(rank);
                    if s.contains(v) {
                        max_end = max_end.max(i64::from(t.pre_end(v)));
                    }
                }
                SweepCarry::MaxEnd(max_end)
            }
            Axis::Following => {
                let mut min_post = u32::MAX;
                for rank in range {
                    let v = t.node_at_pre(rank);
                    if s.contains(v) {
                        min_post = min_post.min(t.post(v));
                    }
                }
                SweepCarry::MinPost(min_post)
            }
            Axis::Preceding => {
                let mut max_post: i64 = -1;
                for rank in range {
                    let v = t.node_at_pre(rank);
                    if s.contains(v) {
                        max_post = max_post.max(i64::from(t.post(v)));
                    }
                }
                SweepCarry::MaxPost(max_post)
            }
            _ => SweepCarry::None,
        }
    }

    /// One range's slice of [`Axis::image`]: with the correct incoming
    /// `carry` (from [`incoming_carries`]), the bitwise OR of the slices
    /// over a partition of `0..n` equals the whole image (phase 2 of the
    /// parallel sweep; property-tested below for every axis).
    ///
    /// Carry axes slice the *output* by pre rank; carry-free axes slice
    /// the marked *input* by pre rank and may emit nodes outside
    /// `range`.
    pub fn image_range(
        self,
        t: &Tree,
        s: &NodeSet,
        range: Range<u32>,
        carry: SweepCarry,
    ) -> NodeSet {
        let mut out = NodeSet::empty(t.len());
        let mut swept = NodeSet::empty(t.len());
        self.image_range_into(t, s, range, carry, &mut out, &mut swept);
        out
    }

    /// Writes one range's image slice into `out` (cleared first). `swept`
    /// is the sibling-axis parent-dedup buffer (also cleared; unused by the
    /// other axes, so a zero-universe set is fine there). With caller-owned
    /// buffers a warmed-up call performs no allocations — this is the form
    /// the parallel executor's chunk tasks run.
    pub fn image_range_into(
        self,
        t: &Tree,
        s: &NodeSet,
        range: Range<u32>,
        carry: SweepCarry,
        out: &mut NodeSet,
        swept: &mut NodeSet,
    ) {
        let n = t.len();
        debug_assert_eq!(s.universe(), n);
        debug_assert_eq!(out.universe(), n);
        debug_assert!(range.end as usize <= n);
        debug_assert_eq!(carry, incoming_kind_check(self, carry));
        out.clear();
        match self {
            Axis::SelfAxis => {
                for rank in range {
                    let v = t.node_at_pre_unchecked(rank);
                    if s.contains(v) {
                        out.insert(v);
                    }
                }
            }
            Axis::Child => {
                for rank in range {
                    let x = t.node_at_pre_unchecked(rank);
                    if s.contains(x) {
                        for c in t.children_unchecked(x) {
                            out.insert(c);
                        }
                    }
                }
            }
            Axis::Parent => {
                for rank in range {
                    let x = t.node_at_pre_unchecked(rank);
                    if s.contains(x) {
                        let p = t.parent_raw_unchecked(x);
                        if p != crate::tree::NONE {
                            out.insert(crate::tree::NodeId(p));
                        }
                    }
                }
            }
            Axis::NextSibling => {
                for rank in range {
                    let x = t.node_at_pre_unchecked(rank);
                    if s.contains(x) {
                        let y = t.next_sibling_raw_unchecked(x);
                        if y != crate::tree::NONE {
                            out.insert(crate::tree::NodeId(y));
                        }
                    }
                }
            }
            Axis::PrevSibling => {
                for rank in range {
                    let x = t.node_at_pre_unchecked(rank);
                    if s.contains(x) {
                        let y = t.prev_sibling_raw_unchecked(x);
                        if y != crate::tree::NONE {
                            out.insert(crate::tree::NodeId(y));
                        }
                    }
                }
            }
            Axis::Descendant | Axis::DescendantOrSelf => {
                let SweepCarry::MaxEnd(mut max_end) = carry else {
                    unreachable!("kind checked above")
                };
                let or_self = self == Axis::DescendantOrSelf;
                for rank in range {
                    let v = t.node_at_pre_unchecked(rank);
                    if i64::from(rank) <= max_end {
                        out.insert(v);
                    }
                    if s.contains(v) {
                        max_end = max_end.max(i64::from(t.pre_end_unchecked(v)));
                        if or_self {
                            out.insert(v);
                        }
                    }
                }
            }
            Axis::Ancestor | Axis::AncestorOrSelf => {
                // Parent-chain walks from the in-range marked nodes. The
                // walk stops at the first ancestor already emitted; every
                // emitted node's chain is fully processed (induction on
                // insertion order), so each chunk emits each ancestor
                // once.
                let or_self = self == Axis::AncestorOrSelf;
                for rank in range {
                    let v = t.node_at_pre_unchecked(rank);
                    if !s.contains(v) {
                        continue;
                    }
                    if or_self && !out.insert(v) {
                        continue;
                    }
                    for a in t.ancestors_unchecked(v) {
                        if !out.insert(a) {
                            break;
                        }
                    }
                }
            }
            Axis::FollowingSibling | Axis::FollowingSiblingOrSelf => {
                let or_self = self == Axis::FollowingSiblingOrSelf;
                swept.clear();
                for rank in range {
                    let x = t.node_at_pre_unchecked(rank);
                    if !s.contains(x) {
                        continue;
                    }
                    if or_self {
                        out.insert(x);
                    }
                    let p = t.parent_raw_unchecked(x);
                    if p == crate::tree::NONE || !swept.insert(crate::tree::NodeId(p)) {
                        continue;
                    }
                    let mut flag = false;
                    for c in t.children_unchecked(crate::tree::NodeId(p)) {
                        if flag {
                            out.insert(c);
                        }
                        if s.contains(c) {
                            flag = true;
                        }
                    }
                }
            }
            Axis::PrecedingSibling | Axis::PrecedingSiblingOrSelf => {
                let or_self = self == Axis::PrecedingSiblingOrSelf;
                swept.clear();
                for rank in range {
                    let x = t.node_at_pre_unchecked(rank);
                    if !s.contains(x) {
                        continue;
                    }
                    if or_self {
                        out.insert(x);
                    }
                    let p = t.parent_raw_unchecked(x);
                    if p == crate::tree::NONE || !swept.insert(crate::tree::NodeId(p)) {
                        continue;
                    }
                    let mut flag = false;
                    let mut cur = t.last_child_raw_unchecked(crate::tree::NodeId(p));
                    while cur != crate::tree::NONE {
                        let c = crate::tree::NodeId(cur);
                        if flag {
                            out.insert(c);
                        }
                        if s.contains(c) {
                            flag = true;
                        }
                        cur = t.prev_sibling_raw_unchecked(c);
                    }
                }
            }
            Axis::Following => {
                let SweepCarry::MinPost(mut min_post) = carry else {
                    unreachable!("kind checked above")
                };
                for rank in range {
                    let v = t.node_at_pre_unchecked(rank);
                    if min_post < t.post_unchecked(v) {
                        out.insert(v);
                    }
                    if s.contains(v) {
                        min_post = min_post.min(t.post_unchecked(v));
                    }
                }
            }
            Axis::Preceding => {
                let SweepCarry::MaxPost(mut max_post) = carry else {
                    unreachable!("kind checked above")
                };
                for rank in range.rev() {
                    let v = t.node_at_pre_unchecked(rank);
                    if max_post > i64::from(t.post_unchecked(v)) {
                        out.insert(v);
                    }
                    if s.contains(v) {
                        max_post = max_post.max(i64::from(t.post_unchecked(v)));
                    }
                }
            }
        }
    }
}

/// Debug-only: the carry passed to [`Axis::image_range`] must be of the
/// axis's own kind.
fn incoming_kind_check(axis: Axis, carry: SweepCarry) -> SweepCarry {
    debug_assert_eq!(
        std::mem::discriminant(&carry),
        std::mem::discriminant(&axis.carry_identity()),
        "carry kind must match the axis ({axis})"
    );
    carry
}

/// Sequential reference driver for the partitioned sweep: computes
/// [`Axis::image`] by splitting into `chunks` pre-order ranges and
/// ORing the per-range slices. The parallel executor in
/// `treequery-core` runs the same three phases with phases 1 and 3 on
/// the worker pool; this function exists so the partitioning itself can
/// be tested (and differentially compared) without a pool.
pub fn image_via_ranges(axis: Axis, t: &Tree, s: &NodeSet, chunks: usize) -> NodeSet {
    let ranges = pre_ranges(t.len(), chunks);
    let carries: Vec<SweepCarry> = ranges
        .iter()
        .map(|r| axis.sweep_carry(t, s, r.clone()))
        .collect();
    let incoming = incoming_carries(axis, &carries);
    let mut out = NodeSet::empty(t.len());
    for (r, c) in ranges.iter().zip(incoming) {
        out.union_with(&axis.image_range(t, s, r.clone(), c));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::generate::random_recursive_tree;
    use crate::term::parse_term;
    use crate::tree::NodeId;
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};

    #[test]
    fn pre_ranges_partition_exactly() {
        for n in [0usize, 1, 2, 3, 7, 64, 65, 1000] {
            for chunks in [1usize, 2, 3, 8, 1000, 2000] {
                let ranges = pre_ranges(n, chunks);
                if n == 0 {
                    assert!(ranges.is_empty());
                    continue;
                }
                assert!(ranges.len() <= chunks.max(1));
                assert_eq!(ranges[0].start, 0);
                assert_eq!(ranges.last().unwrap().end as usize, n);
                for w in ranges.windows(2) {
                    assert_eq!(w[0].end, w[1].start);
                }
                for r in &ranges {
                    assert!(r.start < r.end, "empty range in {ranges:?}");
                }
                let lens: Vec<u32> = ranges.iter().map(|r| r.end - r.start).collect();
                let min = lens.iter().min().unwrap();
                let max = lens.iter().max().unwrap();
                assert!(max - min <= 1, "unbalanced: {lens:?}");
            }
        }
    }

    #[test]
    fn pre_range_at_matches_pre_ranges() {
        for n in [0usize, 1, 2, 3, 7, 64, 65, 1000] {
            for chunks in [1usize, 2, 3, 8, 1000, 2000] {
                let ranges = pre_ranges(n, chunks);
                assert_eq!(pre_range_count(n, chunks), ranges.len());
                for (i, r) in ranges.iter().enumerate() {
                    assert_eq!(
                        pre_range_at(n, chunks, i),
                        *r,
                        "n={n} chunks={chunks} i={i}"
                    );
                }
            }
        }
    }

    #[test]
    fn in_place_carries_match_allocating_fold() {
        let t = parse_term("a(b(c d(e) f) g(h(i j) k) l)").unwrap();
        let s = NodeSet::from_iter(t.len(), t.nodes().filter(|v| v.0 % 2 == 0));
        for axis in [
            Axis::Descendant,
            Axis::Following,
            Axis::Preceding,
            Axis::Child,
        ] {
            for chunks in [1usize, 2, 5] {
                let ranges = pre_ranges(t.len(), chunks);
                let mut carries: Vec<SweepCarry> = ranges
                    .iter()
                    .map(|r| axis.sweep_carry(&t, &s, r.clone()))
                    .collect();
                let expected = incoming_carries(axis, &carries);
                incoming_carries_in_place(axis, &mut carries);
                assert_eq!(carries, expected, "{axis} with {chunks} chunks");
            }
        }
    }

    #[test]
    fn image_range_into_reuses_buffers() {
        let t = parse_term("a(b(c d(e) f) g(h(i j) k) l)").unwrap();
        let n = t.len();
        let s = NodeSet::from_iter(n, t.nodes().filter(|v| v.0 % 3 == 0));
        let mut out = NodeSet::empty(n);
        let mut swept = NodeSet::empty(n);
        for axis in Axis::ALL {
            let whole = axis.image(&t, &s);
            let mut merged = NodeSet::empty(n);
            let k = pre_range_count(n, 3);
            let mut carries: Vec<SweepCarry> = (0..k)
                .map(|i| axis.sweep_carry(&t, &s, pre_range_at(n, 3, i)))
                .collect();
            incoming_carries_in_place(axis, &mut carries);
            for (i, &c) in carries.iter().enumerate() {
                // Deliberately reuse dirty buffers across chunks.
                axis.image_range_into(&t, &s, pre_range_at(n, 3, i), c, &mut out, &mut swept);
                merged.union_with(&out);
            }
            assert_eq!(merged, whole, "{axis}");
        }
    }

    #[test]
    fn carry_combine_is_associative_with_identity() {
        let carries = [
            (Axis::Descendant, vec![-1i64, 0, 5, 17]),
            (Axis::Preceding, vec![-1i64, 0, 3, 9]),
        ];
        for (axis, vals) in carries {
            let wrap = |v: i64| match axis {
                Axis::Descendant => SweepCarry::MaxEnd(v),
                Axis::Preceding => SweepCarry::MaxPost(v),
                _ => unreachable!(),
            };
            for &a in &vals {
                assert_eq!(axis.carry_identity().combine(wrap(a)), wrap(a));
                for &b in &vals {
                    for &c in &vals {
                        assert_eq!(
                            wrap(a).combine(wrap(b)).combine(wrap(c)),
                            wrap(a).combine(wrap(b).combine(wrap(c)))
                        );
                    }
                }
            }
        }
        let mp = |v: u32| SweepCarry::MinPost(v);
        assert_eq!(Axis::Following.carry_identity().combine(mp(4)), mp(4));
        assert_eq!(mp(4).combine(mp(2)), mp(2));
    }

    /// The partitioned sweep must reproduce `Axis::image` exactly, for
    /// every axis, over structured and random trees, many source sets
    /// and chunk counts (including chunks > n).
    #[test]
    fn image_via_ranges_matches_image() {
        let mut rng = StdRng::seed_from_u64(0x5eed_0019);
        let mut trees = vec![
            parse_term("a(b(c d(e) f) g(h(i j) k) l)").unwrap(),
            parse_term("a").unwrap(),
            crate::generate::deep_path(33, "p"),
            crate::generate::star(40, "s"),
        ];
        for n in [17usize, 64, 129] {
            trees.push(random_recursive_tree(&mut rng, n, &["a", "b", "c"]));
        }
        for t in &trees {
            let n = t.len();
            let mut sources = vec![NodeSet::empty(n), NodeSet::full(n)];
            sources.push(NodeSet::singleton(n, t.root()));
            if n > 1 {
                sources.push(NodeSet::singleton(n, t.node_at_pre(n as u32 - 1)));
            }
            for _ in 0..4 {
                let density = rng.gen_range(1..=4);
                sources.push(NodeSet::from_iter(
                    n,
                    (0..n as u32)
                        .filter(|_| rng.gen_range(0..4) < density)
                        .map(NodeId),
                ));
            }
            for axis in Axis::ALL {
                for s in &sources {
                    let whole = axis.image(t, s);
                    for chunks in [1usize, 2, 3, 8, n + 3] {
                        let split = image_via_ranges(axis, t, s, chunks);
                        assert_eq!(split, whole, "{axis} over {n} nodes with {chunks} chunks");
                    }
                }
            }
        }
    }
}
