//! Exhaustive enumeration of all ordered trees of a given size.
//!
//! Used by the Table 1 experiment (E1): the satisfiability of
//! `R(x,z) ∧ S(y,z) ∧ x <pre y` over all axis pairs is validated by
//! exhaustive search over *all* ordered trees with up to a handful of
//! nodes — enough, because the paper's satisfiability arguments only ever
//! need constant-size witnesses.

use crate::builder::TreeBuilder;
use crate::tree::{NodeId, Tree};

/// Abstract tree shape: a node with an ordered list of child shapes.
#[derive(Clone, Debug)]
struct Shape(Vec<Shape>);

/// All ordered forests with exactly `m` nodes.
fn forests(m: usize) -> Vec<Vec<Shape>> {
    if m == 0 {
        return vec![Vec::new()];
    }
    let mut out = Vec::new();
    // Size of the first tree in the forest.
    for first in 1..=m {
        for head in shapes(first) {
            for tail in forests(m - first) {
                let mut forest = Vec::with_capacity(tail.len() + 1);
                forest.push(head.clone());
                forest.extend(tail);
                out.push(forest);
            }
        }
    }
    out
}

/// All ordered tree shapes with exactly `n` nodes.
fn shapes(n: usize) -> Vec<Shape> {
    assert!(n >= 1);
    forests(n - 1).into_iter().map(Shape).collect()
}

fn build(shape: &Shape, label: &str) -> Tree {
    let mut b = TreeBuilder::new();
    let root = b.root(label);
    let mut stack: Vec<(NodeId, &Shape)> = vec![(root, shape)];
    while let Some((node, Shape(children))) = stack.pop() {
        for child in children {
            let id = b.child(node, label);
            stack.push((id, child));
        }
    }
    b.freeze()
}

/// All ordered trees with exactly `n` nodes, every node labeled `label`.
/// There are Catalan(n−1) of them; keep `n ≤ 10` or so.
pub fn all_trees(n: usize, label: &str) -> Vec<Tree> {
    shapes(n).iter().map(|s| build(s, label)).collect()
}

/// All ordered trees with exactly `n` nodes and *every* assignment of
/// labels from `alphabet` — `Catalan(n−1) · |Σ|^n` trees. Used by the
/// bounded containment/equivalence checker; keep `n` and `|Σ|` tiny.
pub fn all_labeled_trees(n: usize, alphabet: &[&str]) -> Vec<Tree> {
    assert!(!alphabet.is_empty());
    let mut out = Vec::new();
    for shape in shapes(n) {
        // Enumerate |Σ|^n label assignments with an odometer.
        let mut assignment = vec![0usize; n];
        loop {
            out.push(build_labeled(&shape, alphabet, &assignment));
            let mut pos = 0;
            loop {
                if pos == n {
                    break;
                }
                assignment[pos] += 1;
                if assignment[pos] < alphabet.len() {
                    break;
                }
                assignment[pos] = 0;
                pos += 1;
            }
            if pos == n {
                break;
            }
        }
    }
    out
}

/// Builds a shape with labels assigned by pre-order position.
fn build_labeled(shape: &Shape, alphabet: &[&str], assignment: &[usize]) -> Tree {
    let mut b = TreeBuilder::new();
    // Recursively add nodes in pre-order so positions line up.
    fn add(
        b: &mut TreeBuilder,
        parent: Option<NodeId>,
        Shape(children): &Shape,
        alphabet: &[&str],
        assignment: &[usize],
        next: &mut usize,
    ) -> NodeId {
        let label = alphabet[assignment[*next]];
        *next += 1;
        let id = match parent {
            Some(p) => b.child(p, label),
            None => b.root(label),
        };
        for c in children {
            add(b, Some(id), c, alphabet, assignment, next);
        }
        id
    }
    let mut next = 0;
    add(&mut b, None, shape, alphabet, assignment, &mut next);
    b.freeze()
}

/// The number of ordered trees with exactly `n ≥ 1` nodes:
/// the (n−1)-st Catalan number.
pub fn count_trees(n: usize) -> u64 {
    assert!(n >= 1);
    let k = (n - 1) as u64;
    // C_k = binom(2k, k) / (k + 1), computed without overflow for small k.
    let mut c: u64 = 1;
    for i in 0..k {
        c = c * 2 * (2 * i + 1) / (i + 2);
    }
    c
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::HashSet;

    #[test]
    fn catalan_counts() {
        assert_eq!(count_trees(1), 1);
        assert_eq!(count_trees(2), 1);
        assert_eq!(count_trees(3), 2);
        assert_eq!(count_trees(4), 5);
        assert_eq!(count_trees(5), 14);
        assert_eq!(count_trees(6), 42);
        assert_eq!(count_trees(7), 132);
    }

    #[test]
    fn enumeration_matches_catalan_and_is_duplicate_free() {
        for n in 1..=6 {
            let trees = all_trees(n, "x");
            assert_eq!(trees.len() as u64, count_trees(n), "n={n}");
            let distinct: HashSet<String> = trees.iter().map(|t| t.to_string()).collect();
            assert_eq!(distinct.len(), trees.len(), "duplicates at n={n}");
            for t in &trees {
                assert_eq!(t.len(), n);
            }
        }
    }

    #[test]
    fn n3_shapes() {
        let mut reps: Vec<String> = all_trees(3, "x").iter().map(|t| t.to_string()).collect();
        reps.sort();
        assert_eq!(reps, ["x(x x)", "x(x(x))"]);
    }
}

#[cfg(test)]
mod labeled_tests {
    use super::*;

    #[test]
    fn labeled_enumeration_counts() {
        // Catalan(2) = 2 shapes × 2³ labelings = 16 trees for n = 3, k = 2.
        let trees = all_labeled_trees(3, &["a", "b"]);
        assert_eq!(trees.len(), 16);
        let distinct: std::collections::HashSet<String> =
            trees.iter().map(|t| t.to_string()).collect();
        assert_eq!(distinct.len(), 16);
    }

    #[test]
    fn labeled_enumeration_single_letter_matches_all_trees() {
        for n in 1..=5 {
            assert_eq!(all_labeled_trees(n, &["x"]).len(), all_trees(n, "x").len());
        }
    }
}
