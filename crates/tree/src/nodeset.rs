//! Dense sets of tree nodes, backed by a bitset.
//!
//! All the linear-time evaluators in this workspace manipulate whole sets of
//! nodes at a time (pre-valuations, XPath node sets, datalog predicate
//! extensions). A `NodeSet` is a fixed-universe bitset over the nodes of one
//! tree; set operations are word-parallel.

use crate::tree::NodeId;

/// A set of nodes of a fixed tree (universe size fixed at creation).
#[derive(Clone, PartialEq, Eq)]
pub struct NodeSet {
    words: Vec<u64>,
    universe: usize,
}

impl NodeSet {
    /// The empty set over a universe of `universe` nodes.
    pub fn empty(universe: usize) -> Self {
        Self {
            words: vec![0; universe.div_ceil(64)],
            universe,
        }
    }

    /// The full set over a universe of `universe` nodes.
    pub fn full(universe: usize) -> Self {
        let mut s = Self::empty(universe);
        for w in &mut s.words {
            *w = !0;
        }
        s.trim();
        s
    }

    /// Builds a set from an iterator of nodes.
    pub fn from_iter(universe: usize, nodes: impl IntoIterator<Item = NodeId>) -> Self {
        let mut s = Self::empty(universe);
        for v in nodes {
            s.insert(v);
        }
        s
    }

    /// A singleton set.
    pub fn singleton(universe: usize, v: NodeId) -> Self {
        let mut s = Self::empty(universe);
        s.insert(v);
        s
    }

    /// Builds an empty set over `universe` nodes reusing an existing word
    /// buffer (cleared and resized; allocation-free once the buffer has
    /// enough capacity). The inverse of [`NodeSet::into_words`] — together
    /// they let [`crate::scratch`] recycle bitsets across evaluations.
    pub fn from_recycled(mut words: Vec<u64>, universe: usize) -> Self {
        words.clear();
        words.resize(universe.div_ceil(64), 0);
        Self { words, universe }
    }

    /// Dismantles the set into its word buffer for later recycling.
    pub fn into_words(self) -> Vec<u64> {
        self.words
    }

    /// Turns the set into the full set over its universe in place.
    pub fn make_full(&mut self) {
        for w in &mut self.words {
            *w = !0;
        }
        self.trim();
    }

    /// Overwrites `self` with the contents of `other` (same universe).
    /// Allocation-free replacement for `clone()` on a recycled set.
    pub fn copy_from(&mut self, other: &NodeSet) {
        debug_assert_eq!(self.universe, other.universe);
        self.words.copy_from_slice(&other.words);
    }

    fn trim(&mut self) {
        let extra = self.words.len() * 64 - self.universe;
        if extra > 0 {
            if let Some(last) = self.words.last_mut() {
                *last &= !0 >> extra;
            }
        }
    }

    /// Size of the universe (not the cardinality).
    #[inline]
    pub fn universe(&self) -> usize {
        self.universe
    }

    /// Grows the universe to `new_universe` (≥ current), keeping the
    /// membership; appended ids start absent. O(words added) — the cheap
    /// direction, which is why tree edits append node ids rather than
    /// renumbering.
    pub fn grow(&mut self, new_universe: usize) {
        debug_assert!(new_universe >= self.universe, "grow cannot shrink");
        self.universe = new_universe;
        self.words.resize(new_universe.div_ceil(64), 0);
    }

    /// Inserts a node. Returns whether it was newly inserted.
    #[inline]
    pub fn insert(&mut self, v: NodeId) -> bool {
        debug_assert!((v.index()) < self.universe, "node out of universe");
        let w = &mut self.words[v.index() / 64];
        let bit = 1u64 << (v.index() % 64);
        let fresh = *w & bit == 0;
        *w |= bit;
        fresh
    }

    /// Removes a node. Returns whether it was present.
    #[inline]
    pub fn remove(&mut self, v: NodeId) -> bool {
        let w = &mut self.words[v.index() / 64];
        let bit = 1u64 << (v.index() % 64);
        let present = *w & bit != 0;
        *w &= !bit;
        present
    }

    /// Membership test.
    #[inline]
    pub fn contains(&self, v: NodeId) -> bool {
        self.words[v.index() / 64] & (1u64 << (v.index() % 64)) != 0
    }

    /// Number of elements.
    pub fn len(&self) -> usize {
        self.words.iter().map(|w| w.count_ones() as usize).sum()
    }

    /// Whether the set is empty.
    pub fn is_empty(&self) -> bool {
        self.words.iter().all(|&w| w == 0)
    }

    /// Removes all elements.
    pub fn clear(&mut self) {
        for w in &mut self.words {
            *w = 0;
        }
    }

    /// In-place union.
    pub fn union_with(&mut self, other: &NodeSet) {
        debug_assert_eq!(self.universe, other.universe);
        for (a, b) in self.words.iter_mut().zip(&other.words) {
            *a |= b;
        }
    }

    /// In-place intersection. Returns `true` if the set changed.
    pub fn intersect_with(&mut self, other: &NodeSet) -> bool {
        debug_assert_eq!(self.universe, other.universe);
        let mut changed = false;
        for (a, b) in self.words.iter_mut().zip(&other.words) {
            let new = *a & b;
            changed |= new != *a;
            *a = new;
        }
        changed
    }

    /// In-place difference (`self \ other`).
    pub fn difference_with(&mut self, other: &NodeSet) {
        debug_assert_eq!(self.universe, other.universe);
        for (a, b) in self.words.iter_mut().zip(&other.words) {
            *a &= !b;
        }
    }

    /// In-place complement with respect to the universe.
    pub fn complement(&mut self) {
        for w in &mut self.words {
            *w = !*w;
        }
        self.trim();
    }

    /// Union as a new set.
    pub fn union(&self, other: &NodeSet) -> NodeSet {
        let mut out = self.clone();
        out.union_with(other);
        out
    }

    /// Intersection as a new set.
    pub fn intersection(&self, other: &NodeSet) -> NodeSet {
        let mut out = self.clone();
        out.intersect_with(other);
        out
    }

    /// Whether the two sets intersect.
    pub fn intersects(&self, other: &NodeSet) -> bool {
        self.words.iter().zip(&other.words).any(|(a, b)| a & b != 0)
    }

    /// Whether `self ⊆ other`.
    pub fn is_subset(&self, other: &NodeSet) -> bool {
        self.words
            .iter()
            .zip(&other.words)
            .all(|(a, b)| a & !b == 0)
    }

    /// Iterates over the elements in increasing `NodeId` order.
    pub fn iter(&self) -> Iter<'_> {
        Iter {
            set: self,
            word_idx: 0,
            current: self.words.first().copied().unwrap_or(0),
        }
    }

    /// Collects the elements into a `Vec` in `NodeId` order.
    pub fn to_vec(&self) -> Vec<NodeId> {
        self.iter().collect()
    }

    /// The minimum element, if any.
    pub fn min(&self) -> Option<NodeId> {
        self.iter().next()
    }
}

/// Iterator over the elements of a [`NodeSet`].
pub struct Iter<'a> {
    set: &'a NodeSet,
    word_idx: usize,
    current: u64,
}

impl Iterator for Iter<'_> {
    type Item = NodeId;

    fn next(&mut self) -> Option<NodeId> {
        loop {
            if self.current != 0 {
                let bit = self.current.trailing_zeros();
                self.current &= self.current - 1;
                return Some(NodeId((self.word_idx * 64) as u32 + bit));
            }
            self.word_idx += 1;
            if self.word_idx >= self.set.words.len() {
                return None;
            }
            self.current = self.set.words[self.word_idx];
        }
    }
}

impl std::fmt::Debug for NodeSet {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_set().entries(self.iter()).finish()
    }
}

impl<'a> IntoIterator for &'a NodeSet {
    type Item = NodeId;
    type IntoIter = Iter<'a>;

    fn into_iter(self) -> Iter<'a> {
        self.iter()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn n(i: u32) -> NodeId {
        NodeId(i)
    }

    #[test]
    fn insert_contains_remove() {
        let mut s = NodeSet::empty(130);
        assert!(s.insert(n(0)));
        assert!(s.insert(n(64)));
        assert!(s.insert(n(129)));
        assert!(!s.insert(n(64)));
        assert!(s.contains(n(129)));
        assert!(!s.contains(n(128)));
        assert_eq!(s.len(), 3);
        assert!(s.remove(n(64)));
        assert!(!s.remove(n(64)));
        assert_eq!(s.to_vec(), vec![n(0), n(129)]);
    }

    #[test]
    fn full_and_complement_respect_universe() {
        let f = NodeSet::full(70);
        assert_eq!(f.len(), 70);
        let mut c = f.clone();
        c.complement();
        assert!(c.is_empty());
        let mut e = NodeSet::empty(70);
        e.complement();
        assert_eq!(e, f);
    }

    #[test]
    fn set_algebra() {
        let a = NodeSet::from_iter(100, [n(1), n(2), n(3), n(80)]);
        let b = NodeSet::from_iter(100, [n(2), n(80), n(99)]);
        assert_eq!(a.intersection(&b).to_vec(), vec![n(2), n(80)]);
        assert_eq!(a.union(&b).len(), 5);
        let mut d = a.clone();
        d.difference_with(&b);
        assert_eq!(d.to_vec(), vec![n(1), n(3)]);
        assert!(a.intersects(&b));
        assert!(d.is_subset(&a));
        assert!(!a.is_subset(&b));
    }

    #[test]
    fn intersect_with_reports_change() {
        let mut a = NodeSet::from_iter(10, [n(1), n(2)]);
        let b = NodeSet::from_iter(10, [n(1), n(2), n(3)]);
        assert!(!a.intersect_with(&b));
        let c = NodeSet::from_iter(10, [n(1)]);
        assert!(a.intersect_with(&c));
        assert_eq!(a.to_vec(), vec![n(1)]);
    }

    #[test]
    fn iter_order_and_min() {
        let s = NodeSet::from_iter(200, [n(150), n(3), n(64), n(63)]);
        assert_eq!(s.to_vec(), vec![n(3), n(63), n(64), n(150)]);
        assert_eq!(s.min(), Some(n(3)));
        assert_eq!(NodeSet::empty(5).min(), None);
    }

    #[test]
    fn recycling_round_trip() {
        let s = NodeSet::from_iter(100, [n(1), n(64)]);
        let words = s.into_words();
        let mut r = NodeSet::from_recycled(words, 70);
        assert!(r.is_empty());
        assert_eq!(r.universe(), 70);
        r.make_full();
        assert_eq!(r.len(), 70);
        let other = NodeSet::from_iter(70, [n(3), n(69)]);
        r.copy_from(&other);
        assert_eq!(r, other);
    }

    #[test]
    fn empty_universe() {
        let s = NodeSet::empty(0);
        assert!(s.is_empty());
        assert_eq!(s.iter().count(), 0);
        let f = NodeSet::full(0);
        assert!(f.is_empty());
    }
}
