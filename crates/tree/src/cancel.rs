//! Cooperative cancellation: an ambient [`CancelToken`] the evaluation
//! kernels poll at chunk boundaries.
//!
//! The query service needs two things a synchronous evaluator does not
//! give for free: per-query **deadlines** and cross-connection
//! **CANCEL**. Both reduce to the same mechanism — a shared flag the
//! kernels check between units of work and bail out on. The design
//! constraints, in order:
//!
//! * **One code path.** The fuzz oracle, the bench suite, and the server
//!   must all exercise the *same* kernel loops. So cancellation is not a
//!   wrapper or a cloned "cancellable" kernel: the token is installed in
//!   a thread-local ([`with_token`]) and the checkpoints ([`cancelled`])
//!   live inside the one sweep/semijoin/enumerate implementation. With
//!   no token installed a checkpoint is a thread-local read and a
//!   branch — unobservable next to the work it guards.
//! * **Chunk granularity.** Checkpoints sit between axis sweeps,
//!   semijoin passes, fixpoint rounds, pool chunks, and every few
//!   hundred enumerated tuples — never inside the innermost node loops.
//!   A cancelled query therefore stops within one chunk, not one node,
//!   which is the latency the server promises (and tests).
//! * **Early return, not unwinding.** A cancelled kernel returns its
//!   partial result normally; the executor's final checkpoint discards
//!   it and surfaces `Cancelled`. No panics, no poisoned locks, no
//!   half-recycled scratch pools.
//!
//! Deadlines piggyback on the same token: [`CancelToken::with_deadline`]
//! stores an expiry instant, and the checkpoint latches the flag the
//! first time it observes the clock past it. Clock reads are throttled
//! (one `Instant::now` every [`DEADLINE_STRIDE`] checkpoints) so tight
//! enumeration loops do not pay a timer call per tuple.

use std::cell::{Cell, RefCell};
use std::sync::atomic::{AtomicU8, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

/// Why a query stopped early.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum CancelReason {
    /// Somebody called [`CancelToken::cancel`] (e.g. a CANCEL verb from
    /// another connection, or a client disconnect).
    Cancelled,
    /// The query's deadline passed.
    DeadlineExceeded,
}

impl std::fmt::Display for CancelReason {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(match self {
            CancelReason::Cancelled => "cancelled",
            CancelReason::DeadlineExceeded => "deadline exceeded",
        })
    }
}

const FLAG_LIVE: u8 = 0;
const FLAG_CANCELLED: u8 = 1;
const FLAG_DEADLINE: u8 = 2;

#[derive(Debug)]
struct CancelState {
    /// 0 = live, 1 = explicitly cancelled, 2 = deadline latched.
    flag: AtomicU8,
    /// Expiry; checked lazily by [`CancelToken::check`] and latched into
    /// `flag` so late observers agree on the reason.
    deadline: Option<Instant>,
}

/// A shared cancellation flag plus optional deadline. Clone it freely —
/// all clones observe the same state.
#[derive(Clone, Debug)]
pub struct CancelToken(Arc<CancelState>);

impl Default for CancelToken {
    fn default() -> Self {
        CancelToken::new()
    }
}

impl CancelToken {
    /// A token with no deadline; cancels only via [`CancelToken::cancel`].
    pub fn new() -> CancelToken {
        CancelToken(Arc::new(CancelState {
            flag: AtomicU8::new(FLAG_LIVE),
            deadline: None,
        }))
    }

    /// A token that additionally trips once `budget` has elapsed.
    pub fn with_deadline(budget: Duration) -> CancelToken {
        CancelToken::with_deadline_at(Instant::now() + budget)
    }

    /// A token that trips once the clock passes `at`.
    pub fn with_deadline_at(at: Instant) -> CancelToken {
        CancelToken(Arc::new(CancelState {
            flag: AtomicU8::new(FLAG_LIVE),
            deadline: Some(at),
        }))
    }

    /// Trips the token. Idempotent; an explicit cancel wins over a
    /// concurrent deadline latch only in the sense that whichever lands
    /// first is the reported reason.
    pub fn cancel(&self) {
        let _ = self.0.flag.compare_exchange(
            FLAG_LIVE,
            FLAG_CANCELLED,
            Ordering::Relaxed,
            Ordering::Relaxed,
        );
    }

    /// The full checkpoint: consults the flag *and* the deadline clock,
    /// latching a passed deadline. Returns the reason if tripped.
    pub fn check(&self) -> Option<CancelReason> {
        match self.0.flag.load(Ordering::Relaxed) {
            FLAG_CANCELLED => return Some(CancelReason::Cancelled),
            FLAG_DEADLINE => return Some(CancelReason::DeadlineExceeded),
            _ => {}
        }
        if let Some(at) = self.0.deadline {
            if Instant::now() >= at {
                let _ = self.0.flag.compare_exchange(
                    FLAG_LIVE,
                    FLAG_DEADLINE,
                    Ordering::Relaxed,
                    Ordering::Relaxed,
                );
                return self.reason();
            }
        }
        None
    }

    /// The flag-only view: does not read the clock, so a deadline that
    /// passed but was never observed by [`CancelToken::check`] reports
    /// `None` here.
    pub fn reason(&self) -> Option<CancelReason> {
        match self.0.flag.load(Ordering::Relaxed) {
            FLAG_CANCELLED => Some(CancelReason::Cancelled),
            FLAG_DEADLINE => Some(CancelReason::DeadlineExceeded),
            _ => None,
        }
    }

    /// Whether the token has tripped (flag only; see
    /// [`CancelToken::reason`]).
    pub fn is_cancelled(&self) -> bool {
        self.0.flag.load(Ordering::Relaxed) != FLAG_LIVE
    }
}

/// One clock read per this many [`cancelled`] checkpoints when the
/// installed token carries a deadline. At kernel checkpoint rates
/// (hundreds of ns to µs apart) this bounds deadline overshoot well
/// under a millisecond while keeping `Instant::now` off the per-tuple
/// path.
pub const DEADLINE_STRIDE: u32 = 32;

thread_local! {
    static CURRENT: RefCell<Option<CancelToken>> = const { RefCell::new(None) };
    static STRIDE: Cell<u32> = const { Cell::new(0) };
}

/// Installs `token` as the ambient token for the duration of `f`
/// (restoring the previous one after — nesting installs the innermost).
/// Every [`cancelled`] checkpoint reached under `f` *on this thread*
/// observes it; [`current`] lets pool workers re-install it on theirs.
pub fn with_token<R>(token: &CancelToken, f: impl FnOnce() -> R) -> R {
    struct Restore(Option<CancelToken>);
    impl Drop for Restore {
        fn drop(&mut self) {
            CURRENT.with(|c| *c.borrow_mut() = self.0.take());
        }
    }
    let prev = CURRENT.with(|c| c.borrow_mut().replace(token.clone()));
    let _restore = Restore(prev);
    f()
}

/// The ambient token, if one is installed on this thread.
pub fn current() -> Option<CancelToken> {
    CURRENT.with(|c| c.borrow().clone())
}

/// The kernel checkpoint: true iff an ambient token is installed and has
/// tripped. With no token this is one thread-local read. Deadline clock
/// reads are throttled to every [`DEADLINE_STRIDE`]th call.
pub fn cancelled() -> bool {
    CURRENT.with(|c| {
        let slot = c.borrow();
        let Some(token) = slot.as_ref() else {
            return false;
        };
        if token.0.flag.load(Ordering::Relaxed) != FLAG_LIVE {
            return true;
        }
        if token.0.deadline.is_some() {
            let n = STRIDE.with(|s| {
                let n = s.get().wrapping_add(1);
                s.set(n);
                n
            });
            if n.is_multiple_of(DEADLINE_STRIDE) {
                return token.check().is_some();
            }
        }
        false
    })
}

/// The reason the ambient token tripped, if it did. Unlike
/// [`cancelled`], always consults the deadline clock — callers use this
/// at query entry/exit where one timer read is fine.
pub fn active_reason() -> Option<CancelReason> {
    CURRENT.with(|c| c.borrow().as_ref().and_then(CancelToken::check))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fresh_token_is_live() {
        let t = CancelToken::new();
        assert!(!t.is_cancelled());
        assert_eq!(t.check(), None);
        assert_eq!(t.reason(), None);
    }

    #[test]
    fn cancel_trips_all_clones() {
        let t = CancelToken::new();
        let c = t.clone();
        t.cancel();
        assert_eq!(c.check(), Some(CancelReason::Cancelled));
        assert_eq!(c.reason(), Some(CancelReason::Cancelled));
    }

    #[test]
    fn deadline_latches_with_its_own_reason() {
        let t = CancelToken::with_deadline(Duration::from_millis(0));
        std::thread::sleep(Duration::from_millis(2));
        // reason() alone does not read the clock ...
        assert_eq!(t.reason(), None);
        // ... check() does, and latches.
        assert_eq!(t.check(), Some(CancelReason::DeadlineExceeded));
        assert_eq!(t.reason(), Some(CancelReason::DeadlineExceeded));
    }

    #[test]
    fn explicit_cancel_beats_a_later_deadline_observation() {
        let t = CancelToken::with_deadline(Duration::from_millis(0));
        t.cancel();
        std::thread::sleep(Duration::from_millis(2));
        assert_eq!(t.check(), Some(CancelReason::Cancelled));
    }

    #[test]
    fn ambient_install_and_restore() {
        assert!(!cancelled());
        assert!(current().is_none());
        let t = CancelToken::new();
        with_token(&t, || {
            assert!(current().is_some());
            assert!(!cancelled());
            t.cancel();
            assert!(cancelled());
            assert_eq!(active_reason(), Some(CancelReason::Cancelled));
            // Nested install shadows, then restores.
            let inner = CancelToken::new();
            with_token(&inner, || {
                assert!(!cancelled());
            });
            assert!(cancelled());
        });
        assert!(current().is_none());
        assert!(!cancelled());
    }

    #[test]
    fn ambient_deadline_trips_within_the_stride() {
        let t = CancelToken::with_deadline(Duration::from_millis(0));
        std::thread::sleep(Duration::from_millis(2));
        with_token(&t, || {
            // The throttle means up to DEADLINE_STRIDE calls may pass
            // before the clock is consulted; never more.
            let tripped = (0..=DEADLINE_STRIDE).any(|_| cancelled());
            assert!(tripped);
        });
    }

    #[test]
    fn restore_survives_a_panic() {
        let t = CancelToken::new();
        let r = std::panic::catch_unwind(|| {
            with_token(&t, || panic!("boom"));
        });
        assert!(r.is_err());
        assert!(current().is_none());
    }
}
