//! Node labeling schemes beyond pre/post (Section 2).
//!
//! The pre/post(/parent) triple the [`Tree`] index keeps is the scheme of
//! \[43, 23\]; the literature the survey cites also uses *hierarchical*
//! labels — ORDPATH \[63\], Dewey-style paths — whose point is that the
//! label alone (no other state) answers axis tests, document-order
//! comparisons, and even survives insertions. [`PathLabel`] is that
//! scheme: the label of a node is its path of sibling ordinals from the
//! root, with ORDPATH's trick of leaving odd "careting" gaps so new
//! siblings can be inserted *between* existing labels without relabeling.

use crate::tree::{NodeId, Tree};

/// A hierarchical node label: the sequence of sibling ordinals on the
/// path from the root (the root's label is the empty sequence).
///
/// Ordinals are signed and spaced out (1, 3, 5, …) at assignment time so
/// fresh labels can be generated before, after, or between any existing
/// siblings forever (extra components play the role of ORDPATH's careting
/// levels; negative ordinals handle insertion before the first sibling).
#[derive(Clone, PartialEq, Eq, Hash, Debug)]
pub struct PathLabel(Vec<i64>);

impl PathLabel {
    /// The root label.
    pub fn root() -> PathLabel {
        PathLabel(Vec::new())
    }

    /// The raw components.
    pub fn components(&self) -> &[i64] {
        &self.0
    }

    /// Builds a label from raw components (edit-time label synthesis).
    pub(crate) fn from_components(components: Vec<i64>) -> PathLabel {
        PathLabel(components)
    }

    /// Depth of the labeled node (= number of components).
    pub fn depth(&self) -> usize {
        self.0.len()
    }

    /// Whether `self` labels a proper ancestor of the node labeled
    /// `other` — a pure prefix test, no tree access (the selling point of
    /// hierarchical schemes).
    pub fn is_ancestor_of(&self, other: &PathLabel) -> bool {
        self.0.len() < other.0.len() && other.0[..self.0.len()] == self.0[..]
    }

    /// Document-order (`<pre`) comparison, again label-only:
    /// lexicographic with "prefix first".
    pub fn document_cmp(&self, other: &PathLabel) -> std::cmp::Ordering {
        self.0.cmp(&other.0)
    }

    /// A label strictly between `left` and `right` in document order, for
    /// insertion between two siblings without relabeling anything else.
    /// `None` for either side means "before the first" / "after the last".
    ///
    /// # Panics
    /// Panics if `left ≥ right` (both given), or if a one-sided bound is
    /// the root label.
    pub fn between(left: Option<&PathLabel>, right: Option<&PathLabel>) -> PathLabel {
        match (left, right) {
            (None, None) => PathLabel(vec![2]),
            (Some(l), None) => {
                let mut v = l.0.clone();
                *v.last_mut().expect("sibling labels are non-root") += 2;
                PathLabel(v)
            }
            (None, Some(r)) => {
                let mut v = r.0.clone();
                *v.last_mut().expect("sibling labels are non-root") -= 2;
                PathLabel(v)
            }
            (Some(l), Some(r)) => {
                assert!(l.0 < r.0, "between() requires left < right");
                // Walk the common prefix; diverge with integer room if
                // possible, otherwise extend below the left bound.
                let mut out = Vec::with_capacity(l.0.len() + 1);
                let mut i = 0;
                loop {
                    match (l.0.get(i), r.0.get(i)) {
                        (Some(&x), Some(&y)) if x == y => {
                            out.push(x);
                            i += 1;
                        }
                        (Some(&x), Some(&y)) => {
                            debug_assert!(x < y);
                            if y - x >= 2 {
                                out.push(x + (y - x) / 2);
                            } else {
                                // Adjacent: keep x, then go strictly above
                                // l's remaining suffix (prefix-first order
                                // makes any proper extension of l larger).
                                out.push(x);
                                out.extend_from_slice(&l.0[i + 1..]);
                                out.push(1);
                            }
                            return PathLabel(out);
                        }
                        (None, Some(&y)) => {
                            // l is a proper prefix of r: any extension of l
                            // below y works.
                            out.push(y - 1);
                            return PathLabel(out);
                        }
                        _ => unreachable!("left < right rules these out"),
                    }
                }
            }
        }
    }
}

/// The labeling of a whole tree: one [`PathLabel`] per node, assigned
/// with gaps (ordinals 1, 3, 5, …).
#[derive(Clone, Debug)]
pub struct PathLabeling {
    labels: Vec<PathLabel>,
}

impl PathLabeling {
    /// Labels every node of the tree in O(n).
    pub fn new(t: &Tree) -> PathLabeling {
        let mut labels = vec![PathLabel::root(); t.len()];
        for v in t.pre_order() {
            if let Some(p) = t.parent(v) {
                let mut path = labels[p.index()].0.clone();
                path.push(2 * i64::from(t.sibling_index(v)) + 1);
                labels[v.index()] = PathLabel(path);
            }
        }
        PathLabeling { labels }
    }

    /// The label of a node.
    pub fn label(&self, v: NodeId) -> &PathLabel {
        &self.labels[v.index()]
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::term::parse_term;
    use std::cmp::Ordering;

    #[test]
    fn labels_encode_ancestorship_and_order() {
        let t = parse_term("a(b(c d) e(f) g)").unwrap();
        let lab = PathLabeling::new(&t);
        for x in t.nodes() {
            for y in t.nodes() {
                assert_eq!(
                    lab.label(x).is_ancestor_of(lab.label(y)),
                    t.is_ancestor(x, y),
                    "({x:?},{y:?})"
                );
                let cmp = lab.label(x).document_cmp(lab.label(y));
                match cmp {
                    Ordering::Less => assert!(t.pre(x) < t.pre(y)),
                    Ordering::Greater => assert!(t.pre(x) > t.pre(y)),
                    Ordering::Equal => assert_eq!(x, y),
                }
            }
        }
    }

    #[test]
    fn depth_matches() {
        let t = parse_term("a(b(c))").unwrap();
        let lab = PathLabeling::new(&t);
        for v in t.nodes() {
            assert_eq!(lab.label(v).depth() as u32, t.depth(v));
        }
    }

    #[test]
    fn insertion_between_siblings() {
        let t = parse_term("r(a b)").unwrap();
        let lab = PathLabeling::new(&t);
        let a = t.first_child(t.root()).unwrap();
        let b = t.next_sibling(a).unwrap();
        let la = lab.label(a);
        let lb = lab.label(b);
        // Insert between a and b.
        let mid = PathLabel::between(Some(la), Some(lb));
        assert_eq!(la.document_cmp(&mid), Ordering::Less);
        assert_eq!(mid.document_cmp(lb), Ordering::Less);
        // Insert before a and after b.
        let first = PathLabel::between(None, Some(la));
        assert_eq!(first.document_cmp(la), Ordering::Less);
        let last = PathLabel::between(Some(lb), None);
        assert_eq!(lb.document_cmp(&last), Ordering::Less);
        // All four stay below the root in document order semantics.
        assert!(lab.label(t.root()).is_ancestor_of(&mid));
    }

    #[test]
    fn repeated_insertion_never_relabels() {
        // Insert 50 times into the same gap: labels keep strictly
        // ordered without touching the outer labels (the careting trick).
        let t = parse_term("r(a b)").unwrap();
        let lab = PathLabeling::new(&t);
        let a = t.first_child(t.root()).unwrap();
        let b = t.next_sibling(a).unwrap();
        let mut left = lab.label(a).clone();
        let right = lab.label(b).clone();
        for _ in 0..50 {
            let mid = PathLabel::between(Some(&left), Some(&right));
            assert_eq!(left.document_cmp(&mid), Ordering::Less);
            assert_eq!(mid.document_cmp(&right), Ordering::Less);
            left = mid;
        }
    }

    #[test]
    fn between_in_empty_list() {
        let only = PathLabel::between(None, None);
        assert_eq!(only.depth(), 1);
    }
}
