//! Workload generators: parametric synthetic trees.
//!
//! The paper's complexity claims are about asymptotic shape, not a concrete
//! corpus, so the experiments drive the engines with controlled synthetic
//! inputs: paths and stars (extreme depth/fanout), random recursive trees
//! (shallow, realistic fanout), depth-controlled random trees (for the
//! streaming-memory experiments) and an XMark-style auction document (a
//! structurally faithful stand-in for the XML benchmarks the literature
//! uses).

use rand::seq::SliceRandom;
use rand::Rng;

use crate::builder::TreeBuilder;
use crate::tree::{NodeId, Tree};

/// A path of `n` nodes, all labeled `label` (maximal depth).
pub fn deep_path(n: usize, label: &str) -> Tree {
    assert!(n > 0, "a tree needs at least one node");
    let mut b = TreeBuilder::with_capacity(n);
    let mut cur = b.root(label);
    for _ in 1..n {
        cur = b.child(cur, label);
    }
    b.freeze()
}

/// A root with `n - 1` leaf children (maximal fanout).
pub fn star(n: usize, label: &str) -> Tree {
    assert!(n > 0, "a tree needs at least one node");
    let mut b = TreeBuilder::with_capacity(n);
    let root = b.root(label);
    for _ in 1..n {
        b.child(root, label);
    }
    b.freeze()
}

/// A caterpillar: a spine of `spine` nodes, each carrying `legs` leaf
/// children.
pub fn caterpillar(spine: usize, legs: usize, label: &str) -> Tree {
    assert!(spine > 0, "a tree needs at least one node");
    let mut b = TreeBuilder::with_capacity(spine * (legs + 1));
    let mut cur = b.root(label);
    for i in 0..spine {
        for _ in 0..legs {
            b.child(cur, label);
        }
        if i + 1 < spine {
            cur = b.child(cur, label);
        }
    }
    b.freeze()
}

/// The complete binary tree of the given depth (depth 0 = single node).
pub fn full_binary(depth: u32, label: &str) -> Tree {
    let n = 2usize.pow(depth + 1) - 1;
    let mut b = TreeBuilder::with_capacity(n);
    let root = b.root(label);
    let mut frontier = vec![root];
    for _ in 0..depth {
        let mut next = Vec::with_capacity(frontier.len() * 2);
        for p in frontier {
            next.push(b.child(p, label));
            next.push(b.child(p, label));
        }
        frontier = next;
    }
    b.freeze()
}

/// Draws a label uniformly from `alphabet` for each of `n` positions.
pub fn random_labels<'a, R: Rng>(rng: &mut R, alphabet: &[&'a str], n: usize) -> Vec<&'a str> {
    (0..n)
        .map(|_| *alphabet.choose(rng).expect("non-empty alphabet"))
        .collect()
}

/// A uniform random recursive tree: node `i` attaches to a uniformly random
/// earlier node. Expected depth is Θ(log n); fanout is skewed like real
/// document collections. Labels drawn uniformly from `alphabet`.
pub fn random_recursive_tree<R: Rng>(rng: &mut R, n: usize, alphabet: &[&str]) -> Tree {
    assert!(n > 0, "a tree needs at least one node");
    assert!(!alphabet.is_empty(), "alphabet must be non-empty");
    let mut b = TreeBuilder::with_capacity(n);
    let mut nodes = Vec::with_capacity(n);
    nodes.push(b.root(alphabet.choose(rng).unwrap()));
    for i in 1..n {
        let parent = nodes[rng.gen_range(0..i)];
        nodes.push(b.child(parent, alphabet.choose(rng).unwrap()));
    }
    b.freeze()
}

/// A random tree with exactly `n` nodes whose height is exactly
/// `depth` (requires `depth < n`): a spine of `depth + 1` nodes fixes the
/// height, remaining nodes attach uniformly at random to nodes of depth
/// `< depth` (so the height is not exceeded).
pub fn random_tree_with_depth<R: Rng>(
    rng: &mut R,
    n: usize,
    depth: u32,
    alphabet: &[&str],
) -> Tree {
    assert!((depth as usize) < n, "need depth < n");
    assert!(!alphabet.is_empty(), "alphabet must be non-empty");
    let mut b = TreeBuilder::with_capacity(n);
    // Spine.
    let mut spine = Vec::with_capacity(depth as usize + 1);
    let mut cur = b.root(alphabet.choose(rng).unwrap());
    spine.push(cur);
    for _ in 0..depth {
        cur = b.child(cur, alphabet.choose(rng).unwrap());
        spine.push(cur);
    }
    // `eligible[i]` are nodes at depth < depth, i.e. legal parents.
    let mut eligible: Vec<(NodeId, u32)> = spine
        .iter()
        .enumerate()
        .filter(|&(d, _)| (d as u32) < depth)
        .map(|(d, &v)| (v, d as u32))
        .collect();
    for _ in spine.len()..n {
        let &(parent, d) = &eligible[rng.gen_range(0..eligible.len())];
        let node = b.child(parent, alphabet.choose(rng).unwrap());
        if d + 1 < depth {
            eligible.push((node, d + 1));
        }
    }
    b.freeze()
}

/// Parameters for the XMark-style auction document generator.
#[derive(Clone, Debug)]
pub struct XmarkConfig {
    /// Number of `person` elements under `people`.
    pub people: usize,
    /// Number of `open_auction` elements.
    pub open_auctions: usize,
    /// Number of `closed_auction` elements.
    pub closed_auctions: usize,
    /// Number of `item` elements per region (there are six regions).
    pub items_per_region: usize,
    /// Number of `category` elements.
    pub categories: usize,
    /// Maximum nesting depth of `parlist`/`listitem` in descriptions; the
    /// recursive part that gives XMark documents their depth.
    pub max_description_depth: u32,
}

impl Default for XmarkConfig {
    fn default() -> Self {
        Self {
            people: 25,
            open_auctions: 12,
            closed_auctions: 8,
            items_per_region: 10,
            categories: 10,
            max_description_depth: 3,
        }
    }
}

impl XmarkConfig {
    /// A configuration scaled so the generated document has roughly `n`
    /// nodes (coarse: exact node counts vary with the RNG).
    pub fn scaled_to(n: usize) -> Self {
        let unit = (n / 60).max(1);
        Self {
            people: unit * 2,
            open_auctions: unit,
            closed_auctions: unit / 2 + 1,
            items_per_region: unit / 2 + 1,
            categories: unit / 2 + 1,
            max_description_depth: 3,
        }
    }
}

fn description<R: Rng>(rng: &mut R, b: &mut TreeBuilder, parent: NodeId, depth: u32) {
    let d = b.child(parent, "description");
    if depth == 0 || rng.gen_bool(0.4) {
        b.child(d, "text");
    } else {
        parlist(rng, b, d, depth);
    }
}

fn parlist<R: Rng>(rng: &mut R, b: &mut TreeBuilder, parent: NodeId, depth: u32) {
    let pl = b.child(parent, "parlist");
    for _ in 0..rng.gen_range(1..=3) {
        let li = b.child(pl, "listitem");
        if depth > 1 && rng.gen_bool(0.5) {
            parlist(rng, b, li, depth - 1);
        } else {
            b.child(li, "text");
        }
    }
}

/// Generates an XMark-style auction-site document: the standard structure
/// (`site` → `regions`/`people`/`open_auctions`/`closed_auctions`/
/// `categories`, recursive `parlist` descriptions) without text content —
/// the paper's Core XPath fragment only sees the navigational structure.
pub fn xmark_document<R: Rng>(rng: &mut R, cfg: &XmarkConfig) -> Tree {
    let mut b = TreeBuilder::new();
    let site = b.root("site");

    let regions = b.child(site, "regions");
    for region in [
        "africa",
        "asia",
        "australia",
        "europe",
        "namerica",
        "samerica",
    ] {
        let r = b.child(regions, region);
        for _ in 0..cfg.items_per_region {
            let item = b.child(r, "item");
            b.child(item, "location");
            b.child(item, "quantity");
            b.child(item, "name");
            b.child(item, "payment");
            description(rng, &mut b, item, cfg.max_description_depth);
            let ship = b.child(item, "shipping");
            b.child(ship, "text");
            if rng.gen_bool(0.3) {
                let inc = b.child(item, "incategory");
                b.child(inc, "category_ref");
            }
        }
    }

    let people = b.child(site, "people");
    for _ in 0..cfg.people {
        let person = b.child(people, "person");
        b.child(person, "name");
        b.child(person, "emailaddress");
        if rng.gen_bool(0.6) {
            let addr = b.child(person, "address");
            b.child(addr, "street");
            b.child(addr, "city");
            b.child(addr, "country");
            b.child(addr, "zipcode");
        }
        if rng.gen_bool(0.4) {
            b.child(person, "homepage");
        }
        if rng.gen_bool(0.5) {
            let profile = b.child(person, "profile");
            b.child(profile, "interest");
            b.child(profile, "education");
            b.child(profile, "business");
        }
        if rng.gen_bool(0.5) {
            let watches = b.child(person, "watches");
            for _ in 0..rng.gen_range(1..=3) {
                b.child(watches, "watch");
            }
        }
    }

    let open = b.child(site, "open_auctions");
    for _ in 0..cfg.open_auctions {
        let auction = b.child(open, "open_auction");
        b.child(auction, "initial");
        b.child(auction, "reserve");
        for _ in 0..rng.gen_range(0..=4) {
            let bidder = b.child(auction, "bidder");
            b.child(bidder, "date");
            b.child(bidder, "time");
            b.child(bidder, "personref");
            b.child(bidder, "increase");
        }
        b.child(auction, "current");
        b.child(auction, "itemref");
        b.child(auction, "seller");
        let ann = b.child(auction, "annotation");
        b.child(ann, "author");
        description(rng, &mut b, ann, cfg.max_description_depth);
        b.child(auction, "quantity");
        b.child(auction, "type");
        let interval = b.child(auction, "interval");
        b.child(interval, "start");
        b.child(interval, "end");
    }

    let closed = b.child(site, "closed_auctions");
    for _ in 0..cfg.closed_auctions {
        let auction = b.child(closed, "closed_auction");
        b.child(auction, "seller");
        b.child(auction, "buyer");
        b.child(auction, "itemref");
        b.child(auction, "price");
        b.child(auction, "date");
        b.child(auction, "quantity");
        b.child(auction, "type");
        let ann = b.child(auction, "annotation");
        b.child(ann, "author");
        description(rng, &mut b, ann, cfg.max_description_depth);
    }

    let cats = b.child(site, "categories");
    for _ in 0..cfg.categories {
        let cat = b.child(cats, "category");
        b.child(cat, "name");
        description(rng, &mut b, cat, cfg.max_description_depth);
    }
    let catgraph = b.child(site, "catgraph");
    for _ in 0..cfg.categories {
        let edge = b.child(catgraph, "edge");
        b.child(edge, "from");
        b.child(edge, "to");
    }

    b.freeze()
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn deep_path_shape() {
        let t = deep_path(10, "a");
        assert_eq!(t.len(), 10);
        assert_eq!(t.height(), 9);
    }

    #[test]
    fn star_shape() {
        let t = star(10, "a");
        assert_eq!(t.len(), 10);
        assert_eq!(t.height(), 1);
        assert_eq!(t.children(t.root()).count(), 9);
    }

    #[test]
    fn caterpillar_shape() {
        let t = caterpillar(4, 2, "a");
        assert_eq!(t.len(), 12);
        assert_eq!(t.height(), 4); // last spine node's legs are deepest
    }

    #[test]
    fn full_binary_shape() {
        let t = full_binary(3, "a");
        assert_eq!(t.len(), 15);
        assert_eq!(t.height(), 3);
        assert_eq!(t.nodes().filter(|&v| t.is_leaf(v)).count(), 8);
    }

    #[test]
    fn random_recursive_tree_size_and_labels() {
        let mut rng = StdRng::seed_from_u64(7);
        let t = random_recursive_tree(&mut rng, 500, &["a", "b", "c"]);
        assert_eq!(t.len(), 500);
        assert!(t.interner().len() <= 3);
        // Random recursive trees are shallow with high probability.
        assert!(t.height() < 60, "height {}", t.height());
    }

    #[test]
    fn random_tree_with_depth_is_exact() {
        let mut rng = StdRng::seed_from_u64(3);
        for depth in [1u32, 5, 20] {
            let t = random_tree_with_depth(&mut rng, 300, depth, &["a", "b"]);
            assert_eq!(t.len(), 300);
            assert_eq!(t.height(), depth);
        }
    }

    #[test]
    fn xmark_has_expected_structure() {
        let mut rng = StdRng::seed_from_u64(42);
        let t = xmark_document(&mut rng, &XmarkConfig::default());
        assert_eq!(t.label_name(t.root()), "site");
        assert_eq!(t.nodes_with_label_name("person").len(), 25);
        assert_eq!(t.nodes_with_label_name("open_auction").len(), 12);
        assert!(!t.nodes_with_label_name("parlist").is_empty());
        // The six regions exist.
        assert_eq!(t.nodes_with_label_name("africa").len(), 1);
        // bidders live under open_auction.
        for &b in t.nodes_with_label_name("bidder") {
            assert_eq!(t.label_name(t.parent(b).unwrap()), "open_auction");
        }
    }

    #[test]
    fn xmark_scaling() {
        let mut rng = StdRng::seed_from_u64(1);
        let small = xmark_document(&mut rng, &XmarkConfig::scaled_to(500));
        let large = xmark_document(&mut rng, &XmarkConfig::scaled_to(5_000));
        assert!(large.len() > 3 * small.len());
    }
}
