//! In-place edits on the frozen arena: subtree insert, delete, relabel.
//!
//! The [`Tree`] index is "frozen" in the sense that every derived column
//! (orders, extents, postings) is kept exact at all times — not in the
//! sense that the document cannot change. [`EditableTree`] wraps a tree
//! together with its ORDPATH-style [`PathLabel`]s (the gap-labeled
//! scheme of the `labeling` module, Section 2's hierarchical labels) and
//! repairs the index *incrementally* per edit:
//!
//! * **relabel** — O(1) on the label column plus a splice of the two
//!   touched per-label posting runs;
//! * **insert leaf** — O(1) structural relinking, one localized splice
//!   of the `pre`/`post` rank columns and inverse maps (a contiguous
//!   memmove), an O(depth) extent repair along the ancestor chain, and
//!   one binary-searched posting insertion into the new label's run;
//! * **delete subtree** — the deleted nodes occupy contiguous `pre` and
//!   `post` ranges, so survivor ranks shift by a constant; node ids are
//!   compacted in one ordered rewrite that preserves every relative
//!   order (no re-sorting, no re-hashing, no re-interning).
//!
//! The breadth-first order is the one column an edit can scramble
//! arbitrarily, so it is recomputed by a plain BFS (O(n) with a trivial
//! constant; documented trade-off).
//!
//! `PathLabel`s are the document-order authority for insertions: a new
//! sibling's label comes from [`PathLabel::between`], which never moves
//! an existing label. When repeated insertion into the same gap exhausts
//! the integer room (ORDPATH careting has grown a label far beyond its
//! structural depth), the [`EditableTree`] falls back to a **full
//! refreeze**: all derived columns and all path labels are recomputed
//! from the structural links, restoring the gap invariant. The policy is
//! deliberate and observable ([`EditableTree::refreeze_count`]).

use std::collections::VecDeque;
use std::fmt;

use crate::label::Symbol;
use crate::labeling::{PathLabel, PathLabeling};
use crate::tree::{NodeId, Tree, NONE};

/// One edit, addressed by *pre-order rank* (document position), which is
/// the only node address that survives rebuilds and prior edits — the
/// differential fuzzer compares an incrementally edited tree against a
/// from-scratch rebuild, and `NodeId`s are not comparable across the two.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum EditOp {
    /// Insert a fresh leaf under the node at `parent_pre`, becoming its
    /// `child_idx`-th child (existing children from that position shift
    /// right).
    InsertLeaf {
        /// Pre rank of the parent (taken modulo the tree size).
        parent_pre: u32,
        /// Insertion position among the parent's children (taken modulo
        /// fanout + 1).
        child_idx: u32,
        /// Label of the new leaf.
        label: String,
    },
    /// Delete the whole subtree rooted at the node at `pre`. Deleting
    /// the root is not an edit (it would leave no document); normalized
    /// to a skip.
    DeleteSubtree {
        /// Pre rank of the subtree root (taken modulo the tree size).
        pre: u32,
    },
    /// Replace the primary label of the node at `pre`.
    Relabel {
        /// Pre rank of the node (taken modulo the tree size).
        pre: u32,
        /// The new primary label.
        label: String,
    },
}

impl EditOp {
    /// Resolves the op's raw addresses against `t` (ranks are taken
    /// modulo the current size, insertion positions modulo fanout + 1),
    /// so *every* op applies to *every* non-empty tree. Returns `None`
    /// only for ops normalized to a skip (deleting the root).
    ///
    /// This total semantics is what lets the fuzzer generate, mutate and
    /// shrink edit scripts freely: dropping an earlier op never
    /// invalidates a later one.
    pub fn normalize(&self, t: &Tree) -> Option<EditOp> {
        let n = t.len() as u32;
        match self {
            EditOp::InsertLeaf {
                parent_pre,
                child_idx,
                label,
            } => {
                let parent_pre = parent_pre % n;
                let fanout = t.children(t.node_at_pre(parent_pre)).count() as u32;
                Some(EditOp::InsertLeaf {
                    parent_pre,
                    child_idx: child_idx % (fanout + 1),
                    label: label.clone(),
                })
            }
            EditOp::DeleteSubtree { pre } => {
                let pre = pre % n;
                (t.node_at_pre(pre) != t.root()).then_some(EditOp::DeleteSubtree { pre })
            }
            EditOp::Relabel { pre, label } => Some(EditOp::Relabel {
                pre: pre % n,
                label: label.clone(),
            }),
        }
    }
}

impl fmt::Display for EditOp {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            EditOp::InsertLeaf {
                parent_pre,
                child_idx,
                label,
            } => write!(f, "insert({parent_pre},{child_idx},{label})"),
            EditOp::DeleteSubtree { pre } => write!(f, "delete({pre})"),
            EditOp::Relabel { pre, label } => write!(f, "relabel({pre},{label})"),
        }
    }
}

/// Error from [`EditOp::parse`] / [`parse_script`].
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct EditParseError(pub String);

impl fmt::Display for EditParseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "bad edit op: {}", self.0)
    }
}

impl std::error::Error for EditParseError {}

impl EditOp {
    /// Parses the [`Display`](std::fmt::Display) syntax back
    /// (`insert(p,i,l)`, `delete(p)`,
    /// `relabel(p,l)`).
    pub fn parse(s: &str) -> Result<EditOp, EditParseError> {
        let s = s.trim();
        let err = || EditParseError(s.to_owned());
        let (head, rest) = s.split_once('(').ok_or_else(err)?;
        let args = rest.strip_suffix(')').ok_or_else(err)?;
        let parts: Vec<&str> = args.split(',').map(str::trim).collect();
        let num = |p: &str| p.parse::<u32>().map_err(|_| err());
        match (head.trim(), parts.as_slice()) {
            ("insert", [p, i, l]) if !l.is_empty() => Ok(EditOp::InsertLeaf {
                parent_pre: num(p)?,
                child_idx: num(i)?,
                label: (*l).to_owned(),
            }),
            ("delete", [p]) => Ok(EditOp::DeleteSubtree { pre: num(p)? }),
            ("relabel", [p, l]) if !l.is_empty() => Ok(EditOp::Relabel {
                pre: num(p)?,
                label: (*l).to_owned(),
            }),
            _ => Err(err()),
        }
    }
}

/// Renders a script as the canonical `op; op; ...` line.
pub fn render_script(ops: &[EditOp]) -> String {
    ops.iter()
        .map(EditOp::to_string)
        .collect::<Vec<_>>()
        .join("; ")
}

/// Parses a `; `-separated script line.
pub fn parse_script(s: &str) -> Result<Vec<EditOp>, EditParseError> {
    s.split(';')
        .map(str::trim)
        .filter(|p| !p.is_empty())
        .map(EditOp::parse)
        .collect()
}

/// What kind of change an [`EditDelta`] describes.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum EditKind {
    /// A leaf was inserted.
    Insert,
    /// A subtree was deleted.
    Delete,
    /// A primary label changed.
    Relabel,
}

/// Snapshot of one deleted node, captured while it was still reachable —
/// exactly what downstream incremental maintenance (statistics deltas,
/// fingerprint deltas) needs, and nothing more.
#[derive(Clone, Debug)]
pub struct RemovedNode {
    /// Depth the node had.
    pub depth: u32,
    /// Number of children the node had.
    pub fanout: u32,
    /// All labels the node carried (primary first).
    pub labels: Vec<Symbol>,
}

/// The precise description of one applied edit: which contiguous rank
/// ranges were spliced and what changed there. Every downstream
/// incremental consumer (XASR patching, statistics and fingerprint
/// deltas, plan-cache migration, the datalog delta pass) reads this
/// instead of diffing trees.
#[derive(Clone, Debug)]
pub struct EditDelta {
    /// The kind of edit.
    pub kind: EditKind,
    /// The spliced pre-rank range (inclusive): the new node's rank for
    /// inserts, the *old* subtree range for deletes, the node's rank for
    /// relabels.
    pub pre_range: (u32, u32),
    /// The spliced post-rank range (inclusive), same conventions.
    pub post_range: (u32, u32),
    /// The inserted or relabeled node (current ids; `None` for deletes).
    pub node: Option<NodeId>,
    /// Parent of the edit site, in *post-edit* ids (`None` for relabels
    /// and for deletes whose parent semantics the caller doesn't need).
    pub parent: Option<NodeId>,
    /// The parent's fanout *before* the edit.
    pub parent_old_fanout: u32,
    /// Old primary label (relabels only).
    pub old_label: Option<Symbol>,
    /// Every label the node carried *before* a relabel, primary first
    /// (relabels only; empty otherwise). Relabeling a node to one of its
    /// extra labels promotes the extra, so the new label *multiset* is
    /// not derivable from `old_label`/`new_label` alone — incremental
    /// label-count maintenance needs this snapshot.
    pub old_labels: Vec<Symbol>,
    /// New label (inserts and relabels).
    pub new_label: Option<Symbol>,
    /// Per-node snapshots of the deleted subtree (deletes only), in pre
    /// order.
    pub removed: Vec<RemovedNode>,
    /// Old node id → new node id (`u32::MAX` for deleted ids); present
    /// only for deletes, where id compaction shifts survivors down.
    pub id_remap: Option<Vec<u32>>,
    /// Whether this edit triggered a full refreeze (gap exhaustion):
    /// consumers holding derived state must rebuild rather than patch.
    pub refroze: bool,
}

impl EditDelta {
    /// Number of nodes added (positive) or removed (negative).
    pub fn nodes_delta(&self) -> i64 {
        match self.kind {
            EditKind::Insert => 1,
            EditKind::Delete => -(self.removed.len() as i64),
            EditKind::Relabel => 0,
        }
    }

    /// Maps an old node id through the delta's compaction (identity when
    /// no remap happened; `None` if the node was deleted).
    pub fn remap(&self, v: NodeId) -> Option<NodeId> {
        match &self.id_remap {
            None => Some(v),
            Some(m) => (m[v.index()] != NONE).then(|| NodeId(m[v.index()])),
        }
    }
}

/// Careting slack before a refreeze: a path label may exceed its node's
/// structural depth by at most this many components before the labeling
/// is declared gap-exhausted and reassigned wholesale.
pub const GAP_SLACK: usize = 4;

/// Ordinal magnitude bound; one-sided insertion walks ordinals ±2 per
/// insert and can never realistically reach this, but the guard keeps
/// the exhaustion policy total.
const MAX_ORDINAL: i64 = 1 << 60;

/// A [`Tree`] that accepts edits, plus the gap-labeled [`PathLabel`]s
/// that order them and the refreeze bookkeeping.
#[derive(Clone)]
pub struct EditableTree {
    tree: Tree,
    path: Vec<PathLabel>,
    edits: u64,
    refreezes: u64,
}

impl EditableTree {
    /// Wraps a frozen tree, assigning gap path labels in O(n).
    pub fn new(tree: Tree) -> EditableTree {
        let labeling = PathLabeling::new(&tree);
        let path = tree.nodes().map(|v| labeling.label(v).clone()).collect();
        EditableTree {
            tree,
            path,
            edits: 0,
            refreezes: 0,
        }
    }

    /// The current tree (always a fully consistent frozen index).
    #[inline]
    pub fn tree(&self) -> &Tree {
        &self.tree
    }

    /// Unwraps into the current tree.
    pub fn into_tree(self) -> Tree {
        self.tree
    }

    /// The gap path label of a node.
    pub fn path_label(&self, v: NodeId) -> &PathLabel {
        &self.path[v.index()]
    }

    /// Number of edits applied so far.
    pub fn edit_count(&self) -> u64 {
        self.edits
    }

    /// Number of full refreezes the gap-exhaustion policy has triggered.
    pub fn refreeze_count(&self) -> u64 {
        self.refreezes
    }

    /// Applies one op (after [`EditOp::normalize`]); `None` when the op
    /// normalized to a skip.
    pub fn apply(&mut self, op: &EditOp) -> Option<EditDelta> {
        let op = op.normalize(&self.tree)?;
        Some(match op {
            EditOp::InsertLeaf {
                parent_pre,
                child_idx,
                label,
            } => {
                let parent = self.tree.node_at_pre(parent_pre);
                self.insert_leaf(parent, child_idx as usize, &label).1
            }
            EditOp::DeleteSubtree { pre } => {
                let v = self.tree.node_at_pre(pre);
                self.delete_subtree(v)
            }
            EditOp::Relabel { pre, label } => {
                let v = self.tree.node_at_pre(pre);
                self.relabel(v, &label)
            }
        })
    }

    /// Inserts a fresh leaf as the `child_idx`-th child of `parent`,
    /// repairing every index column in place. Returns the new node and
    /// the delta.
    ///
    /// # Panics
    /// Panics if `child_idx` exceeds the parent's fanout.
    pub fn insert_leaf(
        &mut self,
        parent: NodeId,
        child_idx: usize,
        label: &str,
    ) -> (NodeId, EditDelta) {
        self.edits += 1;
        // Sibling path labels *before* the splice: the new label must
        // slot between them without moving either.
        let left = child_idx
            .checked_sub(1)
            .and_then(|i| self.tree.children(parent).nth(i));
        let right = self.tree.children(parent).nth(child_idx);
        let new_label = match (left, right) {
            (None, None) => {
                // First child ever: extend the parent's path with a gap
                // ordinal (2·0 + 1), exactly what a refreeze would pick.
                let mut comps = self.path[parent.index()].components().to_vec();
                comps.push(1);
                PathLabel::from_components(comps)
            }
            (l, r) => PathLabel::between(
                l.map(|v| &self.path[v.index()]),
                r.map(|v| &self.path[v.index()]),
            ),
        };
        let parent_old_fanout = self.tree.children(parent).count() as u32;
        let (node, pre, post) = self.tree.splice_insert_leaf(parent, child_idx, label);
        debug_assert_eq!(node.index(), self.path.len());
        let exhausted = new_label.depth() > self.tree.depth(node) as usize + GAP_SLACK
            || new_label
                .components()
                .iter()
                .any(|c| c.unsigned_abs() > MAX_ORDINAL as u64);
        self.path.push(new_label);
        let refroze = exhausted;
        if exhausted {
            self.refreeze();
        }
        let delta = EditDelta {
            kind: EditKind::Insert,
            pre_range: (pre, pre),
            post_range: (post, post),
            node: Some(node),
            parent: Some(parent),
            parent_old_fanout,
            old_label: None,
            old_labels: Vec::new(),
            new_label: Some(self.tree.label(node)),
            removed: Vec::new(),
            id_remap: None,
            refroze,
        };
        (node, delta)
    }

    /// Deletes the whole subtree rooted at `v`, compacting node ids.
    ///
    /// # Panics
    /// Panics if `v` is the root.
    pub fn delete_subtree(&mut self, v: NodeId) -> EditDelta {
        self.edits += 1;
        let mut delta = self.tree.splice_delete_subtree(v);
        // Compact the path-label column through the same remap.
        let remap = delta.id_remap.as_ref().expect("delete produces a remap");
        let mut path = Vec::with_capacity(self.tree.len());
        for (old, label) in self.path.drain(..).enumerate() {
            if remap[old] != NONE {
                debug_assert_eq!(remap[old] as usize, path.len());
                path.push(label);
            }
        }
        self.path = path;
        delta.refroze = false;
        delta
    }

    /// Replaces the primary label of `v`. Relabeling to the same label
    /// is a structural no-op (the delta still reports it).
    pub fn relabel(&mut self, v: NodeId, label: &str) -> EditDelta {
        self.edits += 1;
        let old_labels: Vec<Symbol> = self.tree.labels(v).collect();
        let (old, new) = self.tree.splice_relabel(v, label);
        EditDelta {
            kind: EditKind::Relabel,
            pre_range: (self.tree.pre(v), self.tree.pre(v)),
            post_range: (self.tree.post(v), self.tree.post(v)),
            node: Some(v),
            parent: None,
            parent_old_fanout: 0,
            old_label: Some(old),
            old_labels,
            new_label: Some(new),
            removed: Vec::new(),
            id_remap: None,
            refroze: false,
        }
    }

    /// The gap-exhaustion fallback: recompute every derived index column
    /// from the structural links and reassign all path labels with fresh
    /// gaps. O(n), the cost the incremental paths exist to avoid — which
    /// is why it only runs when the careting policy says the labels have
    /// degenerated.
    pub fn refreeze(&mut self) {
        self.refreezes += 1;
        self.tree.recompute_indexes();
        let labeling = PathLabeling::new(&self.tree);
        self.path = self
            .tree
            .nodes()
            .map(|v| labeling.label(v).clone())
            .collect();
    }

    /// Debug oracle: asserts the path labels agree with the index's
    /// document order and ancestorship on every adjacent pre pair.
    #[doc(hidden)]
    pub fn assert_labels_consistent(&self) {
        let t = &self.tree;
        let mut prev: Option<NodeId> = None;
        for v in t.pre_order() {
            if let Some(u) = prev {
                assert_eq!(
                    self.path[u.index()].document_cmp(&self.path[v.index()]),
                    std::cmp::Ordering::Less,
                    "path labels out of document order at pre {}",
                    t.pre(v)
                );
            }
            if let Some(p) = t.parent(v) {
                assert!(
                    self.path[p.index()].is_ancestor_of(&self.path[v.index()]),
                    "parent path label is not an ancestor at pre {}",
                    t.pre(v)
                );
            }
            prev = Some(v);
        }
    }
}

// ---------------------------------------------------------------------
// The splice machinery proper: pub(crate) surgery on the Tree columns.

impl Tree {
    /// Inserts a fresh leaf under `parent` at `child_idx`, repairing all
    /// index columns. Returns `(node, pre, post)` of the new leaf.
    pub(crate) fn splice_insert_leaf(
        &mut self,
        parent: NodeId,
        child_idx: usize,
        label: &str,
    ) -> (NodeId, u32, u32) {
        let n = self.len() as u32;
        let p = parent.index();
        let left = child_idx
            .checked_sub(1)
            .and_then(|i| self.children(parent).nth(i));
        let right = self.children(parent).nth(child_idx);
        assert!(
            child_idx == 0 || left.is_some(),
            "child_idx {child_idx} exceeds fanout"
        );

        // New ranks, computed from pre-splice values. In pre order the
        // leaf lands where its right sibling was (or right after the
        // parent's old extent); in post order it is visited right after
        // its left sibling's subtree (or first in the parent's subtree).
        let i = match right {
            Some(r) => self.pre[r.index()],
            None => self.pre_end[p] + 1,
        };
        let np = match left {
            Some(l) => self.post[l.index()] + 1,
            None => self.post[p] - (self.pre_end[p] - self.pre[p]),
        };

        // Generic rank shifts (one pass, branch-predictable); the new
        // slots open at pre `i` and post `np`.
        for v in 0..n as usize {
            if self.pre[v] >= i {
                self.pre[v] += 1;
            }
            if self.post[v] >= np {
                self.post[v] += 1;
            }
            if self.pre_end[v] >= i {
                self.pre_end[v] += 1;
            }
        }
        // Ancestors whose extent ended exactly at `i - 1` (the parent
        // chain when appending at the end) now extend through `i`.
        let mut a = parent.0;
        while a != NONE && self.pre_end[a as usize] == i - 1 {
            self.pre_end[a as usize] = i;
            a = self.parent[a as usize];
        }

        // Sibling positions after the insertion point shift right.
        let mut c = right;
        while let Some(r) = c {
            self.sib_idx[r.index()] += 1;
            c = self.next_sibling(r);
        }

        // Append the node's own columns.
        let id = NodeId(n);
        let sym = self.interner.intern(label);
        self.parent.push(parent.0);
        self.first_child.push(NONE);
        self.last_child.push(NONE);
        self.next_sibling.push(right.map_or(NONE, |r| r.0));
        self.prev_sibling.push(left.map_or(NONE, |l| l.0));
        self.label.push(sym);
        self.extra_offsets
            .push(*self.extra_offsets.last().expect("CSR is non-empty"));
        self.pre.push(i);
        self.post.push(np);
        self.depth.push(self.depth[p] + 1);
        self.sib_idx.push(child_idx as u32);
        self.pre_end.push(i);
        self.bflr.push(0); // recomputed below

        // Structural relink.
        match left {
            Some(l) => self.next_sibling[l.index()] = id.0,
            None => self.first_child[p] = id.0,
        }
        match right {
            Some(r) => self.prev_sibling[r.index()] = id.0,
            None => self.last_child[p] = id.0,
        }

        // Inverse maps: one contiguous memmove each.
        self.pre_to_node.insert(i as usize, id);
        self.post_to_node.insert(np as usize, id);
        self.recompute_bflr();

        // Posting repair: only the new label's run changes; every other
        // run keeps its node ids, whose relative pre order is untouched.
        self.ensure_symbol_runs();
        self.insert_posting(sym, id);

        (id, i, np)
    }

    /// Deletes the subtree rooted at `v` (non-root), compacting node ids
    /// and shifting survivor ranks by the subtree size. Returns the
    /// delta (with `removed` snapshots and the id remap).
    pub(crate) fn splice_delete_subtree(&mut self, v: NodeId) -> EditDelta {
        assert!(!self.is_root(v), "cannot delete the root");
        let n = self.len();
        let k = self.subtree_size(v);
        let (i0, i1) = (self.pre[v.index()], self.pre_end[v.index()]);
        let p1 = self.post[v.index()];
        let p0 = p1 + 1 - k;
        let parent = NodeId(self.parent[v.index()]);
        let parent_old_fanout = self.children(parent).count() as u32;

        // Snapshot the doomed nodes (pre order) while they are intact.
        let mut deleted = vec![false; n];
        let mut removed = Vec::with_capacity(k as usize);
        for r in i0..=i1 {
            let d = self.pre_to_node[r as usize];
            deleted[d.index()] = true;
            removed.push(RemovedNode {
                depth: self.depth[d.index()],
                fanout: self.children(d).count() as u32,
                labels: self.labels(d).collect(),
            });
        }

        // Structural unlink of `v` and sibling position repair.
        let (prev, next) = (self.prev_sibling[v.index()], self.next_sibling[v.index()]);
        if prev == NONE {
            self.first_child[parent.index()] = next;
        } else {
            self.next_sibling[prev as usize] = next;
        }
        if next == NONE {
            self.last_child[parent.index()] = prev;
        } else {
            self.prev_sibling[next as usize] = prev;
        }
        let mut c = next;
        while c != NONE {
            self.sib_idx[c as usize] -= 1;
            c = self.next_sibling[c as usize];
        }

        // Old id → new id by prefix sum over the survivor bitmap.
        let mut remap = vec![NONE; n];
        let mut next_id = 0u32;
        for (old, slot) in remap.iter_mut().enumerate() {
            if !deleted[old] {
                *slot = next_id;
                next_id += 1;
            }
        }

        // One ordered rewrite of every per-node column. Relative orders
        // are preserved, so ranks just shift by `k` past the splice.
        let m = n - k as usize;
        let relink = |val: u32, remap: &[u32]| {
            if val == NONE {
                NONE
            } else {
                remap[val as usize]
            }
        };
        macro_rules! compact {
            ($field:ident, $map:expr) => {{
                let mut out = Vec::with_capacity(m);
                for (old, dead) in deleted.iter().enumerate().take(n) {
                    if !dead {
                        out.push($map(self.$field[old]));
                    }
                }
                self.$field = out;
            }};
        }
        compact!(parent, |x| relink(x, &remap));
        compact!(first_child, |x| relink(x, &remap));
        compact!(last_child, |x| relink(x, &remap));
        compact!(next_sibling, |x| relink(x, &remap));
        compact!(prev_sibling, |x| relink(x, &remap));
        compact!(label, |x| x);
        compact!(depth, |x| x);
        compact!(sib_idx, |x| x);
        compact!(pre, |x: u32| if x > i1 { x - k } else { x });
        compact!(post, |x: u32| if x > p1 { x - k } else { x });
        compact!(pre_end, |x: u32| if x >= i1 { x - k } else { x });

        // Extras CSR for survivors.
        let mut extra_offsets = Vec::with_capacity(m + 1);
        let mut extra_syms = Vec::new();
        extra_offsets.push(0u32);
        for (old, dead) in deleted.iter().enumerate().take(n) {
            if !dead {
                let lo = self.extra_offsets[old] as usize;
                let hi = self.extra_offsets[old + 1] as usize;
                extra_syms.extend_from_slice(&self.extra_syms[lo..hi]);
                extra_offsets.push(extra_syms.len() as u32);
            }
        }
        self.extra_offsets = extra_offsets;
        self.extra_syms = extra_syms;

        // Inverse maps: drain the contiguous deleted ranges, remap ids.
        self.pre_to_node.drain(i0 as usize..=i1 as usize);
        self.post_to_node.drain(p0 as usize..=p1 as usize);
        for v in self.pre_to_node.iter_mut().chain(&mut self.post_to_node) {
            *v = NodeId(remap[v.index()]);
        }
        self.root = NodeId(remap[self.root.index()]);
        self.recompute_bflr();

        // Posting runs: drop deleted entries, remap survivors; each run
        // stays pre-sorted because survivor order is unchanged.
        let num_syms = self.label_offsets.len() - 1;
        let mut new_postings = Vec::with_capacity(self.label_postings.len());
        let mut new_offsets = Vec::with_capacity(num_syms + 1);
        new_offsets.push(0u32);
        for s in 0..num_syms {
            let lo = self.label_offsets[s] as usize;
            let hi = self.label_offsets[s + 1] as usize;
            for &node in &self.label_postings[lo..hi] {
                if !deleted[node.index()] {
                    new_postings.push(NodeId(remap[node.index()]));
                }
            }
            new_offsets.push(new_postings.len() as u32);
        }
        self.label_offsets = new_offsets;
        self.label_postings = new_postings;

        EditDelta {
            kind: EditKind::Delete,
            pre_range: (i0, i1),
            post_range: (p0, p1),
            node: None,
            parent: Some(NodeId(remap[parent.index()])),
            parent_old_fanout,
            old_label: None,
            old_labels: Vec::new(),
            new_label: None,
            removed,
            id_remap: Some(remap),
            refroze: false,
        }
    }

    /// Replaces the primary label of `v`, splicing the node between the
    /// two touched posting runs. Returns `(old, new)` symbols.
    pub(crate) fn splice_relabel(&mut self, v: NodeId, label: &str) -> (Symbol, Symbol) {
        let old = self.label[v.index()];
        let new = self.interner.intern(label);
        if old == new {
            return (old, new);
        }
        self.label[v.index()] = new;
        self.ensure_symbol_runs();
        // Extras never contain the primary (builder invariant, preserved
        // here), so the old run always loses the node.
        self.remove_posting(old, v);
        let lo = self.extra_offsets[v.index()] as usize;
        let hi = self.extra_offsets[v.index() + 1] as usize;
        if let Some(pos) = self.extra_syms[lo..hi].iter().position(|&s| s == new) {
            // Relabeling *to* an existing extra promotes it: drop the
            // extra (labels stay a set) and keep its posting entry.
            self.extra_syms.remove(lo + pos);
            for o in &mut self.extra_offsets[v.index() + 1..] {
                *o -= 1;
            }
        } else {
            self.insert_posting(new, v);
        }
        (old, new)
    }

    /// Grows the posting CSR with empty runs for symbols interned since
    /// the last freeze.
    fn ensure_symbol_runs(&mut self) {
        let want = self.interner.len() + 1;
        let last = *self.label_offsets.last().expect("CSR is non-empty");
        while self.label_offsets.len() < want {
            self.label_offsets.push(last);
        }
    }

    fn insert_posting(&mut self, sym: Symbol, v: NodeId) {
        let s = sym.0 as usize;
        let lo = self.label_offsets[s] as usize;
        let hi = self.label_offsets[s + 1] as usize;
        let rank = self.pre[v.index()];
        let pos = self.label_postings[lo..hi].partition_point(|&u| self.pre[u.index()] < rank);
        self.label_postings.insert(lo + pos, v);
        for o in &mut self.label_offsets[s + 1..] {
            *o += 1;
        }
    }

    fn remove_posting(&mut self, sym: Symbol, v: NodeId) {
        let s = sym.0 as usize;
        let lo = self.label_offsets[s] as usize;
        let hi = self.label_offsets[s + 1] as usize;
        let rank = self.pre[v.index()];
        let pos = self.label_postings[lo..hi].partition_point(|&u| self.pre[u.index()] < rank);
        debug_assert!(self.label_postings.get(lo + pos) == Some(&v));
        self.label_postings.remove(lo + pos);
        for o in &mut self.label_offsets[s + 1..] {
            *o -= 1;
        }
    }

    /// Recomputes the breadth-first order from the structural links —
    /// the one column a localized splice cannot repair (an insert can
    /// move arbitrarily many BFS ranks).
    fn recompute_bflr(&mut self) {
        let n = self.len();
        self.bflr_to_node.clear();
        self.bflr_to_node.reserve(n);
        let mut queue = VecDeque::with_capacity(n);
        queue.push_back(self.root);
        let mut next = 0u32;
        while let Some(v) = queue.pop_front() {
            self.bflr[v.index()] = next;
            self.bflr_to_node.push(v);
            next += 1;
            let mut c = self.first_child[v.index()];
            while c != NONE {
                queue.push_back(NodeId(c));
                c = self.next_sibling[c as usize];
            }
        }
        debug_assert_eq!(next as usize, n);
    }

    /// Full index rebuild from the structural links (labels included):
    /// the refreeze fallback, and the per-edit splices' correctness
    /// oracle in tests. Runs the same iterative DFS/BFS + counting sort
    /// as [`crate::TreeBuilder::freeze`].
    pub(crate) fn recompute_indexes(&mut self) {
        let n = self.len();
        self.pre_to_node.clear();
        self.post_to_node.clear();
        let mut stack: Vec<(NodeId, bool)> = vec![(self.root, false)];
        let mut next_pre = 0u32;
        let mut next_post = 0u32;
        while let Some((v, expanded)) = stack.pop() {
            if expanded {
                self.post[v.index()] = next_post;
                self.post_to_node.push(v);
                next_post += 1;
                self.pre_end[v.index()] = next_pre - 1;
                continue;
            }
            self.pre[v.index()] = next_pre;
            self.pre_to_node.push(v);
            next_pre += 1;
            let p = self.parent[v.index()];
            self.depth[v.index()] = if p == NONE {
                0
            } else {
                self.depth[p as usize] + 1
            };
            let ps = self.prev_sibling[v.index()];
            self.sib_idx[v.index()] = if ps == NONE {
                0
            } else {
                self.sib_idx[ps as usize] + 1
            };
            stack.push((v, true));
            let mut c = self.last_child[v.index()];
            while c != NONE {
                stack.push((NodeId(c), false));
                c = self.prev_sibling[c as usize];
            }
        }
        debug_assert_eq!(next_pre as usize, n);
        self.recompute_bflr();

        // Per-label postings by counting sort over pre order.
        let num_syms = self.interner.len();
        let mut offsets = vec![0u32; num_syms + 1];
        for &v in &self.pre_to_node {
            offsets[self.label[v.index()].0 as usize + 1] += 1;
            let lo = self.extra_offsets[v.index()] as usize;
            let hi = self.extra_offsets[v.index() + 1] as usize;
            for sym in &self.extra_syms[lo..hi] {
                offsets[sym.0 as usize + 1] += 1;
            }
        }
        for i in 0..num_syms {
            offsets[i + 1] += offsets[i];
        }
        let mut cursor = offsets.clone();
        let mut postings = vec![NodeId(0); *offsets.last().unwrap() as usize];
        for &v in &self.pre_to_node.clone() {
            let slot = &mut cursor[self.label[v.index()].0 as usize];
            postings[*slot as usize] = v;
            *slot += 1;
            let lo = self.extra_offsets[v.index()] as usize;
            let hi = self.extra_offsets[v.index() + 1] as usize;
            for s in 0..hi - lo {
                let sym = self.extra_syms[lo + s];
                let slot = &mut cursor[sym.0 as usize];
                postings[*slot as usize] = v;
                *slot += 1;
            }
        }
        self.label_offsets = offsets;
        self.label_postings = postings;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::term::{parse_term, to_term};
    use crate::TreeBuilder;

    /// Index-level equivalence by pre-rank alignment: every derived
    /// column of `a` must agree with `b`'s (node ids may differ).
    fn assert_index_equiv(a: &Tree, b: &Tree) {
        assert_eq!(a.len(), b.len());
        for r in 0..a.len() as u32 {
            let (x, y) = (a.node_at_pre(r), b.node_at_pre(r));
            assert_eq!(a.label_name(x), b.label_name(y), "label at pre {r}");
            assert_eq!(a.depth(x), b.depth(y), "depth at pre {r}");
            assert_eq!(a.post(x), b.post(y), "post at pre {r}");
            assert_eq!(a.bflr(x), b.bflr(y), "bflr at pre {r}");
            assert_eq!(a.pre_end(x), b.pre_end(y), "pre_end at pre {r}");
            assert_eq!(a.sibling_index(x), b.sibling_index(y), "sib_idx at {r}");
            assert_eq!(
                a.parent(x).map(|p| a.pre(p)),
                b.parent(y).map(|p| b.pre(p)),
                "parent at pre {r}"
            );
            assert_eq!(
                a.node_at_post(a.post(x)),
                x,
                "post inverse broken at pre {r}"
            );
            assert_eq!(
                a.node_at_bflr(a.bflr(x)),
                x,
                "bflr inverse broken at pre {r}"
            );
            let mut la: Vec<&str> = a.labels(x).map(|s| a.interner().name(s)).collect();
            let mut lb: Vec<&str> = b.labels(y).map(|s| b.interner().name(s)).collect();
            la.sort_unstable();
            lb.sort_unstable();
            assert_eq!(la, lb, "label multiset at pre {r}");
        }
        // Posting runs agree as pre-rank sequences, per label name.
        for (_, name) in a.interner().iter() {
            let pa: Vec<u32> = a
                .nodes_with_label_name(name)
                .iter()
                .map(|&v| a.pre(v))
                .collect();
            let pb: Vec<u32> = b
                .nodes_with_label_name(name)
                .iter()
                .map(|&v| b.pre(v))
                .collect();
            assert_eq!(pa, pb, "postings for {name}");
        }
    }

    /// Rebuilds a fresh frozen tree with the same shape and labels —
    /// the from-scratch oracle.
    fn rebuild(t: &Tree) -> Tree {
        let mut b = TreeBuilder::with_capacity(t.len());
        let mut map = vec![NodeId(0); t.len()];
        for v in t.pre_order() {
            let new = match t.parent(v) {
                None => b.root(t.label_name(v)),
                Some(p) => b.child(map[p.index()], t.label_name(v)),
            };
            map[v.index()] = new;
            let extras: Vec<String> = t
                .labels(v)
                .skip(1)
                .map(|s| t.interner().name(s).to_owned())
                .collect();
            for name in extras {
                b.add_label(new, &name);
            }
        }
        b.freeze()
    }

    #[test]
    fn insert_leaf_everywhere_matches_rebuild() {
        let base = parse_term("r(a(b c) d(e(f)) g)").unwrap();
        let n = base.len() as u32;
        for parent_pre in 0..n {
            let et0 = EditableTree::new(base.clone());
            let parent = et0.tree().node_at_pre(parent_pre);
            let fanout = et0.tree().children(parent).count();
            for idx in 0..=fanout {
                let mut et = EditableTree::new(base.clone());
                let parent = et.tree().node_at_pre(parent_pre);
                let (node, delta) = et.insert_leaf(parent, idx, "z");
                assert_eq!(et.tree().label_name(node), "z");
                assert_eq!(delta.kind, EditKind::Insert);
                assert_eq!(delta.pre_range.0, et.tree().pre(node));
                assert_index_equiv(et.tree(), &rebuild(et.tree()));
                et.assert_labels_consistent();
            }
        }
    }

    #[test]
    fn delete_every_subtree_matches_rebuild() {
        let base = parse_term("r(a(b c) d(e(f)) g)").unwrap();
        for pre in 1..base.len() as u32 {
            let mut et = EditableTree::new(base.clone());
            let v = et.tree().node_at_pre(pre);
            let size = et.tree().subtree_size(v) as usize;
            let delta = et.delete_subtree(v);
            assert_eq!(delta.kind, EditKind::Delete);
            assert_eq!(delta.removed.len(), size);
            assert_eq!(delta.nodes_delta(), -(size as i64));
            assert_index_equiv(et.tree(), &rebuild(et.tree()));
            et.assert_labels_consistent();
        }
    }

    #[test]
    fn relabel_moves_posting_runs() {
        let base = parse_term("r(a b a)").unwrap();
        let mut et = EditableTree::new(base);
        let v = et.tree().node_at_pre(2); // the b
        let delta = et.relabel(v, "a");
        assert_eq!(delta.kind, EditKind::Relabel);
        assert_eq!(et.tree().nodes_with_label_name("a").len(), 3);
        assert!(et.tree().nodes_with_label_name("b").is_empty());
        assert_index_equiv(et.tree(), &rebuild(et.tree()));
        // Relabel to a brand-new symbol extends the CSR.
        let delta = et.relabel(v, "zzz");
        assert_eq!(
            delta.new_label.map(|s| et.tree().interner().name(s)),
            Some("zzz")
        );
        assert_eq!(et.tree().nodes_with_label_name("zzz"), &[v]);
        assert_index_equiv(et.tree(), &rebuild(et.tree()));
    }

    #[test]
    fn random_scripts_match_rebuild() {
        // A deterministic pseudo-random walk over all three ops; every
        // intermediate state must equal its from-scratch rebuild.
        let mut et = EditableTree::new(parse_term("r(a(b) c)").unwrap());
        let mut state = 0x9E3779B97F4A7C15u64;
        let labels = ["a", "b", "c", "d"];
        for step in 0..200 {
            state = state
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            let n = et.tree().len() as u32;
            let op = match state % 3 {
                0 => EditOp::InsertLeaf {
                    parent_pre: (state >> 8) as u32 % n,
                    child_idx: (state >> 40) as u32 % 4,
                    label: labels[(state >> 16) as usize % labels.len()].to_owned(),
                },
                1 if n > 1 => EditOp::DeleteSubtree {
                    pre: (state >> 8) as u32 % n,
                },
                _ => EditOp::Relabel {
                    pre: (state >> 8) as u32 % n,
                    label: labels[(state >> 16) as usize % labels.len()].to_owned(),
                },
            };
            et.apply(&op);
            if step % 10 == 0 {
                assert_index_equiv(et.tree(), &rebuild(et.tree()));
                et.assert_labels_consistent();
            }
        }
        assert_index_equiv(et.tree(), &rebuild(et.tree()));
    }

    #[test]
    fn repeated_gap_insertion_triggers_refreeze() {
        // Repeatedly inserting just before the last sibling hits the
        // adjacent-label caret path, deepening labels by one component
        // per insert until the policy refreezes; labels stay consistent
        // throughout.
        let mut et = EditableTree::new(parse_term("r(a b)").unwrap());
        for _ in 0..16 {
            let root = et.tree().root();
            let fanout = et.tree().children(root).count();
            et.insert_leaf(root, fanout - 1, "m");
            et.assert_labels_consistent();
        }
        assert!(
            et.refreeze_count() > 0,
            "16 before-last insertions must exhaust the careting slack"
        );
        assert_index_equiv(et.tree(), &rebuild(et.tree()));
    }

    #[test]
    fn normalize_makes_every_op_total() {
        let t = parse_term("r(a)").unwrap();
        // Root deletion normalizes to a skip.
        assert_eq!(EditOp::DeleteSubtree { pre: 0 }.normalize(&t), None);
        // Out-of-range ranks wrap.
        let op = EditOp::Relabel {
            pre: 7,
            label: "x".into(),
        };
        assert_eq!(
            op.normalize(&t),
            Some(EditOp::Relabel {
                pre: 1,
                label: "x".into()
            })
        );
        let op = EditOp::InsertLeaf {
            parent_pre: 5,
            child_idx: 9,
            label: "x".into(),
        };
        assert_eq!(
            op.normalize(&t),
            Some(EditOp::InsertLeaf {
                parent_pre: 1,
                child_idx: 0,
                label: "x".into()
            })
        );
    }

    #[test]
    fn script_rendering_round_trips() {
        let script = vec![
            EditOp::InsertLeaf {
                parent_pre: 2,
                child_idx: 0,
                label: "a".into(),
            },
            EditOp::DeleteSubtree { pre: 3 },
            EditOp::Relabel {
                pre: 0,
                label: "b".into(),
            },
        ];
        let line = render_script(&script);
        assert_eq!(line, "insert(2,0,a); delete(3); relabel(0,b)");
        assert_eq!(parse_script(&line).unwrap(), script);
        assert!(EditOp::parse("frob(1)").is_err());
        assert!(EditOp::parse("insert(1,2,)").is_err());
        assert!(parse_script("").unwrap().is_empty());
    }

    #[test]
    fn multi_labeled_nodes_survive_edits() {
        let mut b = TreeBuilder::new();
        let r = b.root("r");
        let c = b.child(r, "a");
        b.add_label(c, "b");
        b.child(c, "x");
        let mut et = EditableTree::new(b.freeze());
        let v = et.tree().node_at_pre(1);
        // Relabel the primary while an extra stays: postings must keep
        // the node under the extra label.
        et.relabel(v, "c");
        assert!(et.tree().has_label_name(v, "b"));
        assert!(et.tree().has_label_name(v, "c"));
        assert_index_equiv(et.tree(), &rebuild(et.tree()));
        // Relabel *to* the extra: the node must not be double-posted.
        et.relabel(v, "b");
        assert_eq!(et.tree().nodes_with_label_name("b").len(), 1);
        assert_index_equiv(et.tree(), &rebuild(et.tree()));
        // And deleting around it keeps the CSR straight.
        let (_, _) = et.insert_leaf(et.tree().root(), 0, "y");
        let w = et.tree().node_at_pre(1);
        et.delete_subtree(w);
        assert_index_equiv(et.tree(), &rebuild(et.tree()));
    }

    #[test]
    fn term_round_trip_after_edits() {
        let mut et = EditableTree::new(parse_term("r(a b)").unwrap());
        let (leaf, _) = et.insert_leaf(et.tree().node_at_pre(1), 0, "c");
        assert_eq!(to_term(et.tree()), "r(a(c) b)");
        et.delete_subtree(leaf);
        assert_eq!(to_term(et.tree()), "r(a b)");
        let v = et.tree().node_at_pre(2);
        et.relabel(v, "q");
        assert_eq!(to_term(et.tree()), "r(a q)");
    }
}
