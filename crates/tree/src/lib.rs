#![warn(missing_docs)]

//! Unranked ordered labeled trees and their navigational structure.
//!
//! This crate is the data substrate for the whole workspace. It implements
//! the tree model of Section 2 of Koch, *Processing Queries on
//! Tree-Structured Data Efficiently* (PODS 2006):
//!
//! * unranked ordered finite trees with (possibly multiple) node labels,
//! * the axis relations `Child`, `Child+` (`Descendant`), `Child*`,
//!   `NextSibling`, `NextSibling+` (`Following-Sibling`), `NextSibling*`,
//!   `Following`, and their inverses,
//! * the three total node orders `<pre`, `<post`, and `<bflr`,
//! * node labeling schemes: every node carries its pre-order rank,
//!   post-order rank, depth, and subtree extent, so that every axis test is
//!   O(1) arithmetic (the "structural join" encoding of Section 2),
//! * whole-set axis images computed in `O(n)` by order sweeps — the
//!   workhorse behind all the linear-time evaluators in the sibling crates.
//!
//! Trees are constructed through [`TreeBuilder`] (or parsed from a term
//! syntax / a tiny XML subset) and then frozen into an immutable [`Tree`].
//! Freezing computes all orders and indexes once; afterwards the tree is
//! cheap to share by reference, which keeps borrow-checker ceremony out of
//! the query processors.

mod axis;
mod builder;
pub mod cancel;
pub mod edit;
mod enumerate;
mod generate;
mod label;
mod labeling;
mod nodeset;
mod order;
mod par;
pub mod scratch;
mod term;
mod tree;
mod xml;

pub use axis::Axis;
pub use builder::TreeBuilder;
pub use cancel::{CancelReason, CancelToken};
pub use edit::{
    parse_script, render_script, EditDelta, EditKind, EditOp, EditParseError, EditableTree,
    RemovedNode,
};
pub use enumerate::{all_labeled_trees, all_trees, count_trees};
pub use generate::{
    caterpillar, deep_path, full_binary, random_labels, random_recursive_tree,
    random_tree_with_depth, star, xmark_document, XmarkConfig,
};
pub use label::{LabelInterner, Symbol};
pub use labeling::{PathLabel, PathLabeling};
pub use nodeset::NodeSet;
pub use order::Order;
pub use par::{
    image_via_ranges, incoming_carries, incoming_carries_in_place, pre_range_at, pre_range_count,
    pre_ranges, CarryFlow, SweepCarry,
};
pub use term::{parse_term, to_term, TermError};
pub use tree::{Ancestors, Children, HotNode, NodeId, Tree};
pub use xml::{parse_xml, to_xml, XmlError};
