//! A compact term syntax for trees, used pervasively in tests and examples.
//!
//! Grammar: `tree ::= label ('+' label)* ( '(' tree+ ')' )?` where siblings
//! are separated by whitespace or commas and labels are identifiers over
//! `[A-Za-z0-9_#:.-]`. Multiple `+`-joined labels attach extra labels to the
//! node (the paper permits multi-labeled nodes).
//!
//! Example: `"a(b(a c) a(b d))"` is the tree of Figure 2(a).
//!
//! Both parsing and serialization are iterative, so arbitrarily deep trees
//! are handled without risking stack overflow.

use std::fmt::Write as _;

use crate::builder::TreeBuilder;
use crate::tree::{NodeId, Tree};

/// Error produced by [`parse_term`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TermError {
    /// Byte offset of the error in the input.
    pub offset: usize,
    /// Human-readable description.
    pub message: String,
}

impl std::fmt::Display for TermError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "term parse error at byte {}: {}",
            self.offset, self.message
        )
    }
}

impl std::error::Error for TermError {}

fn is_label_char(c: char) -> bool {
    c.is_ascii_alphanumeric() || matches!(c, '_' | '#' | ':' | '.' | '-')
}

struct Cursor<'a> {
    input: &'a str,
    pos: usize,
}

impl<'a> Cursor<'a> {
    fn err<T>(&self, message: impl Into<String>) -> Result<T, TermError> {
        Err(TermError {
            offset: self.pos,
            message: message.into(),
        })
    }

    fn peek(&self) -> Option<char> {
        self.input[self.pos..].chars().next()
    }

    fn bump(&mut self) {
        if let Some(c) = self.peek() {
            self.pos += c.len_utf8();
        }
    }

    fn skip_ws(&mut self) {
        while matches!(self.peek(), Some(c) if c.is_whitespace() || c == ',') {
            self.bump();
        }
    }

    fn label(&mut self) -> Result<&'a str, TermError> {
        let start = self.pos;
        while matches!(self.peek(), Some(c) if is_label_char(c)) {
            self.bump();
        }
        if self.pos == start {
            return self.err("expected a label");
        }
        Ok(&self.input[start..self.pos])
    }
}

/// Parses the term syntax into a frozen [`Tree`].
pub fn parse_term(input: &str) -> Result<Tree, TermError> {
    let mut c = Cursor { input, pos: 0 };
    let mut b = TreeBuilder::new();
    // Stack of nodes whose child list is currently open.
    let mut open: Vec<NodeId> = Vec::new();
    let mut root_done = false;

    c.skip_ws();
    loop {
        if root_done && open.is_empty() {
            break;
        }
        // One node: label(+label)* followed optionally by '('.
        let first = c.label()?;
        let id = match open.last() {
            Some(&p) => b.child(p, first),
            None => {
                if root_done {
                    return c.err("trailing input after tree");
                }
                root_done = true;
                b.root(first)
            }
        };
        while c.peek() == Some('+') {
            c.bump();
            let extra = c.label()?;
            b.add_label(id, extra);
        }
        c.skip_ws();
        if c.peek() == Some('(') {
            c.bump();
            c.skip_ws();
            if c.peek() == Some(')') {
                return c.err("empty child list");
            }
            open.push(id);
            continue;
        }
        // Node closed; close any parenthesized groups that end here.
        c.skip_ws();
        while c.peek() == Some(')') {
            if open.pop().is_none() {
                return c.err("unmatched ')'");
            }
            c.bump();
            c.skip_ws();
        }
        if open.is_empty() {
            break;
        }
    }
    c.skip_ws();
    if c.pos != input.len() {
        return c.err("trailing input after tree");
    }
    if !open.is_empty() {
        return c.err("unclosed '('");
    }
    if !root_done {
        return c.err("expected a tree");
    }
    Ok(b.freeze())
}

/// Serializes a tree back to the term syntax (inverse of [`parse_term`]).
pub fn to_term(t: &Tree) -> String {
    let mut out = String::with_capacity(t.len() * 4);
    // Explicit stack: `Ok(node)` renders a node, `Err(s)` emits punctuation.
    let mut stack: Vec<Result<NodeId, &str>> = vec![Ok(t.root())];
    while let Some(item) = stack.pop() {
        match item {
            Err(s) => out.push_str(s),
            Ok(v) => {
                let mut labels = t.labels(v);
                let _ = write!(out, "{}", t.interner().name(labels.next().expect("label")));
                for extra in labels {
                    let _ = write!(out, "+{}", t.interner().name(extra));
                }
                let children: Vec<_> = t.children(v).collect();
                if !children.is_empty() {
                    out.push('(');
                    stack.push(Err(")"));
                    for (i, &child) in children.iter().enumerate().rev() {
                        stack.push(Ok(child));
                        if i > 0 {
                            stack.push(Err(" "));
                        }
                    }
                }
            }
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_trip_simple() {
        for s in ["a", "a(b)", "a(b c)", "a(b(a c) a(b d))", "r(x(y(z)) w)"] {
            let t = parse_term(s).unwrap();
            assert_eq!(to_term(&t), s);
        }
    }

    #[test]
    fn commas_and_whitespace_are_separators() {
        let t = parse_term("a( b , c )").unwrap();
        assert_eq!(to_term(&t), "a(b c)");
    }

    #[test]
    fn multi_labels_round_trip() {
        let t = parse_term("a+x(b c+y)").unwrap();
        assert_eq!(to_term(&t), "a+x(b c+y)");
        let r = t.root();
        assert!(t.has_label_name(r, "x"));
    }

    #[test]
    fn errors() {
        assert!(parse_term("").is_err());
        assert!(parse_term("a(").is_err());
        assert!(parse_term("a()").is_err());
        assert!(parse_term("a)b").is_err());
        assert!(parse_term("a b").is_err()); // two roots
        assert!(parse_term("a(b))").is_err()); // unmatched close
    }

    #[test]
    fn nested_structure() {
        let t = parse_term("a(b(c d(e)) f)").unwrap();
        assert_eq!(t.len(), 6);
        assert_eq!(to_term(&t), "a(b(c d(e)) f)");
        let a = t.root();
        let b = t.first_child(a).unwrap();
        let f = t.next_sibling(b).unwrap();
        assert_eq!(t.label_name(f), "f");
        assert!(t.is_leaf(f));
    }

    #[test]
    fn deep_term_round_trip() {
        let mut s = String::new();
        for _ in 0..50_000 {
            s.push_str("x(");
        }
        s.push('y');
        for _ in 0..50_000 {
            s.push(')');
        }
        let t = parse_term(&s).unwrap();
        assert_eq!(t.len(), 50_001);
        assert_eq!(to_term(&t), s);
    }
}
