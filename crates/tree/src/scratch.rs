//! Thread-local scratch pools for the allocation-free hot kernels.
//!
//! Every linear-time evaluator in this workspace needs short-lived working
//! memory: bitsets for axis images, prefix-count arrays, staging vectors
//! for structural joins. Allocating those per call shows up directly in the
//! `obs::alloc` accounting and defeats the scan-friendly storage layout, so
//! this module pools them per thread. The discipline is strictly
//! take/put-balanced: a kernel takes buffers at entry and puts every one of
//! them back before returning (or hands the buffer to its caller, who puts
//! it back). After a warm-up pass over a given tree, the pools have reached
//! their high-water capacity and every subsequent take is allocation-free —
//! which is exactly what `tests/zero_alloc.rs` gates.
//!
//! Pools are LIFO stacks. Kernels that take several buffers in a loop put
//! them back in *reverse* order so that the next identical run pops buffers
//! in the same sequence it did during warm-up; capacities then line up
//! deterministically regardless of how work was interleaved in between.
//!
//! Puts are capped: a buffer whose capacity exceeds [`MAX_POOLED_BYTES`]
//! is shrunk before it re-enters the pool, so one query against a one-off
//! huge document does not pin that document's working set for the process
//! lifetime. The cap is far above anything the steady-state benchmarks
//! touch, so the zero-allocation gate is unaffected.

use std::cell::RefCell;
use std::mem::size_of;

use crate::nodeset::NodeSet;
use crate::par::SweepCarry;
use crate::tree::NodeId;

#[derive(Default)]
struct Pool {
    words: Vec<Vec<u64>>,
    u32s: Vec<Vec<u32>>,
    nodes: Vec<Vec<NodeId>>,
    pairs: Vec<Vec<(u32, u32)>>,
    carries: Vec<Vec<SweepCarry>>,
    sets: Vec<Vec<NodeSet>>,
}

thread_local! {
    static POOL: RefCell<Pool> = RefCell::new(Pool::default());
}

/// Upper bound on the capacity (in bytes) a single pooled buffer may
/// retain. Buffers above the cap are shrunk on put.
pub const MAX_POOLED_BYTES: usize = 1 << 20;

/// Shrink-on-put: clamps an oversized buffer's capacity before pooling.
/// The buffer is cleared first (a capped buffer's contents are garbage by
/// contract anyway — every take clears).
fn shrink<T>(v: &mut Vec<T>) {
    let max_len = MAX_POOLED_BYTES / size_of::<T>().max(1);
    if v.capacity() > max_len {
        v.clear();
        v.shrink_to(max_len);
    }
}

/// Takes an empty [`NodeSet`] over `universe` nodes from the pool.
pub fn take_set(universe: usize) -> NodeSet {
    let words = POOL
        .with(|p| p.borrow_mut().words.pop())
        .unwrap_or_default();
    NodeSet::from_recycled(words, universe)
}

/// Takes a full [`NodeSet`] over `universe` nodes from the pool.
pub fn take_full(universe: usize) -> NodeSet {
    let mut s = take_set(universe);
    s.make_full();
    s
}

/// Returns a set's word buffer to the pool.
pub fn put_set(s: NodeSet) {
    let mut words = s.into_words();
    shrink(&mut words);
    POOL.with(|p| p.borrow_mut().words.push(words));
}

/// Takes an empty `Vec<u32>` (capacity retained from earlier puts).
pub fn take_u32s() -> Vec<u32> {
    let mut v = POOL.with(|p| p.borrow_mut().u32s.pop()).unwrap_or_default();
    v.clear();
    v
}

/// Returns a `Vec<u32>` to the pool.
pub fn put_u32s(mut v: Vec<u32>) {
    shrink(&mut v);
    POOL.with(|p| p.borrow_mut().u32s.push(v));
}

/// Takes an empty `Vec<NodeId>`.
pub fn take_nodes() -> Vec<NodeId> {
    let mut v = POOL
        .with(|p| p.borrow_mut().nodes.pop())
        .unwrap_or_default();
    v.clear();
    v
}

/// Returns a `Vec<NodeId>` to the pool.
pub fn put_nodes(mut v: Vec<NodeId>) {
    shrink(&mut v);
    POOL.with(|p| p.borrow_mut().nodes.push(v));
}

/// Takes an empty `Vec<(u32, u32)>` (join stacks, posting staging).
pub fn take_pairs() -> Vec<(u32, u32)> {
    let mut v = POOL
        .with(|p| p.borrow_mut().pairs.pop())
        .unwrap_or_default();
    v.clear();
    v
}

/// Returns a `Vec<(u32, u32)>` to the pool.
pub fn put_pairs(mut v: Vec<(u32, u32)>) {
    shrink(&mut v);
    POOL.with(|p| p.borrow_mut().pairs.push(v));
}

/// Takes an empty `Vec<SweepCarry>` (per-chunk sweep carries).
pub fn take_carries() -> Vec<SweepCarry> {
    let mut v = POOL
        .with(|p| p.borrow_mut().carries.pop())
        .unwrap_or_default();
    v.clear();
    v
}

/// Returns a `Vec<SweepCarry>` to the pool.
pub fn put_carries(mut v: Vec<SweepCarry>) {
    shrink(&mut v);
    POOL.with(|p| p.borrow_mut().carries.push(v));
}

/// Takes an empty `Vec<NodeSet>` container (the member sets are taken
/// separately via [`take_set`]).
pub fn take_set_vec() -> Vec<NodeSet> {
    let mut v = POOL.with(|p| p.borrow_mut().sets.pop()).unwrap_or_default();
    debug_assert!(v.is_empty());
    v.clear();
    v
}

/// Returns a `Vec<NodeSet>` to the pool, recycling its member sets too
/// (drained in reverse so the next run pops them in take order).
pub fn put_set_vec(mut v: Vec<NodeSet>) {
    while let Some(s) = v.pop() {
        put_set(s);
    }
    shrink(&mut v);
    POOL.with(|p| p.borrow_mut().sets.push(v));
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn take_put_round_trips_capacity() {
        let mut s = take_set(130);
        s.insert(NodeId(129));
        put_set(s);
        let s2 = take_set(130);
        assert!(s2.is_empty(), "recycled sets come back cleared");
        assert_eq!(s2.universe(), 130);
        put_set(s2);

        let mut v = take_pairs();
        v.push((1, 2));
        let cap = v.capacity();
        put_pairs(v);
        let v2 = take_pairs();
        assert!(v2.is_empty());
        assert!(v2.capacity() >= cap);
        put_pairs(v2);
    }

    #[test]
    fn oversized_buffers_are_shrunk_on_put() {
        // A one-off huge take must not pin its capacity in the pool.
        let cap_u32 = MAX_POOLED_BYTES / size_of::<u32>();
        let mut v = take_u32s();
        v.reserve(4 * cap_u32);
        assert!(v.capacity() > cap_u32);
        put_u32s(v);
        let v2 = take_u32s();
        assert!(
            v2.capacity() <= cap_u32,
            "pooled capacity {} exceeds the {} cap",
            v2.capacity() * size_of::<u32>(),
            MAX_POOLED_BYTES
        );
        put_u32s(v2);

        // Bitset word buffers go through the same cap.
        let huge = take_set(64 * MAX_POOLED_BYTES);
        put_set(huge);
        let w = take_set(64);
        assert!(w.into_words().capacity() <= MAX_POOLED_BYTES / size_of::<u64>());

        // Buffers at or under the cap keep their capacity (the warm-up
        // contract the zero-alloc gate relies on).
        let mut small = take_pairs();
        small.reserve(1024);
        let cap = small.capacity();
        put_pairs(small);
        assert!(take_pairs().capacity() >= cap);
    }

    #[test]
    fn set_vec_recycles_members() {
        let mut sets = take_set_vec();
        sets.push(take_set(64));
        sets.push(take_full(64));
        put_set_vec(sets);
        let again = take_set_vec();
        assert!(again.is_empty());
        put_set_vec(again);
    }
}
