//! Mutable tree construction, frozen into an immutable [`Tree`].

use std::collections::HashMap;

use crate::label::{LabelInterner, Symbol};
use crate::tree::{NodeId, Tree, NONE};

/// Incremental builder for [`Tree`].
///
/// Nodes are appended under an existing parent (children in left-to-right
/// insertion order); [`TreeBuilder::freeze`] computes all orders and
/// indexes and returns the immutable tree.
///
/// ```
/// use treequery_tree::TreeBuilder;
/// let mut b = TreeBuilder::new();
/// let root = b.root("site");
/// let a = b.child(root, "regions");
/// b.child(a, "africa");
/// b.child(root, "people");
/// let tree = b.freeze();
/// assert_eq!(tree.len(), 4);
/// assert_eq!(tree.label_name(tree.root()), "site");
/// ```
pub struct TreeBuilder {
    interner: LabelInterner,
    parent: Vec<u32>,
    first_child: Vec<u32>,
    last_child: Vec<u32>,
    next_sibling: Vec<u32>,
    prev_sibling: Vec<u32>,
    label: Vec<Symbol>,
    extra_labels: HashMap<u32, Vec<Symbol>>,
    root: Option<NodeId>,
}

impl Default for TreeBuilder {
    fn default() -> Self {
        Self::new()
    }
}

impl TreeBuilder {
    /// Creates an empty builder.
    pub fn new() -> Self {
        Self {
            interner: LabelInterner::new(),
            parent: Vec::new(),
            first_child: Vec::new(),
            last_child: Vec::new(),
            next_sibling: Vec::new(),
            prev_sibling: Vec::new(),
            label: Vec::new(),
            extra_labels: HashMap::new(),
            root: None,
        }
    }

    /// Creates an empty builder with capacity for `n` nodes.
    pub fn with_capacity(n: usize) -> Self {
        let mut b = Self::new();
        b.parent.reserve(n);
        b.first_child.reserve(n);
        b.last_child.reserve(n);
        b.next_sibling.reserve(n);
        b.prev_sibling.reserve(n);
        b.label.reserve(n);
        b
    }

    /// Number of nodes added so far.
    pub fn len(&self) -> usize {
        self.label.len()
    }

    /// Whether no node has been added yet.
    pub fn is_empty(&self) -> bool {
        self.label.is_empty()
    }

    /// Interns a label in the tree's alphabet.
    pub fn intern(&mut self, name: &str) -> Symbol {
        self.interner.intern(name)
    }

    fn push_node(&mut self, label: Symbol) -> NodeId {
        let id = NodeId(u32::try_from(self.label.len()).expect("too many nodes"));
        self.parent.push(NONE);
        self.first_child.push(NONE);
        self.last_child.push(NONE);
        self.next_sibling.push(NONE);
        self.prev_sibling.push(NONE);
        self.label.push(label);
        id
    }

    /// Creates the root node.
    ///
    /// # Panics
    /// Panics if a root already exists.
    pub fn root(&mut self, label: &str) -> NodeId {
        let sym = self.intern(label);
        self.root_sym(sym)
    }

    /// Creates the root node with an already-interned label.
    pub fn root_sym(&mut self, label: Symbol) -> NodeId {
        assert!(self.root.is_none(), "tree already has a root");
        let id = self.push_node(label);
        self.root = Some(id);
        id
    }

    /// Appends a new rightmost child of `parent`.
    pub fn child(&mut self, parent: NodeId, label: &str) -> NodeId {
        let sym = self.intern(label);
        self.child_sym(parent, sym)
    }

    /// Appends a new rightmost child of `parent` with an interned label.
    pub fn child_sym(&mut self, parent: NodeId, label: Symbol) -> NodeId {
        assert!(parent.index() < self.label.len(), "unknown parent node");
        let id = self.push_node(label);
        self.parent[id.index()] = parent.0;
        let last = self.last_child[parent.index()];
        if last == NONE {
            self.first_child[parent.index()] = id.0;
        } else {
            self.next_sibling[last as usize] = id.0;
            self.prev_sibling[id.index()] = last;
        }
        self.last_child[parent.index()] = id.0;
        id
    }

    /// Attaches an additional label to a node (the paper allows
    /// multi-labeled nodes for the tractability results).
    pub fn add_label(&mut self, node: NodeId, label: &str) {
        let sym = self.intern(label);
        let extra = self.extra_labels.entry(node.0).or_default();
        if self.label[node.index()] != sym && !extra.contains(&sym) {
            extra.push(sym);
        }
    }

    /// Freezes the builder into an immutable [`Tree`], computing the
    /// `<pre`, `<post`, `<bflr` orders, depths, sibling indexes, subtree
    /// extents and the per-label index in O(n).
    ///
    /// # Panics
    /// Panics if no root was created.
    pub fn freeze(self) -> Tree {
        let root = self.root.expect("cannot freeze a tree without a root");
        let n = self.label.len();
        let mut pre = vec![0u32; n];
        let mut post = vec![0u32; n];
        let mut bflr = vec![0u32; n];
        let mut depth = vec![0u32; n];
        let mut sib_idx = vec![0u32; n];
        let mut pre_end = vec![0u32; n];
        let mut pre_to_node = Vec::with_capacity(n);
        let mut post_to_node = Vec::with_capacity(n);
        let mut bflr_to_node = Vec::with_capacity(n);

        // Iterative depth-first traversal computing pre, post, depth,
        // sibling index and subtree extents without recursion (trees can be
        // arbitrarily deep).
        let mut stack: Vec<(NodeId, bool)> = vec![(root, false)];
        let mut next_pre = 0u32;
        let mut next_post = 0u32;
        while let Some((v, expanded)) = stack.pop() {
            if expanded {
                post[v.index()] = next_post;
                post_to_node.push(v);
                next_post += 1;
                pre_end[v.index()] = next_pre - 1;
                continue;
            }
            pre[v.index()] = next_pre;
            pre_to_node.push(v);
            next_pre += 1;
            if let Some(p) = (self.parent[v.index()] != NONE).then(|| self.parent[v.index()]) {
                depth[v.index()] = depth[p as usize] + 1;
            }
            if self.prev_sibling[v.index()] != NONE {
                sib_idx[v.index()] = sib_idx[self.prev_sibling[v.index()] as usize] + 1;
            }
            stack.push((v, true));
            // Push children right-to-left (walking prev_sibling from the
            // last child) so the leftmost child is popped first.
            let mut c = self.last_child[v.index()];
            while c != NONE {
                stack.push((NodeId(c), false));
                c = self.prev_sibling[c as usize];
            }
        }
        debug_assert_eq!(next_pre as usize, n);
        debug_assert_eq!(next_post as usize, n);

        // Breadth-first left-to-right order.
        let mut queue = std::collections::VecDeque::with_capacity(n);
        queue.push_back(root);
        let mut next_bflr = 0u32;
        while let Some(v) = queue.pop_front() {
            bflr[v.index()] = next_bflr;
            bflr_to_node.push(v);
            next_bflr += 1;
            let mut c = self.first_child[v.index()];
            while c != NONE {
                queue.push_back(NodeId(c));
                c = self.next_sibling[c as usize];
            }
        }
        debug_assert_eq!(next_bflr as usize, n);

        // Flatten the builder's extra-label map into a CSR column over
        // node ids (most nodes have no extras, so the payload stays tiny).
        let mut extra_offsets = vec![0u32; n + 1];
        for (&node, extra) in &self.extra_labels {
            extra_offsets[node as usize + 1] = extra.len() as u32;
        }
        for i in 0..n {
            extra_offsets[i + 1] += extra_offsets[i];
        }
        let mut extra_syms = vec![Symbol(0); *extra_offsets.last().unwrap() as usize];
        for (&node, extra) in &self.extra_labels {
            let lo = extra_offsets[node as usize] as usize;
            extra_syms[lo..lo + extra.len()].copy_from_slice(extra);
        }

        // Per-label document-order posting lists as a CSR column indexed by
        // the dense symbol id, built by counting sort over pre order.
        let num_syms = self.interner.len();
        let mut label_offsets = vec![0u32; num_syms + 1];
        for &v in &pre_to_node {
            label_offsets[self.label[v.index()].0 as usize + 1] += 1;
            let lo = extra_offsets[v.index()] as usize;
            let hi = extra_offsets[v.index() + 1] as usize;
            for sym in &extra_syms[lo..hi] {
                label_offsets[sym.0 as usize + 1] += 1;
            }
        }
        for i in 0..num_syms {
            label_offsets[i + 1] += label_offsets[i];
        }
        let mut cursor = label_offsets.clone();
        let mut label_postings = vec![NodeId(0); *label_offsets.last().unwrap() as usize];
        for &v in &pre_to_node {
            let slot = &mut cursor[self.label[v.index()].0 as usize];
            label_postings[*slot as usize] = v;
            *slot += 1;
            let lo = extra_offsets[v.index()] as usize;
            let hi = extra_offsets[v.index() + 1] as usize;
            for sym in &extra_syms[lo..hi] {
                let slot = &mut cursor[sym.0 as usize];
                label_postings[*slot as usize] = v;
                *slot += 1;
            }
        }

        Tree {
            interner: self.interner,
            parent: self.parent,
            first_child: self.first_child,
            last_child: self.last_child,
            next_sibling: self.next_sibling,
            prev_sibling: self.prev_sibling,
            label: self.label,
            extra_offsets,
            extra_syms,
            pre,
            post,
            bflr,
            depth,
            sib_idx,
            pre_end,
            pre_to_node,
            post_to_node,
            bflr_to_node,
            root,
            label_offsets,
            label_postings,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn single_node_tree() {
        let mut b = TreeBuilder::new();
        b.root("a");
        let t = b.freeze();
        assert_eq!(t.len(), 1);
        assert_eq!(t.pre(t.root()), 0);
        assert_eq!(t.post(t.root()), 0);
        assert_eq!(t.bflr(t.root()), 0);
        assert!(t.is_leaf(t.root()));
        assert!(t.is_root(t.root()));
    }

    #[test]
    fn sibling_links_are_consistent() {
        let mut b = TreeBuilder::new();
        let r = b.root("r");
        let c1 = b.child(r, "c1");
        let c2 = b.child(r, "c2");
        let c3 = b.child(r, "c3");
        let t = b.freeze();
        assert_eq!(t.first_child(r), Some(c1));
        assert_eq!(t.last_child(r), Some(c3));
        assert_eq!(t.next_sibling(c1), Some(c2));
        assert_eq!(t.next_sibling(c2), Some(c3));
        assert_eq!(t.prev_sibling(c3), Some(c2));
        assert_eq!(t.sibling_index(c1), 0);
        assert_eq!(t.sibling_index(c3), 2);
        assert!(t.is_first_sibling(c1));
        assert!(t.is_last_sibling(c3));
    }

    #[test]
    fn multi_labels() {
        let mut b = TreeBuilder::new();
        let r = b.root("a");
        b.add_label(r, "b");
        b.add_label(r, "b"); // duplicate is ignored
        b.add_label(r, "a"); // same as primary, ignored
        let t = b.freeze();
        assert!(t.has_label_name(r, "a"));
        assert!(t.has_label_name(r, "b"));
        assert_eq!(t.labels(r).count(), 2);
        let b_sym = t.symbol("b").unwrap();
        assert_eq!(t.nodes_with_label(b_sym), &[r]);
    }

    #[test]
    #[should_panic(expected = "already has a root")]
    fn double_root_panics() {
        let mut b = TreeBuilder::new();
        b.root("a");
        b.root("b");
    }

    #[test]
    fn deep_tree_does_not_overflow_stack() {
        let mut b = TreeBuilder::new();
        let mut cur = b.root("x");
        for _ in 0..200_000 {
            cur = b.child(cur, "x");
        }
        let t = b.freeze();
        assert_eq!(t.height(), 200_000);
        assert_eq!(t.pre(cur), 200_000);
        assert_eq!(t.post(cur), 0);
    }

    #[test]
    fn pre_post_inverses() {
        let mut b = TreeBuilder::new();
        let r = b.root("r");
        for i in 0..5 {
            let c = b.child(r, "c");
            if i % 2 == 0 {
                b.child(c, "d");
            }
        }
        let t = b.freeze();
        for v in t.nodes() {
            assert_eq!(t.node_at_pre(t.pre(v)), v);
            assert_eq!(t.node_at_post(t.post(v)), v);
            assert_eq!(t.node_at_bflr(t.bflr(v)), v);
        }
    }
}
