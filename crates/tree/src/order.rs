//! The three total node orders of Section 2: `<pre`, `<post`, `<bflr`.

use crate::tree::{NodeId, Tree};

/// A total order on the nodes of a tree.
///
/// * [`Order::Pre`] — document order: the order in which opening tags are
///   seen when reading the XML serialization left to right.
/// * [`Order::Post`] — the order of closing tags.
/// * [`Order::Bflr`] — breadth-first left-to-right traversal order.
///
/// These are the orders for which the X-underbar property of Section 6 is
/// examined (Proposition 6.6).
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum Order {
    /// `<pre` — pre-order / document order.
    Pre,
    /// `<post` — post-order.
    Post,
    /// `<bflr` — breadth-first left-to-right order.
    Bflr,
}

impl Order {
    /// All three orders.
    pub const ALL: [Order; 3] = [Order::Pre, Order::Post, Order::Bflr];

    /// Rank of `v` in this order (0-based).
    #[inline]
    pub fn rank(self, t: &Tree, v: NodeId) -> u32 {
        match self {
            Order::Pre => t.pre(v),
            Order::Post => t.post(v),
            Order::Bflr => t.bflr(v),
        }
    }

    /// Whether `x` precedes `y` strictly in this order.
    #[inline]
    pub fn lt(self, t: &Tree, x: NodeId, y: NodeId) -> bool {
        self.rank(t, x) < self.rank(t, y)
    }

    /// The node at the given rank.
    #[inline]
    pub fn node_at(self, t: &Tree, rank: u32) -> NodeId {
        match self {
            Order::Pre => t.node_at_pre(rank),
            Order::Post => t.node_at_post(rank),
            Order::Bflr => t.node_at_bflr(rank),
        }
    }

    /// The minimum node of a non-empty iterator w.r.t. this order.
    pub fn min_of(self, t: &Tree, nodes: impl IntoIterator<Item = NodeId>) -> Option<NodeId> {
        nodes.into_iter().min_by_key(|&v| self.rank(t, v))
    }

    /// The display name used in the paper.
    pub fn name(self) -> &'static str {
        match self {
            Order::Pre => "<pre",
            Order::Post => "<post",
            Order::Bflr => "<bflr",
        }
    }
}

impl std::fmt::Display for Order {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.name())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::term::parse_term;

    #[test]
    fn pre_post_characterize_descendant_and_following() {
        // Section 2: Child⁺(x,y) ⇔ x<pre y ∧ y<post x and
        // Following(x,y) ⇔ x<pre y ∧ x<post y.
        let t = parse_term("a(b(c d) e(f(g)) h)").unwrap();
        for x in t.nodes() {
            for y in t.nodes() {
                let desc = Order::Pre.lt(&t, x, y) && Order::Post.lt(&t, y, x);
                assert_eq!(desc, t.is_ancestor(x, y));
                let fol = Order::Pre.lt(&t, x, y) && Order::Post.lt(&t, x, y);
                assert_eq!(fol, t.is_following(x, y));
            }
        }
    }

    #[test]
    fn ranks_are_permutations() {
        let t = parse_term("a(b(c) d(e f))").unwrap();
        for ord in Order::ALL {
            let mut seen = vec![false; t.len()];
            for v in t.nodes() {
                let r = ord.rank(&t, v) as usize;
                assert!(!seen[r], "{ord} rank {r} duplicated");
                seen[r] = true;
                assert_eq!(ord.node_at(&t, r as u32), v);
            }
        }
    }

    #[test]
    fn min_of() {
        let t = parse_term("a(b c)").unwrap();
        let all: Vec<_> = t.nodes().collect();
        assert_eq!(Order::Pre.min_of(&t, all.iter().copied()), Some(t.root()));
        assert_eq!(
            Order::Post.min_of(&t, all.iter().copied()),
            Some(t.first_child(t.root()).unwrap())
        );
        assert_eq!(Order::Pre.min_of(&t, std::iter::empty()), None);
    }
}
