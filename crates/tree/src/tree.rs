//! The frozen, fully indexed tree.

use std::fmt;

use crate::label::{LabelInterner, Symbol};

/// Sentinel for "no node" inside the packed arrays.
pub(crate) const NONE: u32 = u32::MAX;

/// Identifier of a tree node (index in creation order, stable across
/// freezing). `NodeId`s of different trees must not be mixed.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct NodeId(pub u32);

impl NodeId {
    /// The dense index of the node.
    #[inline]
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

impl fmt::Debug for NodeId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "n{}", self.0)
    }
}

/// An immutable unranked ordered labeled tree with all navigational indexes
/// precomputed.
///
/// In the paper's terms this is a structure over the signature
/// τ⁺ = ⟨Dom, Root, Leaf, (Labₐ)ₐ, FirstChild, NextSibling, LastSibling⟩,
/// together with the derived orders `<pre`, `<post`, `<bflr` and the subtree
/// extents that turn all axis membership tests into O(1) arithmetic
/// (Section 2: "a node-labeled tree can be completely represented by one
/// triple (i, j, a)" of pre-index, post-index and label).
///
/// Trees clone cheaply enough for test tooling (all index vectors are
/// copied); the fuzzing subsystem relies on this to mutate and shrink
/// inputs without threading borrows through its pipeline.
#[derive(Clone)]
pub struct Tree {
    pub(crate) interner: LabelInterner,
    pub(crate) parent: Vec<u32>,
    pub(crate) first_child: Vec<u32>,
    pub(crate) last_child: Vec<u32>,
    pub(crate) next_sibling: Vec<u32>,
    pub(crate) prev_sibling: Vec<u32>,
    pub(crate) label: Vec<Symbol>,
    /// Extra labels for multi-labeled nodes (rare; the paper allows multiple
    /// labels for the tractability results), as a CSR column: the extras of
    /// node `v` are `extra_syms[extra_offsets[v] .. extra_offsets[v+1]]`.
    pub(crate) extra_offsets: Vec<u32>,
    pub(crate) extra_syms: Vec<Symbol>,
    /// Rank of each node in pre-order (document order).
    pub(crate) pre: Vec<u32>,
    /// Rank of each node in post-order.
    pub(crate) post: Vec<u32>,
    /// Rank of each node in breadth-first left-to-right order.
    pub(crate) bflr: Vec<u32>,
    /// Depth (root has depth 0).
    pub(crate) depth: Vec<u32>,
    /// Position among siblings (first child has index 0).
    pub(crate) sib_idx: Vec<u32>,
    /// Pre-order rank of the last descendant of each node (the node's own
    /// pre rank if it is a leaf). Descendants of `v` occupy exactly the pre
    /// ranks `pre(v)+1 ..= pre_end(v)`.
    pub(crate) pre_end: Vec<u32>,
    pub(crate) pre_to_node: Vec<NodeId>,
    pub(crate) post_to_node: Vec<NodeId>,
    pub(crate) bflr_to_node: Vec<NodeId>,
    pub(crate) root: NodeId,
    /// Per-label document-order posting lists, as a CSR column indexed by
    /// the dense [`Symbol`] id: nodes carrying label `sym` (primary or
    /// extra), sorted by pre rank, are
    /// `label_postings[label_offsets[sym] .. label_offsets[sym+1]]`.
    pub(crate) label_offsets: Vec<u32>,
    pub(crate) label_postings: Vec<NodeId>,
}

/// One node's hot traversal columns gathered into a packed record: the five
/// structural links, the primary label and the six order/extent ranks. The
/// storage stays struct-of-arrays (each column is scanned independently by
/// the sweeps); this type exists to pin the cache-footprint contract — all
/// per-node hot state fits a single 64-byte cache line.
#[repr(C)]
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct HotNode {
    /// Raw parent link (`NONE` for the root).
    pub parent: u32,
    /// Raw first-child link (`NONE` for leaves).
    pub first_child: u32,
    /// Raw last-child link (`NONE` for leaves).
    pub last_child: u32,
    /// Raw next-sibling link (`NONE` for last siblings).
    pub next_sibling: u32,
    /// Raw previous-sibling link (`NONE` for first siblings).
    pub prev_sibling: u32,
    /// Primary label.
    pub label: Symbol,
    /// Pre-order rank.
    pub pre: u32,
    /// Post-order rank.
    pub post: u32,
    /// Pre-order rank of the last descendant.
    pub pre_end: u32,
    /// Depth (root is 0).
    pub depth: u32,
    /// Position among siblings.
    pub sib_idx: u32,
    /// Breadth-first left-to-right rank.
    pub bflr: u32,
}

const _: () = assert!(
    std::mem::size_of::<HotNode>() <= 64,
    "hot per-node traversal columns must fit one cache line"
);

#[inline]
fn opt(raw: u32) -> Option<NodeId> {
    (raw != NONE).then_some(NodeId(raw))
}

impl Tree {
    /// Number of nodes.
    #[inline]
    pub fn len(&self) -> usize {
        self.label.len()
    }

    /// A tree always has at least a root; this is never true for frozen
    /// trees but kept for API completeness.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.label.is_empty()
    }

    /// The root node.
    #[inline]
    pub fn root(&self) -> NodeId {
        self.root
    }

    /// The label interner owned by this tree.
    #[inline]
    pub fn interner(&self) -> &LabelInterner {
        &self.interner
    }

    /// Resolves a label name against this tree's alphabet.
    #[inline]
    pub fn symbol(&self, name: &str) -> Option<Symbol> {
        self.interner.lookup(name)
    }

    /// The parent of `v`, if any.
    #[inline]
    pub fn parent(&self, v: NodeId) -> Option<NodeId> {
        opt(self.parent[v.index()])
    }

    /// The first (leftmost) child of `v`, if any.
    #[inline]
    pub fn first_child(&self, v: NodeId) -> Option<NodeId> {
        opt(self.first_child[v.index()])
    }

    /// The last (rightmost) child of `v`, if any.
    #[inline]
    pub fn last_child(&self, v: NodeId) -> Option<NodeId> {
        opt(self.last_child[v.index()])
    }

    /// The next sibling of `v`, if any.
    #[inline]
    pub fn next_sibling(&self, v: NodeId) -> Option<NodeId> {
        opt(self.next_sibling[v.index()])
    }

    /// The previous sibling of `v`, if any.
    #[inline]
    pub fn prev_sibling(&self, v: NodeId) -> Option<NodeId> {
        opt(self.prev_sibling[v.index()])
    }

    /// The primary label of `v`.
    #[inline]
    pub fn label(&self, v: NodeId) -> Symbol {
        self.label[v.index()]
    }

    /// The primary label of `v` as a string.
    #[inline]
    pub fn label_name(&self, v: NodeId) -> &str {
        self.interner.name(self.label[v.index()])
    }

    /// The extra (non-primary) labels of `v`, from the CSR column.
    #[inline]
    fn extra_labels(&self, v: NodeId) -> &[Symbol] {
        let lo = self.extra_offsets[v.index()] as usize;
        let hi = self.extra_offsets[v.index() + 1] as usize;
        &self.extra_syms[lo..hi]
    }

    /// All labels of `v` (primary first, then extras).
    pub fn labels(&self, v: NodeId) -> impl Iterator<Item = Symbol> + '_ {
        std::iter::once(self.label[v.index()]).chain(self.extra_labels(v).iter().copied())
    }

    /// Whether `v` carries label `sym` (as primary or extra label).
    pub fn has_label(&self, v: NodeId, sym: Symbol) -> bool {
        self.label[v.index()] == sym || self.extra_labels(v).contains(&sym)
    }

    /// Whether `v` carries the label named `name`.
    pub fn has_label_name(&self, v: NodeId, name: &str) -> bool {
        self.symbol(name).is_some_and(|sym| self.has_label(v, sym))
    }

    /// Pre-order rank of `v` ("document order", `<pre`).
    #[inline]
    pub fn pre(&self, v: NodeId) -> u32 {
        self.pre[v.index()]
    }

    /// Post-order rank of `v` (`<post`).
    #[inline]
    pub fn post(&self, v: NodeId) -> u32 {
        self.post[v.index()]
    }

    /// Breadth-first left-to-right rank of `v` (`<bflr`).
    #[inline]
    pub fn bflr(&self, v: NodeId) -> u32 {
        self.bflr[v.index()]
    }

    /// Depth of `v`; the root has depth 0.
    #[inline]
    pub fn depth(&self, v: NodeId) -> u32 {
        self.depth[v.index()]
    }

    /// Height of the tree: maximum depth over all nodes.
    pub fn height(&self) -> u32 {
        self.depth.iter().copied().max().unwrap_or(0)
    }

    /// Position of `v` among its siblings (first child ↦ 0; the root ↦ 0).
    #[inline]
    pub fn sibling_index(&self, v: NodeId) -> u32 {
        self.sib_idx[v.index()]
    }

    /// Pre-order rank of the last descendant of `v` (its own rank for a
    /// leaf). The proper descendants of `v` are exactly the nodes with pre
    /// rank in `pre(v)+1 ..= pre_end(v)`.
    #[inline]
    pub fn pre_end(&self, v: NodeId) -> u32 {
        self.pre_end[v.index()]
    }

    /// Number of nodes in the subtree rooted at `v` (including `v`).
    #[inline]
    pub fn subtree_size(&self, v: NodeId) -> u32 {
        self.pre_end[v.index()] - self.pre[v.index()] + 1
    }

    /// The node with the given pre-order rank.
    #[inline]
    pub fn node_at_pre(&self, rank: u32) -> NodeId {
        self.pre_to_node[rank as usize]
    }

    /// The node with the given post-order rank.
    #[inline]
    pub fn node_at_post(&self, rank: u32) -> NodeId {
        self.post_to_node[rank as usize]
    }

    /// The node with the given breadth-first rank.
    #[inline]
    pub fn node_at_bflr(&self, rank: u32) -> NodeId {
        self.bflr_to_node[rank as usize]
    }

    /// Whether `v` is the root.
    #[inline]
    pub fn is_root(&self, v: NodeId) -> bool {
        self.parent[v.index()] == NONE
    }

    /// Whether `v` is a leaf.
    #[inline]
    pub fn is_leaf(&self, v: NodeId) -> bool {
        self.first_child[v.index()] == NONE
    }

    /// Whether `v` has no previous sibling (`FirstSibling` of Section 3).
    #[inline]
    pub fn is_first_sibling(&self, v: NodeId) -> bool {
        self.prev_sibling[v.index()] == NONE
    }

    /// Whether `v` has no next sibling (`LastSibling` of Section 3).
    #[inline]
    pub fn is_last_sibling(&self, v: NodeId) -> bool {
        self.next_sibling[v.index()] == NONE
    }

    /// Whether `x` is a proper ancestor of `y` (`Child⁺(x, y)`), decided in
    /// O(1) by the pre/post characterization of Section 2:
    /// `Child⁺(x,y) ⇔ x <pre y ∧ y <post x`.
    #[inline]
    pub fn is_ancestor(&self, x: NodeId, y: NodeId) -> bool {
        self.pre(x) < self.pre(y) && self.post(y) < self.post(x)
    }

    /// Whether `Following(x, y)` holds: `x <pre y ∧ x <post y` (Section 2).
    #[inline]
    pub fn is_following(&self, x: NodeId, y: NodeId) -> bool {
        self.pre(x) < self.pre(y) && self.post(x) < self.post(y)
    }

    /// All nodes, in `NodeId` order.
    pub fn nodes(&self) -> impl Iterator<Item = NodeId> {
        (0..self.len() as u32).map(NodeId)
    }

    /// All nodes in pre-order (document order).
    pub fn pre_order(&self) -> impl Iterator<Item = NodeId> + '_ {
        self.pre_to_node.iter().copied()
    }

    /// All nodes in post-order.
    pub fn post_order(&self) -> impl Iterator<Item = NodeId> + '_ {
        self.post_to_node.iter().copied()
    }

    /// All nodes in breadth-first left-to-right order.
    pub fn bflr_order(&self) -> impl Iterator<Item = NodeId> + '_ {
        self.bflr_to_node.iter().copied()
    }

    /// The children of `v`, left to right.
    pub fn children(&self, v: NodeId) -> Children<'_> {
        Children {
            tree: self,
            cur: self.first_child[v.index()],
        }
    }

    /// The proper ancestors of `v`, nearest first.
    pub fn ancestors(&self, v: NodeId) -> Ancestors<'_> {
        Ancestors {
            tree: self,
            cur: self.parent[v.index()],
        }
    }

    /// Nodes carrying label `sym`, sorted by pre-order rank, as a borrowed
    /// slice of the posting-list column. Empty slice if the label does not
    /// occur (including symbols outside this tree's alphabet).
    pub fn nodes_with_label(&self, sym: Symbol) -> &[NodeId] {
        let i = sym.0 as usize;
        if i + 1 >= self.label_offsets.len() {
            return &[];
        }
        let lo = self.label_offsets[i] as usize;
        let hi = self.label_offsets[i + 1] as usize;
        &self.label_postings[lo..hi]
    }

    /// Nodes carrying the label named `name`, sorted by pre-order rank.
    pub fn nodes_with_label_name(&self, name: &str) -> &[NodeId] {
        self.symbol(name)
            .map_or(&[], |sym| self.nodes_with_label(sym))
    }

    /// `||A||`: the size of the structure in a reasonable machine
    /// representation — nodes plus edges plus label entries (Section 2).
    pub fn size_norm(&self) -> usize {
        // n nodes, n-1 Child edges, n-#(first siblings) NextSibling edges,
        // plus one label entry per (node, label) pair.
        let n = self.len();
        let labels: usize = self.extra_syms.len() + n;
        n + (n - 1) + self.nodes().filter(|&v| !self.is_first_sibling(v)).count() + labels
    }

    /// Gathers all hot traversal columns of `v` into one packed record.
    pub fn hot(&self, v: NodeId) -> HotNode {
        let i = v.index();
        HotNode {
            parent: self.parent[i],
            first_child: self.first_child[i],
            last_child: self.last_child[i],
            next_sibling: self.next_sibling[i],
            prev_sibling: self.prev_sibling[i],
            label: self.label[i],
            pre: self.pre[i],
            post: self.post[i],
            pre_end: self.pre_end[i],
            depth: self.depth[i],
            sib_idx: self.sib_idx[i],
            bflr: self.bflr[i],
        }
    }

    // Unchecked-indexed column reads for the sweep kernels. Callers must
    // pass node ids of *this* tree (every id handed out by the tree or its
    // builder is in range by construction); the public accessors above stay
    // bounds-checked.

    #[inline]
    pub(crate) fn parent_raw_unchecked(&self, v: NodeId) -> u32 {
        debug_assert!(v.index() < self.len());
        unsafe { *self.parent.get_unchecked(v.index()) }
    }

    #[inline]
    pub(crate) fn next_sibling_raw_unchecked(&self, v: NodeId) -> u32 {
        debug_assert!(v.index() < self.len());
        unsafe { *self.next_sibling.get_unchecked(v.index()) }
    }

    #[inline]
    pub(crate) fn prev_sibling_raw_unchecked(&self, v: NodeId) -> u32 {
        debug_assert!(v.index() < self.len());
        unsafe { *self.prev_sibling.get_unchecked(v.index()) }
    }

    #[inline]
    pub(crate) fn last_child_raw_unchecked(&self, v: NodeId) -> u32 {
        debug_assert!(v.index() < self.len());
        unsafe { *self.last_child.get_unchecked(v.index()) }
    }

    #[inline]
    pub(crate) fn pre_unchecked(&self, v: NodeId) -> u32 {
        debug_assert!(v.index() < self.len());
        unsafe { *self.pre.get_unchecked(v.index()) }
    }

    #[inline]
    pub(crate) fn post_unchecked(&self, v: NodeId) -> u32 {
        debug_assert!(v.index() < self.len());
        unsafe { *self.post.get_unchecked(v.index()) }
    }

    #[inline]
    pub(crate) fn pre_end_unchecked(&self, v: NodeId) -> u32 {
        debug_assert!(v.index() < self.len());
        unsafe { *self.pre_end.get_unchecked(v.index()) }
    }

    #[inline]
    pub(crate) fn node_at_pre_unchecked(&self, rank: u32) -> NodeId {
        debug_assert!((rank as usize) < self.len());
        unsafe { *self.pre_to_node.get_unchecked(rank as usize) }
    }

    /// The children of `v` via unchecked sibling-link steps; used by the
    /// sweep kernels ([`children`](Tree::children) is the safe public API).
    #[inline]
    pub(crate) fn children_unchecked(&self, v: NodeId) -> ChildrenUnchecked<'_> {
        ChildrenUnchecked {
            tree: self,
            cur: self.first_child[v.index()],
        }
    }

    /// The proper ancestors of `v` via unchecked parent-link steps; used by
    /// the sweep kernels ([`ancestors`](Tree::ancestors) is the safe public
    /// API).
    #[inline]
    pub(crate) fn ancestors_unchecked(&self, v: NodeId) -> AncestorsUnchecked<'_> {
        AncestorsUnchecked {
            tree: self,
            cur: self.parent[v.index()],
        }
    }

    /// Comparison of two nodes in pre-order.
    #[inline]
    pub fn pre_lt(&self, x: NodeId, y: NodeId) -> bool {
        self.pre(x) < self.pre(y)
    }

    /// Sorts a slice of nodes by pre-order rank.
    pub fn sort_by_pre(&self, nodes: &mut [NodeId]) {
        nodes.sort_unstable_by_key(|&v| self.pre(v));
    }
}

/// Iterator over the children of a node.
pub struct Children<'t> {
    tree: &'t Tree,
    cur: u32,
}

impl Iterator for Children<'_> {
    type Item = NodeId;

    fn next(&mut self) -> Option<NodeId> {
        let v = opt(self.cur)?;
        self.cur = self.tree.next_sibling[v.index()];
        Some(v)
    }
}

/// Iterator over the proper ancestors of a node, nearest first.
pub struct Ancestors<'t> {
    tree: &'t Tree,
    cur: u32,
}

impl Iterator for Ancestors<'_> {
    type Item = NodeId;

    fn next(&mut self) -> Option<NodeId> {
        let v = opt(self.cur)?;
        self.cur = self.tree.parent[v.index()];
        Some(v)
    }
}

/// Children iterator stepping through unchecked sibling links (the node ids
/// originate from the tree itself, so every index is in range).
pub(crate) struct ChildrenUnchecked<'t> {
    tree: &'t Tree,
    cur: u32,
}

impl Iterator for ChildrenUnchecked<'_> {
    type Item = NodeId;

    #[inline]
    fn next(&mut self) -> Option<NodeId> {
        let v = opt(self.cur)?;
        self.cur = self.tree.next_sibling_raw_unchecked(v);
        Some(v)
    }
}

/// Ancestors iterator stepping through unchecked parent links.
pub(crate) struct AncestorsUnchecked<'t> {
    tree: &'t Tree,
    cur: u32,
}

impl Iterator for AncestorsUnchecked<'_> {
    type Item = NodeId;

    #[inline]
    fn next(&mut self) -> Option<NodeId> {
        let v = opt(self.cur)?;
        self.cur = self.tree.parent_raw_unchecked(v);
        Some(v)
    }
}

impl fmt::Debug for Tree {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "Tree({} nodes, {})",
            self.len(),
            crate::term::to_term(self)
        )
    }
}

impl fmt::Display for Tree {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&crate::term::to_term(self))
    }
}

#[cfg(test)]
mod tests {
    use crate::term::parse_term;

    /// The example tree of Figure 2(a):
    /// pre:post:label = 1:7:a(2:3:b(3:1:a 4:2:c) 5:6:a(6:4:b 7:5:d)).
    #[test]
    fn figure2_pre_post_indexes() {
        let t = parse_term("a(b(a c) a(b d))").unwrap();
        // The paper numbers ranks from 1; we use 0-based ranks, so the
        // expected (pre, post) pairs are each one less.
        let expected = [
            ("a", 0, 6),
            ("b", 1, 2),
            ("a", 2, 0),
            ("c", 3, 1),
            ("a", 4, 5),
            ("b", 5, 3),
            ("d", 6, 4),
        ];
        for (i, &(lab, pre, post)) in expected.iter().enumerate() {
            let v = t.node_at_pre(i as u32);
            assert_eq!(t.label_name(v), lab, "label at pre rank {i}");
            assert_eq!(t.pre(v), pre);
            assert_eq!(t.post(v), post, "post rank of node at pre {i}");
        }
    }

    #[test]
    fn figure1_structure() {
        // Figure 1 (a): n1 with children n2, n4, n5; n2 with child n3;
        // n5 with child n6.
        let t = parse_term("n1(n2(n3) n4 n5(n6))").unwrap();
        assert_eq!(t.len(), 6);
        let n1 = t.root();
        let kids: Vec<_> = t.children(n1).map(|v| t.label_name(v).to_owned()).collect();
        assert_eq!(kids, ["n2", "n4", "n5"]);
        let n2 = t.first_child(n1).unwrap();
        assert_eq!(t.label_name(t.first_child(n2).unwrap()), "n3");
        assert!(t.is_leaf(t.first_child(n2).unwrap()));
    }

    #[test]
    fn ancestor_via_pre_post_matches_parent_chain() {
        let t = parse_term("a(b(c(d) e) f(g h(i)))").unwrap();
        for x in t.nodes() {
            for y in t.nodes() {
                let naive = t.ancestors(y).any(|a| a == x);
                assert_eq!(t.is_ancestor(x, y), naive, "{x:?} anc of {y:?}");
            }
        }
    }

    #[test]
    fn following_matches_definition() {
        // Following(x,y) ⇔ ∃x₀∃y₀ NextSibling⁺(x₀,y₀) ∧ Child*(x₀,x) ∧ Child*(y₀,y)
        let t = parse_term("a(b(c d) e(f) g)").unwrap();
        for x in t.nodes() {
            for y in t.nodes() {
                let mut naive = false;
                for x0 in t.nodes() {
                    for y0 in t.nodes() {
                        let sib_plus = t.parent(x0).is_some()
                            && t.parent(x0) == t.parent(y0)
                            && t.sibling_index(x0) < t.sibling_index(y0);
                        let anc_x = x0 == x || t.is_ancestor(x0, x);
                        let anc_y = y0 == y || t.is_ancestor(y0, y);
                        if sib_plus && anc_x && anc_y {
                            naive = true;
                        }
                    }
                }
                assert_eq!(t.is_following(x, y), naive, "Following({x:?},{y:?})");
            }
        }
    }

    #[test]
    fn bflr_order_is_breadth_first() {
        let t = parse_term("a(b(d e) c(f))").unwrap();
        let order: Vec<_> = t.bflr_order().map(|v| t.label_name(v).to_owned()).collect();
        assert_eq!(order, ["a", "b", "c", "d", "e", "f"]);
    }

    #[test]
    fn subtree_size_and_pre_end() {
        let t = parse_term("a(b(c d) e)").unwrap();
        let root = t.root();
        assert_eq!(t.subtree_size(root), 5);
        assert_eq!(t.pre_end(root), 4);
        let b = t.first_child(root).unwrap();
        assert_eq!(t.subtree_size(b), 3);
        assert_eq!(t.pre_end(b), 3);
    }

    #[test]
    fn size_norm_counts_nodes_edges_labels() {
        let t = parse_term("a(b c)").unwrap();
        // 3 nodes + 2 child edges + 1 next-sibling edge + 3 labels.
        assert_eq!(t.size_norm(), 9);
    }

    #[test]
    fn height_and_depth() {
        let t = parse_term("a(b(c(d)))").unwrap();
        assert_eq!(t.height(), 3);
        assert_eq!(t.depth(t.root()), 0);
    }

    #[test]
    fn hot_node_gather_matches_columns() {
        let t = parse_term("a(b(c d) e)").unwrap();
        for v in t.nodes() {
            let h = t.hot(v);
            assert_eq!(h.pre, t.pre(v));
            assert_eq!(h.post, t.post(v));
            assert_eq!(h.pre_end, t.pre_end(v));
            assert_eq!(h.depth, t.depth(v));
            assert_eq!(h.sib_idx, t.sibling_index(v));
            assert_eq!(h.bflr, t.bflr(v));
            assert_eq!(h.label, t.label(v));
            assert_eq!(
                t.parent(v).map(|p| p.0),
                (h.parent != super::NONE).then_some(h.parent)
            );
            assert_eq!(
                t.next_sibling(v).map(|p| p.0),
                (h.next_sibling != super::NONE).then_some(h.next_sibling)
            );
        }
        assert!(std::mem::size_of::<super::HotNode>() <= 64);
    }

    #[test]
    fn unknown_symbol_has_empty_postings() {
        let t = parse_term("a(b c)").unwrap();
        // A symbol id beyond this tree's alphabet maps to the empty slice.
        assert!(t.nodes_with_label(crate::label::Symbol(99)).is_empty());
    }
}
