//! Shared helpers for the server integration suites: spawn an ephemeral
//! server, speak the line protocol over a raw socket.

use std::io::{BufRead, BufReader, BufWriter, Write};
use std::net::TcpStream;
use std::time::{Duration, Instant};

use treequery_obs::{parse_json, Json};
use treequery_serve::{Server, ServerConfig, ServerHandle, PROTOCOL_VERSION};

/// Spawns a server with default config on an ephemeral port.
#[allow(dead_code)] // each suite uses a different subset of helpers
pub fn spawn() -> ServerHandle {
    Server::spawn(ServerConfig::default()).expect("spawn server")
}

/// Spawns a server with the given config.
#[allow(dead_code)]
pub fn spawn_with(config: ServerConfig) -> ServerHandle {
    Server::spawn(config).expect("spawn server")
}

/// A raw protocol connection, one JSON line per call.
pub struct TestConn {
    reader: BufReader<TcpStream>,
    writer: BufWriter<TcpStream>,
}

impl TestConn {
    /// Connects (with retries — the accept loop starts concurrently).
    pub fn open(port: u16) -> TestConn {
        let deadline = Instant::now() + Duration::from_secs(5);
        let stream = loop {
            match TcpStream::connect(("127.0.0.1", port)) {
                Ok(s) => break s,
                Err(e) => {
                    assert!(Instant::now() < deadline, "connect: {e}");
                    std::thread::sleep(Duration::from_millis(10));
                }
            }
        };
        let read_half = stream.try_clone().expect("clone stream");
        TestConn {
            reader: BufReader::new(read_half),
            writer: BufWriter::new(stream),
        }
    }

    /// Connects and completes the version handshake.
    pub fn hello(port: u16) -> TestConn {
        let mut conn = TestConn::open(port);
        let resp = conn.request(
            Json::obj()
                .set("verb", "hello")
                .set("version", PROTOCOL_VERSION),
        );
        assert_eq!(resp.get("ok"), Some(&Json::Bool(true)), "{}", resp.render());
        conn
    }

    /// Sends one raw line (newline appended).
    pub fn send_raw(&mut self, line: &str) {
        self.writer.write_all(line.as_bytes()).expect("send");
        self.writer.write_all(b"\n").expect("send");
        self.writer.flush().expect("flush");
    }

    /// Sends one request object.
    pub fn send(&mut self, req: &Json) {
        self.send_raw(&req.render());
    }

    /// Reads one response line; panics on EOF.
    pub fn recv(&mut self) -> Json {
        self.try_recv().expect("peer closed the connection")
    }

    /// Reads one response line, or `None` on EOF.
    pub fn try_recv(&mut self) -> Option<Json> {
        let mut line = String::new();
        let n = self.reader.read_line(&mut line).expect("recv");
        if n == 0 {
            return None;
        }
        Some(parse_json(line.trim()).unwrap_or_else(|e| panic!("bad response {line:?}: {e}")))
    }

    /// One request/response exchange.
    pub fn request(&mut self, req: Json) -> Json {
        self.send(&req);
        self.recv()
    }
}

/// Shorthand: the structured error code of a response, if any.
pub fn code(resp: &Json) -> Option<&str> {
    resp.get("code").and_then(Json::as_str)
}

/// Asserts a response is `ok:true`, returning it.
pub fn expect_ok(resp: Json) -> Json {
    assert_eq!(
        resp.get("ok"),
        Some(&Json::Bool(true)),
        "expected ok, got {}",
        resp.render()
    );
    resp
}
