//! The cancellation battery: deadline-exceeded enumeration stops within
//! one chunk, explicit CANCEL works cross-connection, cancelled queries
//! leave every piece of shared state consistent, pool workers come back,
//! and concurrent QUERY/EDIT/CANCEL traffic stays linearizable.

mod util;

use std::time::{Duration, Instant};

use proptest::prelude::*;
use treequery_core::{plan, CancelReason, Document, Engine, EngineConfig, EngineError, Query};
use treequery_obs::Json;
use treequery_tree::{cancel, parse_term, CancelToken, Tree, TreeBuilder};
use util::{code, expect_ok, spawn, TestConn};

/// The heavy query of the battery: label-restricted `following`
/// enumeration — output-sensitive, so on an XMark document its answer is
/// hundreds of thousands of tuples while the reducer phase stays cheap.
const RUNAWAY: &str = "q(x, y) :- label(x, bidder), following(x, y).";

fn load_xmark(conn: &mut TestConn, name: &str, nodes: u64) -> u64 {
    let resp = expect_ok(
        conn.request(
            Json::obj()
                .set("verb", "load")
                .set("name", name)
                .set("xmark", nodes),
        ),
    );
    resp.get("nodes").and_then(Json::as_u64).unwrap()
}

fn query(doc: &str, lang: &str, text: &str) -> Json {
    Json::obj()
        .set("verb", "query")
        .set("doc", doc)
        .set("lang", lang)
        .set("text", text)
}

/// The PR's acceptance gate: a deadline-pinned runaway enumeration over a
/// ~5000-node XMark tree stops within one chunk — cancelled wall time a
/// small fraction of the uncancelled wall — and the session survives to
/// answer the next query correctly.
#[test]
fn deadline_stops_a_runaway_enumeration_within_one_chunk() {
    let server = spawn();
    let mut conn = TestConn::hello(server.port());
    let nodes = load_xmark(&mut conn, "x", 5000);
    assert!(
        nodes >= 3000,
        "xmark scaled_to(5000) came out tiny: {nodes}"
    );

    // Uncancelled baseline.
    let started = Instant::now();
    let full = expect_ok(conn.request(query("x", "cq", RUNAWAY)));
    let uncancelled = started.elapsed();
    let total_rows = full.get("rows").and_then(Json::as_arr).unwrap().len();
    assert!(
        total_rows > 10_000,
        "runaway query is not a runaway: {total_rows} rows"
    );

    // Same query, 30 ms deadline: must come back with the structured
    // deadline code in a small fraction of the uncancelled wall.
    let started = Instant::now();
    let cancelled = conn.request(query("x", "cq", RUNAWAY).set("deadline_ms", 30u64));
    let cancelled_wall = started.elapsed();
    assert_eq!(
        code(&cancelled),
        Some("deadline_exceeded"),
        "{}",
        cancelled.render()
    );
    assert!(
        cancelled_wall * 5 < uncancelled,
        "cancellation was not prompt: cancelled {cancelled_wall:?} vs uncancelled {uncancelled:?}"
    );

    // The session survives and the next query on the same connection is
    // answered correctly (compare against an uncontended re-run).
    let again = expect_ok(conn.request(query("x", "cq", RUNAWAY)));
    assert_eq!(
        again.get("rows").and_then(Json::as_arr).unwrap().len(),
        total_rows,
        "post-cancellation answer diverged"
    );
    let people = expect_ok(conn.request(query("x", "xpath", "//people/person")));
    assert!(!people
        .get("rows")
        .and_then(Json::as_arr)
        .unwrap()
        .is_empty());

    // The cancellation is visible in the shared engine metrics.
    let snap = server.shared().catalog().metrics().snapshot();
    assert!(snap.queries_cancelled >= 1, "{snap:?}");
    server.shutdown().unwrap();
}

/// Explicit CANCEL from a second connection: the canonical flow, since
/// the first connection is blocked waiting for its answer.
#[test]
fn cancel_by_tag_from_another_connection() {
    let server = spawn();
    let mut a = TestConn::hello(server.port());
    load_xmark(&mut a, "x", 5000);

    // A fires the runaway with a client tag and blocks.
    a.send(&query("x", "cq", RUNAWAY).set("tag", "slow-1"));

    // B cancels by tag, retrying until the victim has registered.
    let mut b = TestConn::hello(server.port());
    let deadline = Instant::now() + Duration::from_secs(10);
    loop {
        let resp = b.request(Json::obj().set("verb", "cancel").set("tag", "slow-1"));
        if resp.get("ok") == Some(&Json::Bool(true)) {
            break;
        }
        assert_eq!(code(&resp), Some("no_such_query"), "{}", resp.render());
        assert!(Instant::now() < deadline, "victim never registered");
        std::thread::sleep(Duration::from_millis(5));
    }

    // A's blocked request resolves with the cancelled code...
    let resp = a.recv();
    assert_eq!(code(&resp), Some("cancelled"), "{}", resp.render());
    // ...and the session keeps working.
    let resp = expect_ok(a.request(query("x", "xpath", "//open_auction[bidder]")));
    assert!(!resp.get("rows").and_then(Json::as_arr).unwrap().is_empty());
    server.shutdown().unwrap();
}

fn tree_strategy(max_nodes: usize) -> impl Strategy<Value = Tree> {
    (
        proptest::collection::vec(any::<u32>(), 0..max_nodes),
        proptest::collection::vec(0u8..4, 1..=max_nodes),
    )
        .prop_map(|(parents, labels)| {
            const ALPHABET: [&str; 4] = ["a", "b", "c", "d"];
            let mut b = TreeBuilder::new();
            let mut nodes = vec![b.root(ALPHABET[labels[0] as usize % 4])];
            for (i, p) in parents.iter().enumerate() {
                let parent = nodes[(*p as usize) % nodes.len()];
                let label = ALPHABET[labels.get(i + 1).copied().unwrap_or(0) as usize % 4];
                nodes.push(b.child(parent, label));
            }
            b.freeze()
        })
}

/// The query mix the consistency property runs: every front-end, acyclic
/// and cyclic CQs, a rewrite-union shape, and datalog recursion.
const MIX: [(&str, &str); 6] = [
    ("xpath", "//a[b]/c"),
    ("xpath", "//a[not(b)]"),
    ("cq", "q(x, y) :- label(x, a), child(x, y), label(y, b)."),
    (
        "cq",
        "q(x, y) :- label(x, a), following(x, y), label(y, b).",
    ),
    (
        "cq",
        "q(x) :- a(x), descendant(x, y), descendant(x, z), b(y), c(z).",
    ),
    (
        "datalog",
        "P(x) :- label(x, b). P(x) :- child(x, y), P(y). ?- P.",
    ),
];

fn mk_query(lang: &str, text: &str) -> Query {
    match lang {
        "xpath" => Query::xpath(text),
        "cq" => Query::cq(text),
        _ => Query::datalog(text),
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Property: a cancelled query (a) surfaces `Cancelled` with the
    /// right reason, (b) leaves the document, plan cache, and metrics in
    /// a state where the *same* query re-run answers byte-identically to
    /// a fresh engine over the same tree.
    #[test]
    fn cancelled_queries_leave_shared_state_consistent(
        t in tree_strategy(40),
        qi in 0usize..MIX.len(),
    ) {
        let (lang, text) = MIX[qi];
        let q = mk_query(lang, text);
        let doc = Document::new(t.clone());

        // A pre-tripped token: the executor's entry checkpoint fires, so
        // the outcome is deterministic regardless of tree size.
        let token = CancelToken::new();
        token.cancel();
        let before = doc.metrics().snapshot();
        let r = doc.engine().eval_with_cancel(&q, &token);
        prop_assert!(
            matches!(r, Err(EngineError::Cancelled(CancelReason::Cancelled))),
            "expected Cancelled, got {r:?}"
        );
        let after = doc.metrics().snapshot();
        prop_assert_eq!(after.queries_cancelled, before.queries_cancelled + 1);

        // Re-run on the same (shared-cache) document vs a fresh engine.
        let live = CancelToken::new();
        let warm = doc.engine().eval_with_cancel(&q, &live).unwrap();
        let fresh = Engine::new(&t).eval(&q).unwrap();
        prop_assert_eq!(&warm, &fresh);
        prop_assert_eq!(format!("{warm:?}"), format!("{fresh:?}"));
    }

    /// Property: a *deadline* token either finishes with the right
    /// answer or fails with `DeadlineExceeded` — never a wrong answer,
    /// never a panic — and shared state stays consistent either way.
    #[test]
    fn racing_deadlines_never_corrupt_answers(
        t in tree_strategy(60),
        qi in 0usize..MIX.len(),
        deadline_us in 0u64..500,
    ) {
        let (lang, text) = MIX[qi];
        let q = mk_query(lang, text);
        let doc = Document::new(t.clone());
        let token = CancelToken::with_deadline(Duration::from_micros(deadline_us));
        match doc.engine().eval_with_cancel(&q, &token) {
            Ok(out) => {
                let fresh = Engine::new(&t).eval(&q).unwrap();
                prop_assert_eq!(out, fresh);
            }
            Err(EngineError::Cancelled(reason)) => {
                prop_assert_eq!(reason, CancelReason::DeadlineExceeded);
            }
            Err(other) => prop_assert!(false, "unexpected error {other:?}"),
        }
        // Whatever happened, the document still answers correctly.
        let warm = doc.engine().eval(&q).unwrap();
        let fresh = Engine::new(&t).eval(&q).unwrap();
        prop_assert_eq!(warm, fresh);
    }
}

/// Pool workers drained by a cancelled parallel kernel must come back:
/// hammer cancelled evals (sequential and parallel configs), then prove
/// a normal eval still runs and matches a fresh engine.
#[test]
fn cancelled_queries_free_pool_workers() {
    let tree =
        parse_term("r(a(b(c) b) a(b(c(a b) c) b) c(a(b) b(c)) a(b c(a) b) c(b) a(b(c) c) b(a c))")
            .unwrap();
    for workers in [1usize, 4] {
        let mut config = EngineConfig::default();
        config.planner.workers = Some(workers);
        config.planner.parallel_threshold = 0; // force chunked dispatch
        let engine = Engine::with_config(&tree, config);
        let q = Query::xpath("//a[b]/c");
        for _ in 0..10 {
            let token = CancelToken::new();
            token.cancel();
            let r = cancel::with_token(&token, || engine.eval(&q));
            assert!(matches!(r, Err(EngineError::Cancelled(_))), "{r:?}");
        }
        // If a cancelled chunk wedged a worker, this would hang or err.
        let out = engine.eval(&q).unwrap();
        let fresh = Engine::new(&tree).eval(&q).unwrap();
        assert_eq!(out, fresh, "workers={workers}");
    }
}

/// Satellite 3's pin: `eval_ir_via` — the entry point `harness fuzz` and
/// `bench` route through — observes the ambient token for *every*
/// applicable strategy. One kernel code path; no cancellation-free
/// clone.
#[test]
fn every_applicable_strategy_observes_the_ambient_token() {
    let tree = parse_term("r(a(b c) a(b) c(a(b)))").unwrap();
    let engine = Engine::new(&tree);
    let queries = [
        Query::xpath("//a[b]/c"),
        Query::cq("q(x, y) :- label(x, a), following(x, y), label(y, b)."),
        Query::datalog("P(x) :- label(x, b). ?- P."),
    ];
    let mut strategies_seen = 0;
    for q in &queries {
        let ir = engine.lower(q).unwrap();
        for strategy in plan::applicable_strategies(&ir) {
            let token = CancelToken::new();
            token.cancel();
            let r = cancel::with_token(&token, || engine.eval_ir_via(&ir, strategy, 1));
            assert!(
                matches!(r, Err(EngineError::Cancelled(CancelReason::Cancelled))),
                "strategy {strategy:?} ignored the token: {r:?}"
            );
            strategies_seen += 1;
        }
    }
    assert!(
        strategies_seen >= 7,
        "only {strategies_seen} strategies exercised"
    );
}

/// Stress: concurrent sessions interleaving QUERY, EDIT, and CANCEL on
/// one document, checked against a sequential oracle. Edits only insert
/// `zz` leaves, so every observed `//zz` count must be non-decreasing
/// per session, and the final count must equal the number of applied
/// inserts.
#[test]
fn concurrent_query_edit_cancel_traffic_is_linearizable() {
    let server = spawn();
    let mut setup = TestConn::hello(server.port());
    expect_ok(
        setup.request(
            Json::obj()
                .set("verb", "load")
                .set("name", "s")
                .set("term", "r(a(b c) a(b) c(a) b(a c))"),
        ),
    );
    let port = server.port();

    const SESSIONS: usize = 4;
    const ROUNDS: usize = 12;
    let handles: Vec<_> = (0..SESSIONS)
        .map(|sid| {
            std::thread::spawn(move || -> usize {
                let mut conn = TestConn::hello(port);
                let mut applied = 0usize;
                let mut last_count = 0usize;
                for round in 0..ROUNDS {
                    match (sid + round) % 3 {
                        0 => {
                            let resp = expect_ok(
                                conn.request(
                                    Json::obj()
                                        .set("verb", "edit")
                                        .set("doc", "s")
                                        .set("script", "insert(0,0,zz)"),
                                ),
                            );
                            applied += resp.get("applied").and_then(Json::as_u64).unwrap() as usize;
                        }
                        1 => {
                            let resp = conn.request(query("s", "xpath", "//zz"));
                            match code(&resp) {
                                None => {
                                    let n = resp.get("rows").and_then(Json::as_arr).unwrap().len();
                                    assert!(
                                        n >= last_count,
                                        "session {sid}: zz count regressed {last_count} -> {n}"
                                    );
                                    last_count = n;
                                }
                                Some("cancelled") => {} // a peer's cancel landed on us
                                Some(c) => panic!("session {sid}: unexpected code {c}"),
                            }
                        }
                        _ => {
                            let resp = conn
                                .request(Json::obj().set("verb", "cancel").set("tag", "phantom"));
                            assert_eq!(code(&resp), Some("no_such_query"));
                        }
                    }
                }
                applied
            })
        })
        .collect();
    let total_applied: usize = handles.into_iter().map(|h| h.join().unwrap()).sum();

    // Sequential oracle: the final state must show exactly the applied
    // inserts, and re-running the count twice must agree byte-for-byte.
    let resp = expect_ok(setup.request(query("s", "xpath", "//zz")));
    let final_rows = resp.get("rows").and_then(Json::as_arr).unwrap().len();
    assert_eq!(final_rows, total_applied);
    let resp2 = expect_ok(setup.request(query("s", "xpath", "//zz")));
    assert_eq!(resp.get("rows"), resp2.get("rows"));
    server.shutdown().unwrap();
}
