//! The tenant-observatory battery: trace ids on every reply, per-tenant
//! usage accounting through the `usage` verb and the `/tenants`
//! exposition, SLO reporting, flight-record attribution, and graceful
//! drain on shutdown.

mod util;

use std::io::{Read, Write};
use std::net::TcpStream;
use std::time::{Duration, Instant};

use treequery_obs::{flight, prom, Json};
use treequery_serve::{spawn_observatory, ServerConfig, PROTOCOL_VERSION};
use util::{code, expect_ok, spawn, spawn_with, TestConn};

/// A query whose answer enumeration is effectively unbounded on an XMark
/// document — the drain tests' victim. (Same shape the CI transcript
/// uses; the planner classes it NP-hard, so it lands in the heavy lane.)
const NP_RUNAWAY: &str =
    "q() :- descendant(x1, x2), following(x2, x3), pre_lt(x3, x4), pre_lt(x4, x1).";

/// A heavy-but-finite enumeration: finishes in well under the generous
/// drain budget, so a graceful shutdown should let it complete.
const FINITE_RUNAWAY: &str = "q(x, y) :- label(x, bidder), following(x, y).";

fn hello_as(port: u16, tenant: &str) -> TestConn {
    let mut conn = TestConn::open(port);
    let resp = expect_ok(
        conn.request(
            Json::obj()
                .set("verb", "hello")
                .set("version", PROTOCOL_VERSION)
                .set("tenant", tenant),
        ),
    );
    assert_eq!(
        resp.get("tenant").and_then(Json::as_str),
        Some(tenant),
        "{}",
        resp.render()
    );
    conn
}

fn query(doc: &str, lang: &str, text: &str) -> Json {
    Json::obj()
        .set("verb", "query")
        .set("doc", doc)
        .set("lang", lang)
        .set("text", text)
}

fn trace_of(resp: &Json) -> &str {
    resp.get("trace_id")
        .and_then(Json::as_str)
        .unwrap_or_else(|| panic!("reply without trace_id: {}", resp.render()))
}

fn tenant_row<'a>(usage: &'a Json, tenant: &str) -> &'a Json {
    usage
        .get("tenants")
        .and_then(Json::as_arr)
        .unwrap_or_else(|| panic!("no tenants array: {}", usage.render()))
        .iter()
        .find(|row| row.get("tenant").and_then(Json::as_str) == Some(tenant))
        .unwrap_or_else(|| panic!("tenant {tenant:?} missing: {}", usage.render()))
}

fn u64_field(v: &Json, key: &str) -> u64 {
    v.get(key)
        .and_then(Json::as_u64)
        .unwrap_or_else(|| panic!("no u64 {key:?} in {}", v.render()))
}

/// Every reply carries a trace id: client-supplied ones are echoed
/// verbatim, absent ones are server-generated, and error replies carry
/// one too.
#[test]
fn trace_ids_are_echoed_or_generated_on_every_reply() {
    let server = spawn();
    let mut conn = TestConn::hello(server.port());
    expect_ok(
        conn.request(
            Json::obj()
                .set("verb", "load")
                .set("name", "t")
                .set("term", "r(a(b) c)"),
        ),
    );

    let resp = expect_ok(conn.request(query("t", "xpath", "//a").set("trace_id", "trace-42")));
    assert_eq!(trace_of(&resp), "trace-42");

    let resp = expect_ok(conn.request(query("t", "xpath", "//a")));
    assert!(
        trace_of(&resp).starts_with("srv-"),
        "generated trace id: {}",
        resp.render()
    );

    // Errors carry trace ids too.
    let resp = conn.request(query("nope", "xpath", "//a").set("trace_id", "trace-err"));
    assert_eq!(code(&resp), Some("no_such_document"));
    assert_eq!(trace_of(&resp), "trace-err");

    // A malformed trace id is itself a structured error (with a
    // server-generated id, since the client's is unusable).
    let resp = conn.request(query("t", "xpath", "//a").set("trace_id", ""));
    assert_eq!(code(&resp), Some("bad_field"), "{}", resp.render());
    assert!(trace_of(&resp).starts_with("srv-"));
    let resp = conn.request(query("t", "xpath", "//a").set("trace_id", "x".repeat(200)));
    assert_eq!(code(&resp), Some("bad_field"), "{}", resp.render());

    server.shutdown().unwrap();
}

/// Two tenants on one server: the `usage` verb's totals reflect exactly
/// what each tenant did — queries, rows, bytes, edits, errors — and the
/// `slo` verb reports per-class attainment.
#[test]
fn usage_accounting_separates_tenants() {
    let server = spawn();
    let mut alpha = hello_as(server.port(), "alpha");
    let mut beta = hello_as(server.port(), "beta");

    expect_ok(
        alpha.request(
            Json::obj()
                .set("verb", "load")
                .set("name", "t")
                .set("term", "r(a(b) a(b c) c)"),
        ),
    );
    let q1 = expect_ok(alpha.request(query("t", "xpath", "//a[b]")));
    let q1_rows = q1.get("rows").and_then(Json::as_arr).unwrap().len() as u64;
    expect_ok(alpha.request(query("t", "xpath", "//c")));
    expect_ok(
        alpha.request(
            Json::obj()
                .set("verb", "edit")
                .set("doc", "t")
                .set("script", "relabel(2,z)"),
        ),
    );
    let resp = alpha.request(query("gone", "xpath", "//a"));
    assert_eq!(code(&resp), Some("no_such_document"));

    expect_ok(beta.request(query("t", "xpath", "//a")));

    let usage = expect_ok(alpha.request(Json::obj().set("verb", "usage")));
    let a = tenant_row(&usage, "alpha");
    assert_eq!(u64_field(a, "queries"), 2, "{}", usage.render());
    assert!(u64_field(a, "rows") >= q1_rows);
    assert!(u64_field(a, "wall_ns") > 0);
    assert!(u64_field(a, "resp_bytes") > 0);
    assert_eq!(u64_field(a, "edits"), 1);
    assert_eq!(u64_field(a, "errors"), 1);
    assert_eq!(u64_field(a, "cancelled"), 0);
    let b = tenant_row(&usage, "beta");
    assert_eq!(u64_field(b, "queries"), 1);
    assert_eq!(u64_field(b, "edits"), 0);
    assert_eq!(u64_field(b, "errors"), 0);

    // A tenant's cancellations are charged to it, not to the tenant
    // whose `cancel` verb did the cancelling. A zero deadline is already
    // expired, so the entry checkpoint fires deterministically.
    let resp = beta.request(query("t", "cq", NP_RUNAWAY).set("deadline_ms", 0u64));
    assert_eq!(code(&resp), Some("deadline_exceeded"), "{}", resp.render());
    let usage = expect_ok(alpha.request(Json::obj().set("verb", "usage")));
    assert_eq!(u64_field(tenant_row(&usage, "beta"), "cancelled"), 1);
    assert_eq!(u64_field(tenant_row(&usage, "alpha"), "cancelled"), 0);

    // The SLO report: both completed classes show their traffic as good
    // events (everything here is far under the default thresholds).
    let slo = expect_ok(alpha.request(Json::obj().set("verb", "slo")));
    assert_eq!(u64_field(&slo, "target_ppm"), 990_000);
    let classes = slo.get("classes").and_then(Json::as_arr).unwrap();
    let linear = classes
        .iter()
        .find(|c| c.get("class").and_then(Json::as_str) == Some("linear"))
        .expect("linear class");
    assert!(
        u64_field(linear.get("fast").unwrap(), "good") >= 1,
        "{}",
        slo.render()
    );
    server.shutdown().unwrap();
}

fn http_get(port: u16, target: &str) -> (String, String) {
    let mut stream = TcpStream::connect(("127.0.0.1", port)).expect("connect observatory");
    write!(stream, "GET {target} HTTP/1.1\r\nHost: localhost\r\n\r\n").unwrap();
    let mut raw = String::new();
    stream.read_to_string(&mut raw).expect("read response");
    let (head, body) = raw.split_once("\r\n\r\n").expect("header/body split");
    (head.to_owned(), body.to_owned())
}

/// The observatory listener: `/tenants` and `/slo` serve valid
/// Prometheus expositions scoped to their families, `/metrics` the full
/// registry, and the whole thing shuts down with the server.
#[test]
fn observatory_serves_tenant_and_slo_expositions() {
    let server = spawn();
    let obs_port = spawn_observatory(server.shared(), "127.0.0.1:0").expect("observatory");
    let mut conn = hello_as(server.port(), "alpha");
    expect_ok(
        conn.request(
            Json::obj()
                .set("verb", "load")
                .set("name", "t")
                .set("term", "r(a(b) c)"),
        ),
    );
    expect_ok(conn.request(query("t", "xpath", "//a")));

    let (head, body) = http_get(obs_port, "/tenants");
    assert!(head.starts_with("HTTP/1.1 200"), "{head}");
    prom::validate_exposition(&body).expect("tenants exposition validates");
    assert!(
        body.contains("treequery_tenant_queries{tenant=\"alpha\"} 1"),
        "{body}"
    );
    assert!(
        !body.contains("treequery_serve_requests"),
        "/tenants is scoped to tenant families: {body}"
    );

    let (head, body) = http_get(obs_port, "/slo");
    assert!(head.starts_with("HTTP/1.1 200"), "{head}");
    prom::validate_exposition(&body).expect("slo exposition validates");
    assert!(
        body.contains("treequery_slo_fast_attainment_ppm{class=\"linear\"} 1000000"),
        "{body}"
    );

    let (head, body) = http_get(obs_port, "/metrics");
    assert!(head.starts_with("HTTP/1.1 200"), "{head}");
    prom::validate_exposition(&body).expect("metrics exposition validates");
    assert!(body.contains("treequery_tenant_queries"), "{body}");

    let (head, _) = http_get(obs_port, "/nope");
    assert!(head.starts_with("HTTP/1.1 404"), "{head}");

    server.shutdown().unwrap();
    // The shutdown poke reaches the observatory's accept loop: it stops
    // answering (connect may still succeed briefly; reads return EOF).
    let deadline = Instant::now() + Duration::from_secs(5);
    loop {
        match TcpStream::connect(("127.0.0.1", obs_port)) {
            Err(_) => break,
            Ok(mut s) => {
                let _ = write!(s, "GET / HTTP/1.1\r\nHost: x\r\n\r\n");
                let mut buf = String::new();
                if s.read_to_string(&mut buf).is_err() || buf.is_empty() {
                    break;
                }
            }
        }
        assert!(Instant::now() < deadline, "observatory kept serving");
        std::thread::sleep(Duration::from_millis(10));
    }
}

/// With the flight recorder installed, a wire query's record carries the
/// session tenant, the request trace id, and the response size — the
/// end-to-end join the tentpole promises.
#[test]
fn flight_records_join_tenant_trace_and_response() {
    let server = spawn();
    let mut conn = hello_as(server.port(), "gamma");
    expect_ok(
        conn.request(
            Json::obj()
                .set("verb", "load")
                .set("name", "t")
                .set("term", "r(a(b) a(b c) c)"),
        ),
    );
    flight::install(flight::FlightConfig::default());
    let resp =
        expect_ok(conn.request(query("t", "xpath", "//a[b]").set("trace_id", "tr-flight-1")));
    assert_eq!(trace_of(&resp), "tr-flight-1");
    let record = flight::recent()
        .into_iter()
        .find(|r| r.trace_id == "tr-flight-1")
        .expect("flight record for tr-flight-1");
    flight::uninstall();

    assert_eq!(record.tenant, "gamma");
    assert!(record.resp_bytes > 0, "resp_bytes annotated");
    assert_eq!(
        record.resp_bytes,
        resp.render().len() as u64 + 1,
        "resp_bytes is the wire length (body + newline)"
    );
    let span_names: Vec<&str> = record.spans.iter().map(|s| s.name).collect();
    for expected in ["serve.lock", "serve.admission", "serve.serialize"] {
        assert!(
            span_names.contains(&expected),
            "span {expected} missing from {span_names:?}"
        );
    }
    server.shutdown().unwrap();
}

fn wait_for_inflight(conn: &mut TestConn, at_least: u64) {
    let deadline = Instant::now() + Duration::from_secs(10);
    loop {
        let resp = expect_ok(conn.request(Json::obj().set("verb", "stats")));
        if resp.get("inflight").and_then(Json::as_u64).unwrap_or(0) >= at_least {
            return;
        }
        assert!(Instant::now() < deadline, "query never registered");
        std::thread::sleep(Duration::from_millis(5));
    }
}

/// Graceful drain, the cut-off side: a shutdown with a short budget and
/// an unbounded query in flight reports `cancelled:1`, and the victim's
/// connection gets the structured cancelled code.
#[test]
fn drain_cancels_unbounded_queries_past_budget() {
    let server = spawn_with(ServerConfig {
        drain: Duration::from_millis(200),
        ..ServerConfig::default()
    });
    let mut victim = hello_as(server.port(), "heavy");
    expect_ok(
        victim.request(
            Json::obj()
                .set("verb", "load")
                .set("name", "x")
                .set("xmark", 5000u64),
        ),
    );
    victim.send(&query("x", "cq", NP_RUNAWAY).set("trace_id", "tr-doomed"));

    let mut admin = hello_as(server.port(), "admin");
    wait_for_inflight(&mut admin, 1);
    let ack = expect_ok(admin.request(Json::obj().set("verb", "shutdown")));
    assert_eq!(ack.get("shutting_down"), Some(&Json::Bool(true)));
    assert_eq!(u64_field(&ack, "cancelled"), 1, "{}", ack.render());
    assert_eq!(u64_field(&ack, "drained"), 0, "{}", ack.render());

    let resp = victim.recv();
    assert_eq!(code(&resp), Some("cancelled"), "{}", resp.render());
    assert_eq!(trace_of(&resp), "tr-doomed");
    server.shutdown().unwrap();
}

/// Graceful drain, the finish side: with a generous budget, an in-flight
/// finite query completes normally — `cancelled:0` in the ack and a full
/// answer on the victim's connection.
#[test]
fn drain_lets_finite_queries_finish() {
    let server = spawn_with(ServerConfig {
        drain: Duration::from_secs(30),
        ..ServerConfig::default()
    });
    let mut worker = hello_as(server.port(), "worker");
    expect_ok(
        worker.request(
            Json::obj()
                .set("verb", "load")
                .set("name", "x")
                .set("xmark", 5000u64),
        ),
    );
    worker.send(&query("x", "cq", FINITE_RUNAWAY));

    let mut admin = hello_as(server.port(), "admin");
    wait_for_inflight(&mut admin, 1);
    let ack = expect_ok(admin.request(Json::obj().set("verb", "shutdown")));
    assert_eq!(u64_field(&ack, "cancelled"), 0, "{}", ack.render());
    assert_eq!(u64_field(&ack, "drained"), 1, "{}", ack.render());

    let resp = expect_ok(worker.recv());
    assert!(
        resp.get("rows").and_then(Json::as_arr).unwrap().len() > 10_000,
        "the drained query returned its full answer"
    );
    server.shutdown().unwrap();
}
