//! Protocol conformance: golden request/response transcripts per verb,
//! malformed/oversized/unknown-frame rejection with structured errors,
//! and the version handshake.
//!
//! The golden transcripts run through [`treequery_serve::replay_lines`] —
//! the same replay engine the CI gate uses on the committed transcript —
//! so the subset-matching semantics are themselves under test here.

mod util;

use treequery_obs::{parse_json, Json};
use treequery_serve::client::replay_lines;
use treequery_serve::{ServerConfig, PROTOCOL_VERSION};
use util::{code, expect_ok, spawn, TestConn};

/// Every verb round-trips with its pinned response shape. The `_expect`
/// patterns are the golden half: a field listed here is a wire-format
/// commitment.
#[test]
fn golden_transcript_covers_every_verb() {
    let server = spawn();
    let transcript = r#"
# --- handshake ---------------------------------------------------------
{"verb":"hello","version":1,"_expect":{"ok":true,"server":"treequery-serve","version":1}}
# --- load: term syntax, then the duplicate is refused -------------------
{"verb":"load","name":"t","term":"r(a(b) a(b c) c)","_expect":{"ok":true,"doc":"t","nodes":7,"fingerprint":"*"}}
{"verb":"load","name":"t","term":"x","_expect":{"ok":false,"code":"duplicate_document"}}
# --- list ---------------------------------------------------------------
{"verb":"list","_expect":{"ok":true,"docs":[{"name":"t","nodes":7,"edits":0,"fingerprint":"*"}]}}
# --- query: all three front-ends, rows as pre ranks ---------------------
{"verb":"query","doc":"t","lang":"xpath","text":"//a[b]","_expect":{"ok":true,"id":"*","kind":"nodes","rows":[1,3],"strategy":"*","cost":"*","wall_us":"*"}}
{"verb":"query","doc":"t","lang":"cq","text":"q(x,y) :- label(x, a), child(x, y), label(y, b).","_expect":{"ok":true,"kind":"tuples","rows":[[1,2],[3,4]],"satisfiable":true}}
{"verb":"query","doc":"t","lang":"datalog","text":"P(x) :- label(x, c). ?- P.","_expect":{"ok":true,"kind":"nodes","rows":[5,6]}}
# --- explain ------------------------------------------------------------
{"verb":"explain","doc":"t","lang":"xpath","text":"//a[b]","_expect":{"ok":true,"source":"xpath","strategy":"*","cost":"*","estimated_work":"*","workers":"*","rationale":"*"}}
# --- edit: relabel pre 2 (the first a's b), re-query sees it ------------
{"verb":"edit","doc":"t","script":"relabel(2,z)","_expect":{"ok":true,"applied":1,"skipped":0,"nodes":7,"edits":1}}
{"verb":"query","doc":"t","lang":"xpath","text":"//a[b]","_expect":{"ok":true,"rows":[3]}}
# --- stats --------------------------------------------------------------
{"verb":"stats","doc":"t","_expect":{"ok":true,"docs":1,"cached_plans":"*","engine":{"queries_executed":"*"},"doc":{"name":"t","nodes":7,"edits":1}}}
# --- cancel with nothing running ---------------------------------------
{"verb":"cancel","tag":"nothing","_expect":{"ok":false,"code":"no_such_query"}}
# --- structured request errors -----------------------------------------
{"verb":"frobnicate","_expect":{"ok":false,"code":"unknown_verb"}}
{"verb":"query","doc":"t","lang":"sql","text":"select 1","_expect":{"ok":false,"code":"bad_field"}}
{"verb":"query","doc":"t","lang":"xpath","text":"//a[[[","_expect":{"ok":false,"code":"query_error"}}
{"verb":"query","doc":"nope","lang":"xpath","text":"//a","_expect":{"ok":false,"code":"no_such_document"}}
{"verb":"query","doc":"t","lang":"xpath","_expect":{"ok":false,"code":"missing_field"}}
{"verb":"edit","doc":"t","script":"gibberish","_expect":{"ok":false,"code":"edit_rejected"}}
{"verb":"drop","name":"nope","_expect":{"ok":false,"code":"no_such_document"}}
# --- drop ---------------------------------------------------------------
{"verb":"drop","name":"t","_expect":{"ok":true,"dropped":"t"}}
{"verb":"list","_expect":{"ok":true,"docs":[]}}
"#;
    let report = replay_lines(server.port(), transcript).expect("transcript replays");
    assert!(report.checks >= 20, "all _expect patterns checked");
    server.shutdown().unwrap();
}

/// The edit-script syntax must match `treequery_tree::parse_script`.
/// (The golden above assumes `relabel(2,z)`; pin the assumption.)
#[test]
fn edit_script_syntax_is_the_tree_crates() {
    assert!(treequery_tree::parse_script("relabel(2,z); insert(0,0,q); delete(1)").is_ok());
}

#[test]
fn malformed_frames_get_structured_errors_and_the_session_survives() {
    let server = spawn();
    let mut conn = TestConn::open(server.port());
    conn.send_raw("this is not json");
    let resp = conn.recv();
    assert_eq!(code(&resp), Some("malformed_frame"), "{}", resp.render());
    // Not dropped: the handshake still works afterwards.
    let resp = conn.request(
        Json::obj()
            .set("verb", "hello")
            .set("version", PROTOCOL_VERSION),
    );
    expect_ok(resp);
    server.shutdown().unwrap();
}

#[test]
fn oversized_lines_are_rejected_without_buffering_or_disconnecting() {
    let server = spawn();
    let mut conn = TestConn::hello(server.port());
    // A 2 MiB line: twice the frame cap.
    let mut big = String::with_capacity(2 << 20);
    big.push_str("{\"verb\":\"load\",\"name\":\"big\",\"term\":\"");
    while big.len() < (2 << 20) {
        big.push('x');
    }
    big.push_str("\"}");
    conn.send_raw(&big);
    let resp = conn.recv();
    assert_eq!(code(&resp), Some("oversized_frame"), "{}", resp.render());
    // The reader resynchronized on the newline: normal traffic resumes.
    let resp = conn.request(Json::obj().set("verb", "list"));
    expect_ok(resp);
    server.shutdown().unwrap();
}

#[test]
fn version_mismatch_answers_then_closes() {
    let server = spawn();
    let mut conn = TestConn::open(server.port());
    let resp = conn.request(Json::obj().set("verb", "hello").set("version", 99u64));
    assert_eq!(code(&resp), Some("version_mismatch"), "{}", resp.render());
    assert!(
        resp.get("error")
            .and_then(Json::as_str)
            .is_some_and(|m| m.contains("version 1")),
        "the error names the version the server speaks: {}",
        resp.render()
    );
    assert!(
        conn.try_recv().is_none(),
        "connection closes after mismatch"
    );
    server.shutdown().unwrap();
}

#[test]
fn verbs_before_hello_are_refused_but_not_fatal() {
    let server = spawn();
    let mut conn = TestConn::open(server.port());
    let resp = conn.request(Json::obj().set("verb", "list"));
    assert_eq!(code(&resp), Some("expected_hello"));
    // A proper hello afterwards still succeeds on the same connection.
    let resp = conn.request(
        Json::obj()
            .set("verb", "hello")
            .set("version", PROTOCOL_VERSION),
    );
    expect_ok(resp);
    expect_ok(conn.request(Json::obj().set("verb", "list")));
    server.shutdown().unwrap();
}

#[test]
fn hello_without_version_is_a_structured_missing_field() {
    let server = spawn();
    let mut conn = TestConn::open(server.port());
    let resp = conn.request(Json::obj().set("verb", "hello"));
    assert_eq!(code(&resp), Some("missing_field"));
    server.shutdown().unwrap();
}

#[test]
fn metrics_verb_returns_valid_exposition_with_per_verb_counters() {
    let server = spawn();
    let mut conn = TestConn::hello(server.port());
    expect_ok(
        conn.request(
            Json::obj()
                .set("verb", "load")
                .set("name", "m")
                .set("term", "r(a b)"),
        ),
    );
    expect_ok(
        conn.request(
            Json::obj()
                .set("verb", "query")
                .set("doc", "m")
                .set("lang", "xpath")
                .set("text", "//a"),
        ),
    );
    let resp = expect_ok(conn.request(Json::obj().set("verb", "metrics")));
    let text = resp.get("exposition").and_then(Json::as_str).unwrap();
    let samples = treequery_obs::prom::validate_exposition(text).expect("valid exposition");
    assert!(samples > 5, "got {samples} samples:\n{text}");
    assert!(
        text.contains("treequery_serve_requests{verb=\"query\"} 1"),
        "{text}"
    );
    assert!(
        text.contains("treequery_serve_requests{verb=\"load\"} 1"),
        "{text}"
    );
    assert!(text.contains("treequery_serve_sessions_opened 1"), "{text}");
    assert!(text.contains("treequery_serve_sessions_active 1"), "{text}");
    assert!(
        text.contains("treequery_engine_queries_executed 1"),
        "{text}"
    );
    server.shutdown().unwrap();
}

#[test]
fn shutdown_refuses_new_work_and_stops_the_accept_loop() {
    let server = spawn();
    let shared = server.shared();
    let mut conn = TestConn::hello(server.port());
    let resp = expect_ok(conn.request(Json::obj().set("verb", "shutdown")));
    assert_eq!(resp.get("shutting_down"), Some(&Json::Bool(true)));
    // The ack is written *before* the flag flips (so the requester always
    // sees it); give the session thread a beat to set the flag.
    let deadline = std::time::Instant::now() + std::time::Duration::from_secs(2);
    while !shared.shutting_down() {
        assert!(
            std::time::Instant::now() < deadline,
            "shutdown flag not set"
        );
        std::thread::sleep(std::time::Duration::from_millis(5));
    }
    // The run loop exits; the spawned thread joins cleanly.
    server.shutdown().unwrap();
}

#[test]
fn responses_are_single_lines_of_json() {
    let server = spawn();
    let mut conn = TestConn::hello(server.port());
    // A term with characters that need escaping must still be one line.
    let resp = conn.request(
        Json::obj()
            .set("verb", "query")
            .set("doc", "missing")
            .set("lang", "xpath")
            .set("text", "line\nbreak"),
    );
    assert!(!resp.render().contains('\n'));
    assert!(parse_json(&resp.render()).is_ok());
    server.shutdown().unwrap();
}

#[test]
fn two_servers_coexist_in_one_process() {
    // The per-server metrics registry means no global-state collision.
    let a = spawn();
    let b = util::spawn_with(ServerConfig::default());
    let mut ca = TestConn::hello(a.port());
    let mut cb = TestConn::hello(b.port());
    expect_ok(
        ca.request(
            Json::obj()
                .set("verb", "load")
                .set("name", "only-on-a")
                .set("term", "r(a)"),
        ),
    );
    let resp = expect_ok(cb.request(Json::obj().set("verb", "list")));
    assert_eq!(resp.get("docs"), Some(&Json::Arr(vec![])));
    a.shutdown().unwrap();
    b.shutdown().unwrap();
}
