//! Admission control under contention: with a heavy-lane cap of 2, slow
//! deadline-pinned enumerations must not delay a point lookup past a
//! gated bound (the fast lane), further heavy queries are rejected with
//! a structured error, and the policy's counters scrape as valid
//! Prometheus exposition.

mod util;

use std::time::{Duration, Instant};

use treequery_obs::Json;
use treequery_serve::ServerConfig;
use util::{code, expect_ok, spawn_with, TestConn};

const RUNAWAY: &str = "q(x, y) :- label(x, bidder), following(x, y).";

fn query(doc: &str, lang: &str, text: &str) -> Json {
    Json::obj()
        .set("verb", "query")
        .set("doc", doc)
        .set("lang", lang)
        .set("text", text)
}

#[test]
fn fast_lane_bypasses_a_saturated_heavy_lane() {
    let server = spawn_with(ServerConfig {
        heavy_cap: 2,
        admit_timeout: Duration::from_millis(150),
        ..ServerConfig::default()
    });
    let port = server.port();
    let mut setup = TestConn::hello(port);
    expect_ok(
        setup.request(
            Json::obj()
                .set("verb", "load")
                .set("name", "x")
                .set("xmark", 5000u64),
        ),
    );

    // Two slow heavy enumerations pin both heavy slots. Generous
    // deadlines keep them running for the whole experiment; the deadline
    // also guarantees cleanup if an assertion fires first.
    let mut heavy1 = TestConn::hello(port);
    let mut heavy2 = TestConn::hello(port);
    heavy1.send(
        &query("x", "cq", RUNAWAY)
            .set("deadline_ms", 20_000u64)
            .set("tag", "h1"),
    );
    heavy2.send(
        &query("x", "cq", RUNAWAY)
            .set("deadline_ms", 20_000u64)
            .set("tag", "h2"),
    );

    // Wait until both are registered in-flight (visible via the metrics
    // gauge) so the saturation is real, not a race.
    let deadline = Instant::now() + Duration::from_secs(10);
    loop {
        let resp = expect_ok(setup.request(Json::obj().set("verb", "metrics")));
        let text = resp
            .get("exposition")
            .and_then(Json::as_str)
            .unwrap()
            .to_owned();
        if text.contains("treequery_serve_queries_inflight 2") {
            break;
        }
        assert!(
            Instant::now() < deadline,
            "heavy queries never registered:\n{text}"
        );
        std::thread::sleep(Duration::from_millis(10));
    }

    // The point lookup is linear (fast lane): it must answer well inside
    // the admission timeout, unaffected by the saturated heavy lane.
    let started = Instant::now();
    let resp = expect_ok(setup.request(query("x", "xpath", "//people/person")));
    let lookup_wall = started.elapsed();
    assert_eq!(
        resp.get("admission").and_then(Json::as_str),
        Some("fast_lane")
    );
    assert!(
        lookup_wall < Duration::from_secs(2),
        "point lookup delayed {lookup_wall:?} behind the heavy lane"
    );

    // A third heavy query cannot get a slot and is rejected after the
    // (short) admission timeout with the structured code.
    let mut heavy3 = TestConn::hello(port);
    let resp = heavy3.request(query("x", "cq", RUNAWAY));
    assert_eq!(code(&resp), Some("admission_rejected"), "{}", resp.render());

    // Unblock the pinned slots so shutdown is prompt.
    for tag in ["h1", "h2"] {
        let resp = setup.request(Json::obj().set("verb", "cancel").set("tag", tag));
        // The slow query may have finished on its own; both are fine.
        assert!(
            resp.get("ok") == Some(&Json::Bool(true)) || code(&resp) == Some("no_such_query"),
            "{}",
            resp.render()
        );
    }
    let r1 = heavy1.recv();
    let r2 = heavy2.recv();
    for r in [&r1, &r2] {
        assert!(
            r.get("ok") == Some(&Json::Bool(true)) || code(r) == Some("cancelled"),
            "{}",
            r.render()
        );
    }

    // The counters tell the story and the exposition validates.
    let resp = expect_ok(setup.request(Json::obj().set("verb", "metrics")));
    let text = resp.get("exposition").and_then(Json::as_str).unwrap();
    let samples = treequery_obs::prom::validate_exposition(text).expect("valid exposition");
    assert!(samples >= 10, "{samples} samples:\n{text}");
    let queued = sample_value(text, "treequery_admission_queued");
    let rejected = sample_value(text, "treequery_admission_rejected");
    assert!(queued >= 1, "third heavy query never queued:\n{text}");
    assert!(rejected >= 1, "third heavy query never rejected:\n{text}");
    server.shutdown().unwrap();
}

/// Extracts an unlabeled sample's value from exposition text.
fn sample_value(text: &str, name: &str) -> u64 {
    text.lines()
        .find_map(|l| l.strip_prefix(&format!("{name} ")))
        .unwrap_or_else(|| panic!("{name} not in exposition:\n{text}"))
        .trim()
        .parse()
        .expect("sample value")
}

#[test]
fn linear_queries_never_consume_heavy_slots() {
    let server = spawn_with(ServerConfig {
        heavy_cap: 1,
        admit_timeout: Duration::from_millis(100),
        ..ServerConfig::default()
    });
    let mut conn = TestConn::hello(server.port());
    expect_ok(
        conn.request(
            Json::obj()
                .set("verb", "load")
                .set("name", "t")
                .set("term", "r(a(b) a(b c) c)"),
        ),
    );
    // A burst of linear lookups, then sequential heavy queries: none of
    // this contends, so every response is ok and fast.
    for _ in 0..5 {
        let resp = expect_ok(conn.request(query("t", "xpath", "//a[b]")));
        assert_eq!(
            resp.get("admission").and_then(Json::as_str),
            Some("fast_lane")
        );
    }
    let resp =
        expect_ok(conn.request(query("t", "cq", "q(x, y) :- label(x, a), following(x, y).")));
    assert_ne!(
        resp.get("admission").and_then(Json::as_str),
        Some("fast_lane")
    );
    server.shutdown().unwrap();
}
