//! Per-tenant usage accounting: a lock-sharded table of counter handles
//! over the server's tenant-labeled metric families.
//!
//! The counters themselves live in the server's [`Registry`] as
//! `tenant`-labeled [`CounterFamily`]s — one source of truth, so the
//! `usage` verb, the `/tenants` exposition, and `/metrics` can never
//! disagree. What this table adds is the hot-path shape: looking a
//! tenant up in a family takes that family's mutex, and a query records
//! six quantities, so the request path would cross six mutexes per
//! query. Instead the table caches one [`TenantCounters`] block (nine
//! pre-resolved [`Counter`] handles) per tenant, sharded by tenant-name
//! hash across [`SHARDS`] locks so concurrent sessions for different
//! tenants don't serialize on one map.

use std::collections::HashMap;
use std::sync::{Arc, Mutex};

use treequery_obs::metrics::{Counter, CounterFamily, Registry};
use treequery_obs::Json;

/// Shard count for the tenant → handle map (power of two).
pub const SHARDS: usize = 8;

/// The pre-resolved counter handles for one tenant.
pub struct TenantCounters {
    /// Successfully answered queries.
    pub queries: Counter,
    /// Cumulative evaluation wall time, nanoseconds.
    pub wall_ns: Counter,
    /// Result rows returned.
    pub rows: Counter,
    /// Serialized response bytes for successful queries.
    pub resp_bytes: Counter,
    /// Queries that waited in the admission queue before running.
    pub admission_waits: Counter,
    /// Queries rejected because the admission wait timed out.
    pub admission_rejected: Counter,
    /// Queries that ended cancelled (explicit cancel or deadline).
    pub cancelled: Counter,
    /// Error responses other than cancellations and admission
    /// rejections.
    pub errors: Counter,
    /// Edit scripts applied.
    pub edits: Counter,
}

struct Families {
    queries: CounterFamily,
    wall_ns: CounterFamily,
    rows: CounterFamily,
    resp_bytes: CounterFamily,
    admission_waits: CounterFamily,
    admission_rejected: CounterFamily,
    cancelled: CounterFamily,
    errors: CounterFamily,
    edits: CounterFamily,
}

/// The sharded tenant table. Construction registers the nine
/// `treequery_tenant_*` families into the server's registry.
pub struct UsageTable {
    families: Families,
    shards: [Mutex<HashMap<String, Arc<TenantCounters>>>; SHARDS],
}

fn shard_of(tenant: &str) -> usize {
    // FNV-1a; only the shard index matters, not distribution quality.
    let mut h: u64 = 0xcbf29ce484222325;
    for b in tenant.bytes() {
        h ^= b as u64;
        h = h.wrapping_mul(0x100000001b3);
    }
    (h as usize) & (SHARDS - 1)
}

impl UsageTable {
    /// A table whose counter families are registered in `registry`.
    pub fn new(registry: &Registry) -> UsageTable {
        let fam = |name, help| registry.counter_family(name, help, "tenant");
        UsageTable {
            families: Families {
                queries: fam(
                    "treequery_tenant_queries",
                    "Successfully answered queries per tenant.",
                ),
                wall_ns: fam(
                    "treequery_tenant_wall_ns",
                    "Cumulative evaluation wall time per tenant, nanoseconds.",
                ),
                rows: fam("treequery_tenant_rows", "Result rows returned per tenant."),
                resp_bytes: fam(
                    "treequery_tenant_resp_bytes",
                    "Serialized response bytes per tenant (successful queries).",
                ),
                admission_waits: fam(
                    "treequery_tenant_admission_waits",
                    "Queries that queued for a heavy-lane slot per tenant.",
                ),
                admission_rejected: fam(
                    "treequery_tenant_admission_rejected",
                    "Queries rejected by admission timeout per tenant.",
                ),
                cancelled: fam(
                    "treequery_tenant_cancelled",
                    "Queries cancelled (explicitly or by deadline) per tenant.",
                ),
                errors: fam(
                    "treequery_tenant_errors",
                    "Other error responses per tenant.",
                ),
                edits: fam("treequery_tenant_edits", "Edit scripts applied per tenant."),
            },
            shards: std::array::from_fn(|_| Mutex::new(HashMap::new())),
        }
    }

    /// The counter block for `tenant`, resolved through the shard cache.
    pub fn handle(&self, tenant: &str) -> Arc<TenantCounters> {
        let mut shard = self.shards[shard_of(tenant)]
            .lock()
            .expect("usage shard poisoned");
        Arc::clone(shard.entry(tenant.to_owned()).or_insert_with(|| {
            let f = &self.families;
            Arc::new(TenantCounters {
                queries: f.queries.with_label(tenant),
                wall_ns: f.wall_ns.with_label(tenant),
                rows: f.rows.with_label(tenant),
                resp_bytes: f.resp_bytes.with_label(tenant),
                admission_waits: f.admission_waits.with_label(tenant),
                admission_rejected: f.admission_rejected.with_label(tenant),
                cancelled: f.cancelled.with_label(tenant),
                errors: f.errors.with_label(tenant),
                edits: f.edits.with_label(tenant),
            })
        }))
    }

    /// Ensures `tenant` exists in the table (and the expositions) even
    /// before it records anything — called at `hello`, so a freshly
    /// declared tenant is immediately visible in `/tenants`.
    pub fn touch(&self, tenant: &str) {
        self.handle(tenant);
    }

    /// Records one successful query.
    pub fn record_query(
        &self,
        tenant: &str,
        wall_ns: u64,
        rows: u64,
        resp_bytes: u64,
        queued: bool,
    ) {
        let h = self.handle(tenant);
        h.queries.inc();
        h.wall_ns.add(wall_ns);
        h.rows.add(rows);
        h.resp_bytes.add(resp_bytes);
        if queued {
            h.admission_waits.inc();
        }
    }

    /// Records one applied edit script.
    pub fn record_edit(&self, tenant: &str) {
        self.handle(tenant).edits.inc();
    }

    /// Records one error response by its structured code, bucketing
    /// cancellations and admission rejections separately.
    pub fn record_error_code(&self, tenant: &str, code: &str) {
        let h = self.handle(tenant);
        match code {
            "cancelled" | "deadline_exceeded" => h.cancelled.inc(),
            "admission_rejected" => h.admission_rejected.inc(),
            _ => h.errors.inc(),
        }
    }

    /// Tenants currently known, sorted.
    pub fn tenants(&self) -> Vec<String> {
        let mut names: Vec<String> = self
            .shards
            .iter()
            .flat_map(|s| {
                s.lock()
                    .expect("usage shard poisoned")
                    .keys()
                    .cloned()
                    .collect::<Vec<_>>()
            })
            .collect();
        names.sort();
        names
    }

    /// The `usage` verb's `tenants` array: one object per tenant,
    /// name-sorted (deterministic for transcript goldens).
    pub fn to_json(&self) -> Json {
        Json::Arr(
            self.tenants()
                .into_iter()
                .map(|name| {
                    let h = self.handle(&name);
                    Json::obj()
                        .set("tenant", name.as_str())
                        .set("queries", h.queries.get())
                        .set("wall_ns", h.wall_ns.get())
                        .set("rows", h.rows.get())
                        .set("resp_bytes", h.resp_bytes.get())
                        .set("admission_waits", h.admission_waits.get())
                        .set("admission_rejected", h.admission_rejected.get())
                        .set("cancelled", h.cancelled.get())
                        .set("errors", h.errors.get())
                        .set("edits", h.edits.get())
                })
                .collect(),
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use treequery_obs::prom;

    #[test]
    fn recording_flows_into_the_registry_families() {
        let r = Registry::new();
        let t = UsageTable::new(&r);
        t.record_query("alpha", 1_000, 3, 120, false);
        t.record_query("alpha", 2_000, 1, 80, true);
        t.record_query("beta", 500, 0, 40, false);
        t.record_edit("alpha");
        t.record_error_code("beta", "cancelled");
        t.record_error_code("beta", "deadline_exceeded");
        t.record_error_code("beta", "admission_rejected");
        t.record_error_code("alpha", "no_such_document");
        let text = prom::render_prefixed(&r, "treequery_tenant_");
        assert!(text.contains("treequery_tenant_queries{tenant=\"alpha\"} 2\n"));
        assert!(text.contains("treequery_tenant_wall_ns{tenant=\"alpha\"} 3000\n"));
        assert!(text.contains("treequery_tenant_rows{tenant=\"alpha\"} 4\n"));
        assert!(text.contains("treequery_tenant_resp_bytes{tenant=\"alpha\"} 200\n"));
        assert!(text.contains("treequery_tenant_admission_waits{tenant=\"alpha\"} 1\n"));
        assert!(text.contains("treequery_tenant_cancelled{tenant=\"beta\"} 2\n"));
        assert!(text.contains("treequery_tenant_admission_rejected{tenant=\"beta\"} 1\n"));
        assert!(text.contains("treequery_tenant_errors{tenant=\"alpha\"} 1\n"));
        assert!(text.contains("treequery_tenant_edits{tenant=\"alpha\"} 1\n"));
        prom::validate_exposition(&text).expect("tenant exposition validates");
    }

    #[test]
    fn to_json_is_name_sorted_and_complete() {
        let r = Registry::new();
        let t = UsageTable::new(&r);
        t.touch("zeta");
        t.record_query("alpha", 10, 2, 30, false);
        let v = t.to_json();
        let rows = v.as_arr().unwrap();
        assert_eq!(rows.len(), 2);
        assert_eq!(rows[0].get("tenant").unwrap().as_str(), Some("alpha"));
        assert_eq!(rows[0].get("queries").unwrap().as_u64(), Some(1));
        assert_eq!(rows[1].get("tenant").unwrap().as_str(), Some("zeta"));
        assert_eq!(rows[1].get("queries").unwrap().as_u64(), Some(0));
    }

    #[test]
    fn handles_are_cached_per_shard() {
        let r = Registry::new();
        let t = UsageTable::new(&r);
        let a = t.handle("alpha");
        let b = t.handle("alpha");
        assert!(Arc::ptr_eq(&a, &b));
        // Hostile tenant names shard and render without issue.
        t.record_query("evil\"tenant\\with\nnewline", 1, 1, 1, false);
        let text = prom::render_prefixed(&r, "treequery_tenant_");
        prom::validate_exposition(&text).expect("hostile tenant name validates");
    }
}
