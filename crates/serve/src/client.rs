//! Transcript replay client: the CI gate's and the conformance suite's
//! way of driving a live server deterministically.
//!
//! A transcript is JSON lines; `#`-prefixed lines are comments. Each
//! line is a request, except that keys starting with `_` are replay
//! directives, stripped before the request goes on the wire:
//!
//! * `_conn` — which connection to use (default `"main"`); connections
//!   open lazily, so multi-connection scripts (the cancel dance) need no
//!   setup stanza. Each connection must speak its own `hello` first —
//!   transcripts spell that out.
//! * `_async` — send the request but defer reading the response. The
//!   slow query in a cancellation script is sent this way so the script
//!   can go cancel it from another connection.
//! * `_await` — no request: read one deferred response from the named
//!   connection (FIFO) and check it.
//! * `_expect` — subset-match the response: every key in the pattern
//!   must be present and equal in the response; `"*"` matches any
//!   present value; extra response fields (timings, ids) are ignored,
//!   which is what keeps committed transcripts stable.
//! * `_retry_until` — re-send the request (sleeping briefly) until the
//!   response matches the pattern or ~10 s elapse. This is how a script
//!   waits for a racing state change deterministically — e.g. `cancel`
//!   by tag retried until the victim query has registered itself.
//! * `_contains` — array of substrings that must all appear in the
//!   rendered response. Used to assert specific metric samples appear
//!   in a `metrics` scrape without pinning the whole exposition.
//! * `_validate_exposition` — run the Prometheus exposition-format
//!   validator over the response's `exposition` field; fails the replay
//!   on any format error.

use std::collections::HashMap;
use std::io::{BufReader, BufWriter, Write};
use std::net::TcpStream;
use std::time::{Duration, Instant};

use treequery_obs::{parse_json, Json};

use crate::proto::{self, Frame};

/// What a replay did: sizes for the CI gate to sanity-check.
#[derive(Clone, Copy, Debug, Default)]
pub struct ReplayReport {
    /// Requests sent.
    pub requests: usize,
    /// `_expect` / `_retry_until` patterns that matched.
    pub checks: usize,
}

struct Conn {
    reader: BufReader<TcpStream>,
    writer: BufWriter<TcpStream>,
    /// Responses sent by the server but not yet read (`_async` sends).
    pending: usize,
}

impl Conn {
    fn open(port: u16) -> Result<Conn, String> {
        // Retry briefly: the CI gate starts the server concurrently.
        let deadline = Instant::now() + Duration::from_secs(5);
        let stream = loop {
            match TcpStream::connect(("127.0.0.1", port)) {
                Ok(s) => break s,
                Err(e) if Instant::now() < deadline => {
                    let _ = e;
                    std::thread::sleep(Duration::from_millis(20));
                }
                Err(e) => return Err(format!("connect to port {port}: {e}")),
            }
        };
        let read_half = stream.try_clone().map_err(|e| e.to_string())?;
        Ok(Conn {
            reader: BufReader::new(read_half),
            writer: BufWriter::new(stream),
            pending: 0,
        })
    }

    fn send(&mut self, req: &Json) -> Result<(), String> {
        self.writer
            .write_all(req.render().as_bytes())
            .and_then(|()| self.writer.write_all(b"\n"))
            .and_then(|()| self.writer.flush())
            .map_err(|e| format!("send: {e}"))
    }

    fn recv(&mut self) -> Result<Json, String> {
        match proto::read_frame(&mut self.reader).map_err(|e| format!("recv: {e}"))? {
            Frame::Value(v) => Ok(v),
            Frame::Eof => Err("server closed the connection".to_owned()),
            Frame::Oversized => Err("oversized response frame".to_owned()),
            Frame::Malformed(m) => Err(format!("malformed response: {m}")),
        }
    }
}

/// Subset match: every key in `pattern` must be present and matching in
/// `actual`; the string `"*"` matches any present value; numbers compare
/// numerically (so `1` matches `1.0`); arrays match element-wise at
/// equal length.
pub fn subset_matches(pattern: &Json, actual: &Json) -> bool {
    match (pattern, actual) {
        (Json::Str(s), _) if s == "*" => true,
        (Json::Obj(fields), _) => fields
            .iter()
            .all(|(k, v)| actual.get(k).is_some_and(|a| subset_matches(v, a))),
        (Json::Arr(ps), Json::Arr(vs)) => {
            ps.len() == vs.len() && ps.iter().zip(vs).all(|(p, v)| subset_matches(p, v))
        }
        (p, a) => match (p.as_f64(), a.as_f64()) {
            (Some(x), Some(y)) => x == y,
            _ => p == a,
        },
    }
}

/// Whether `needle` appears anywhere in the response: in its rendered
/// form or inside any *raw* string value (so a `_contains` needle can
/// quote a metric sample from an `exposition` field without worrying
/// about JSON escaping).
fn json_contains(resp: &Json, needle: &str) -> bool {
    match resp {
        Json::Str(s) => s.contains(needle),
        Json::Obj(fields) => {
            fields.iter().any(|(_, v)| json_contains(v, needle)) || resp.render().contains(needle)
        }
        Json::Arr(items) => items.iter().any(|v| json_contains(v, needle)),
        other => other.render().contains(needle),
    }
}

/// Runs a transcript line's response checks (`_expect`, `_contains`,
/// `_validate_exposition`) against a received response.
fn run_checks(n: usize, line: &Json, resp: &Json, report: &mut ReplayReport) -> Result<(), String> {
    if let Some(pattern) = line.get("_expect") {
        if !subset_matches(pattern, resp) {
            return Err(format!(
                "line {n}: expected subset {} but got {}",
                pattern.render(),
                resp.render()
            ));
        }
        report.checks += 1;
    }
    if let Some(Json::Arr(needles)) = line.get("_contains") {
        for needle in needles {
            let needle = needle
                .as_str()
                .ok_or_else(|| format!("line {n}: _contains entries must be strings"))?;
            if !json_contains(resp, needle) {
                return Err(format!(
                    "line {n}: response does not contain {needle:?}: {}",
                    resp.render()
                ));
            }
            report.checks += 1;
        }
    }
    if line.get("_validate_exposition") == Some(&Json::Bool(true)) {
        let text = resp
            .get("exposition")
            .and_then(Json::as_str)
            .ok_or_else(|| format!("line {n}: no `exposition` string field to validate"))?;
        treequery_obs::prom::validate_exposition(text)
            .map_err(|e| format!("line {n}: invalid exposition: {e}"))?;
        report.checks += 1;
    }
    Ok(())
}

/// Strips the `_`-prefixed replay directives off a transcript line,
/// returning the wire request.
fn wire_request(line: &Json) -> Json {
    match line {
        Json::Obj(fields) => Json::Obj(
            fields
                .iter()
                .filter(|(k, _)| !k.starts_with('_'))
                .cloned()
                .collect(),
        ),
        other => other.clone(),
    }
}

/// Replays a transcript (see the module docs for the format) against a
/// server on `127.0.0.1:port`.
pub fn replay_lines(port: u16, transcript: &str) -> Result<ReplayReport, String> {
    let mut conns: HashMap<String, Conn> = HashMap::new();
    let mut report = ReplayReport::default();

    for (idx, raw) in transcript.lines().enumerate() {
        let n = idx + 1;
        let raw = raw.trim();
        if raw.is_empty() || raw.starts_with('#') {
            continue;
        }
        let line = parse_json(raw).map_err(|e| format!("transcript line {n}: {e}"))?;
        let conn_name = line
            .get("_conn")
            .and_then(Json::as_str)
            .unwrap_or("main")
            .to_owned();
        let retry_until = line.get("_retry_until").cloned();
        let is_async =
            line.get("_await").is_none() && matches!(line.get("_async"), Some(Json::Bool(true)));

        if let Some(await_conn) = line.get("_await").and_then(Json::as_str) {
            let conn = conns
                .get_mut(await_conn)
                .ok_or_else(|| format!("line {n}: _await on unopened connection {await_conn:?}"))?;
            if conn.pending == 0 {
                return Err(format!(
                    "line {n}: _await on {await_conn:?} with no pending response"
                ));
            }
            let resp = conn.recv().map_err(|e| format!("line {n}: {e}"))?;
            conn.pending -= 1;
            run_checks(n, &line, &resp, &mut report)?;
            continue;
        }

        let req = wire_request(&line);
        if !conns.contains_key(&conn_name) {
            conns.insert(conn_name.clone(), Conn::open(port)?);
        }
        let conn = conns.get_mut(&conn_name).expect("just inserted");

        if is_async {
            conn.send(&req).map_err(|e| format!("line {n}: {e}"))?;
            conn.pending += 1;
            report.requests += 1;
            continue;
        }

        if let Some(pattern) = retry_until {
            let deadline = Instant::now() + Duration::from_secs(10);
            loop {
                conn.send(&req).map_err(|e| format!("line {n}: {e}"))?;
                report.requests += 1;
                let resp = conn.recv().map_err(|e| format!("line {n}: {e}"))?;
                if subset_matches(&pattern, &resp) {
                    report.checks += 1;
                    run_checks(n, &line, &resp, &mut report)?;
                    break;
                }
                if Instant::now() >= deadline {
                    return Err(format!(
                        "line {n}: gave up retrying; last response {}",
                        resp.render()
                    ));
                }
                std::thread::sleep(Duration::from_millis(20));
            }
            continue;
        }

        conn.send(&req).map_err(|e| format!("line {n}: {e}"))?;
        report.requests += 1;
        let resp = conn.recv().map_err(|e| format!("line {n}: {e}"))?;
        run_checks(n, &line, &resp, &mut report)?;
    }
    Ok(report)
}

/// Replays a transcript file against `127.0.0.1:port`.
pub fn replay(port: u16, path: &str) -> Result<ReplayReport, String> {
    let text =
        std::fs::read_to_string(path).map_err(|e| format!("read transcript {path:?}: {e}"))?;
    replay_lines(port, &text)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn j(s: &str) -> Json {
        parse_json(s).unwrap()
    }

    #[test]
    fn subset_matching_ignores_extra_fields_and_wildcards() {
        let actual = j(r#"{"ok":true,"id":7,"rows":[1,2],"wall_us":993}"#);
        assert!(subset_matches(&j(r#"{"ok":true,"rows":[1,2]}"#), &actual));
        assert!(subset_matches(&j(r#"{"id":"*"}"#), &actual));
        assert!(!subset_matches(&j(r#"{"rows":[1]}"#), &actual));
        assert!(!subset_matches(&j(r#"{"missing":1}"#), &actual));
        // Numeric comparison crosses integer/float representations.
        assert!(subset_matches(&j(r#"{"id":7.0}"#), &actual));
    }

    #[test]
    fn wire_requests_shed_directives() {
        let line = j(r#"{"verb":"query","_conn":"a","_expect":{"ok":true},"doc":"t"}"#);
        assert_eq!(
            wire_request(&line).render(),
            r#"{"verb":"query","doc":"t"}"#
        );
    }
}
