//! Multi-tenant query service over the treequery engine.
//!
//! This crate turns the single-tree [`treequery_core::Engine`] into a
//! long-running service: a [`catalog::Catalog`] of named mutable
//! [`treequery_core::Document`]s pooling one plan cache, a line-delimited
//! JSON wire protocol over TCP ([`proto`]), per-query deadlines and
//! cross-connection CANCEL through [`treequery_tree::CancelToken`], and
//! admission control that keeps cheap (provably linear) queries flowing
//! while expensive ones queue ([`admission`]).
//!
//! # Protocol sketch
//!
//! One JSON object per line, both directions. A connection opens with a
//! versioned hello; every later request names a verb:
//!
//! ```text
//! → {"verb":"hello","version":1}
//! ← {"ok":true,"server":"treequery-serve","version":1}
//! → {"verb":"load","name":"t","term":"r(a(b) c)"}
//! ← {"ok":true,"doc":"t","nodes":4,...}
//! → {"verb":"query","doc":"t","lang":"xpath","text":"//a[b]","deadline_ms":50,"tag":"q1"}
//! ← {"ok":true,"id":1,"rows":[1],...}
//! ```
//!
//! Errors are structured (`{"ok":false,"code":...,"error":...}`) and
//! never drop the connection, with one deliberate exception: a hello
//! carrying the wrong protocol version is answered and then closed —
//! there is nothing the peer could say next that we would understand.
//!
//! # Cancellation
//!
//! `query` accepts `deadline_ms` and an optional client `tag`; the server
//! assigns every running query an `id` and keeps `(id, tag) →`
//! [`treequery_tree::CancelToken`] in a cross-connection registry. A
//! `cancel` request (usually from a second connection — the first is
//! blocked waiting for its answer) trips the token; the executor's
//! kernels observe it at the next chunk boundary and the blocked
//! connection gets `{"ok":false,"code":"cancelled"}` while the session —
//! and the document — stay usable.
//!
//! # Observability
//!
//! Every reply carries a `trace_id` (client-supplied on the request or
//! server-generated), which also joins the reply to its flight-recorder
//! record. `hello` accepts an optional `tenant`; the server accounts
//! usage per tenant ([`usage`], the `usage` verb, and the `/tenants`
//! exposition) and tracks per-cost-class latency objectives with
//! multi-window burn rates ([`treequery_obs::slo`], the `slo` verb, and
//! `/slo`). The HTTP side lives on a separate observatory listener
//! ([`http::spawn_observatory`]).

pub mod admission;
pub mod catalog;
pub mod client;
pub mod http;
pub mod proto;
pub mod server;
pub mod session;
pub mod usage;

pub use admission::{Admission, AdmissionTimeout, AdmissionVerdict, Permit};
pub use catalog::Catalog;
pub use client::{replay, replay_lines, ReplayReport};
pub use http::spawn_observatory;
pub use proto::{ErrorCode, Frame, MAX_LINE_BYTES, PROTOCOL_VERSION};
pub use server::{default_objectives, Server, ServerConfig, ServerHandle};
pub use usage::UsageTable;
