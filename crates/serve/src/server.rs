//! The TCP server: accept loop, shared state, the cross-connection
//! in-flight query registry, and the per-server metrics registry.
//!
//! Each connection gets its own session thread ([`crate::session`]); the
//! threads share one [`Shared`] block: the catalog, admission control,
//! and the registry of running queries that makes `cancel` work from a
//! *different* connection than the one blocked on its answer.
//!
//! Shutdown is cooperative: the `shutdown` verb flips a flag and pokes
//! the listener with a loopback connect so the blocked `accept` observes
//! it — no platform-specific listener teardown needed.

use std::collections::HashMap;
use std::io;
use std::net::{TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, AtomicU32, AtomicU64, Ordering};
use std::sync::{Arc, Mutex};
use std::time::{Duration, Instant};

use treequery_core::EngineConfig;
use treequery_obs::metrics::{Counter, CounterFamily, Gauge, Registry};
use treequery_obs::prom;
use treequery_obs::slo::{MonotonicClock, Objective, SloConfig, SloTracker};
use treequery_tree::CancelToken;

use crate::admission::Admission;
use crate::catalog::Catalog;
use crate::session;
use crate::usage::UsageTable;

/// Server tunables.
#[derive(Clone, Debug)]
pub struct ServerConfig {
    /// Heavy-lane admission slots (superlinear plans in flight at once).
    pub heavy_cap: usize,
    /// How long a heavy query waits for a slot before
    /// `admission_rejected`.
    pub admit_timeout: Duration,
    /// How long a graceful `shutdown` waits for in-flight queries to
    /// finish before cancelling what remains.
    pub drain: Duration,
    /// Per-cost-class latency objectives (see [`default_objectives`])
    /// and burn-rate windows.
    pub slo: SloConfig,
    /// Engine configuration handed to every document.
    pub engine: EngineConfig,
}

/// The stock latency objectives, keyed by the planner's cost classes:
/// the paper's `O(|D|·|Q|)` core gets a tight bound, enumeration and
/// fixpoints a looser one, backtracking the loosest. `harness serve
/// --slo CLASS=MS` overrides individual thresholds.
pub fn default_objectives() -> Vec<Objective> {
    const MS: u64 = 1_000_000;
    vec![
        Objective {
            class: "linear".to_owned(),
            threshold_ns: 50 * MS,
        },
        Objective {
            class: "output_sensitive".to_owned(),
            threshold_ns: 250 * MS,
        },
        Objective {
            class: "polynomial".to_owned(),
            threshold_ns: 250 * MS,
        },
        Objective {
            class: "exponential".to_owned(),
            threshold_ns: 2_000 * MS,
        },
    ]
}

impl Default for ServerConfig {
    fn default() -> Self {
        ServerConfig {
            heavy_cap: 4,
            admit_timeout: Duration::from_secs(2),
            drain: Duration::from_secs(1),
            slo: SloConfig {
                objectives: default_objectives(),
                ..SloConfig::default()
            },
            engine: EngineConfig::default(),
        }
    }
}

/// One running query, visible to `cancel` from any connection.
pub(crate) struct Inflight {
    pub(crate) token: CancelToken,
    pub(crate) tag: Option<String>,
}

/// State shared by every session thread of one server.
pub struct Shared {
    pub(crate) catalog: Catalog,
    pub(crate) admission: Admission,
    pub(crate) admit_timeout: Duration,
    registry: Registry,
    pub(crate) requests: CounterFamily,
    pub(crate) errors: CounterFamily,
    pub(crate) sessions_opened: Counter,
    pub(crate) sessions_active: Gauge,
    pub(crate) queries_inflight: Gauge,
    pub(crate) usage: UsageTable,
    pub(crate) slo: SloTracker,
    pub(crate) drain: Duration,
    inflight: Mutex<HashMap<u64, Inflight>>,
    next_query_id: AtomicU64,
    next_trace_id: AtomicU64,
    shutdown: AtomicBool,
    port: u16,
    /// The observatory's HTTP port (0 = none); the shutdown poke must
    /// reach that listener too.
    observatory_port: AtomicU32,
}

impl Shared {
    fn new(config: &ServerConfig, port: u16) -> Shared {
        let registry = Registry::new();
        let requests = registry.counter_family(
            "treequery_serve_requests",
            "Requests handled, by verb.",
            "verb",
        );
        let errors = registry.counter_family(
            "treequery_serve_errors",
            "Error responses sent, by structured code.",
            "code",
        );
        let sessions_opened = registry.counter(
            "treequery_serve_sessions_opened",
            "Connections accepted since the server started.",
        );
        let sessions_active = registry.gauge(
            "treequery_serve_sessions_active",
            "Connections currently open.",
        );
        let queries_inflight = registry.gauge(
            "treequery_serve_queries_inflight",
            "Queries currently registered as cancellable.",
        );
        let admission = Admission::new(config.heavy_cap, &registry);
        let usage = UsageTable::new(&registry);
        let slo = SloTracker::new(config.slo.clone(), Arc::new(MonotonicClock::new()));
        Shared {
            catalog: Catalog::new(config.engine.clone()),
            admission,
            admit_timeout: config.admit_timeout,
            registry,
            requests,
            errors,
            sessions_opened,
            sessions_active,
            queries_inflight,
            usage,
            slo,
            drain: config.drain,
            inflight: Mutex::new(HashMap::new()),
            next_query_id: AtomicU64::new(1),
            next_trace_id: AtomicU64::new(1),
            shutdown: AtomicBool::new(false),
            port,
            observatory_port: AtomicU32::new(0),
        }
    }

    /// The catalog.
    pub fn catalog(&self) -> &Catalog {
        &self.catalog
    }

    /// The bound port.
    pub fn port(&self) -> u16 {
        self.port
    }

    /// Registers a running query; returns its server-assigned id.
    pub(crate) fn register_query(&self, token: CancelToken, tag: Option<String>) -> u64 {
        let id = self.next_query_id.fetch_add(1, Ordering::Relaxed);
        self.inflight
            .lock()
            .expect("inflight registry poisoned")
            .insert(id, Inflight { token, tag });
        self.queries_inflight.add(1);
        id
    }

    /// Unregisters a finished (or rejected) query.
    pub(crate) fn unregister_query(&self, id: u64) {
        if self
            .inflight
            .lock()
            .expect("inflight registry poisoned")
            .remove(&id)
            .is_some()
        {
            self.queries_inflight.add(-1);
        }
    }

    /// Trips the token of the query with this server id. Returns how
    /// many queries were cancelled (0 or 1).
    pub(crate) fn cancel_by_id(&self, id: u64) -> usize {
        let inflight = self.inflight.lock().expect("inflight registry poisoned");
        match inflight.get(&id) {
            Some(entry) => {
                entry.token.cancel();
                1
            }
            None => 0,
        }
    }

    /// Trips every running query carrying this client tag.
    pub(crate) fn cancel_by_tag(&self, tag: &str) -> usize {
        let inflight = self.inflight.lock().expect("inflight registry poisoned");
        let mut n = 0;
        for entry in inflight.values() {
            if entry.tag.as_deref() == Some(tag) {
                entry.token.cancel();
                n += 1;
            }
        }
        n
    }

    /// Whether shutdown has been requested.
    pub fn shutting_down(&self) -> bool {
        self.shutdown.load(Ordering::SeqCst)
    }

    /// Requests shutdown and wakes the accept loop.
    pub fn request_shutdown(&self) {
        self.begin_shutdown();
        // Poke the listeners so their blocked accept()s return and
        // observe the flag. A failure just means a listener is already
        // gone.
        let _ = TcpStream::connect(("127.0.0.1", self.port));
        let obs_port = self.observatory_port.load(Ordering::SeqCst);
        if obs_port != 0 {
            let _ = TcpStream::connect(("127.0.0.1", obs_port as u16));
        }
    }

    /// Sets the shutdown flag without waking the accept loops: new
    /// connections are refused from here on, but the process keeps
    /// running. The `shutdown` verb uses this so the accept loop (and
    /// with it the whole server process) cannot exit before the drain
    /// finishes and the ack is flushed; the session then issues the
    /// listener pokes via [`Self::request_shutdown`] after the write.
    pub fn begin_shutdown(&self) {
        self.shutdown.store(true, Ordering::SeqCst);
    }

    /// Records the observatory's HTTP port so [`Self::request_shutdown`]
    /// can poke that listener too.
    pub(crate) fn set_observatory_port(&self, port: u16) {
        self.observatory_port.store(port as u32, Ordering::SeqCst);
    }

    /// A fresh server-generated trace id, for requests that did not
    /// supply one.
    pub(crate) fn make_trace_id(&self) -> String {
        format!(
            "srv-{:x}",
            self.next_trace_id.fetch_add(1, Ordering::Relaxed)
        )
    }

    /// Queries currently registered as cancellable.
    pub fn inflight_count(&self) -> usize {
        self.inflight
            .lock()
            .expect("inflight registry poisoned")
            .len()
    }

    /// Graceful drain: waits up to the configured drain budget for
    /// in-flight queries to unregister on their own, then trips the
    /// cancel tokens of whatever remains and waits (bounded) for those
    /// to clear too. Returns `(drained, cancelled)` — how many queries
    /// finished within budget vs. were cut off.
    pub(crate) fn drain_inflight(&self) -> (u64, u64) {
        let initial = self.inflight_count() as u64;
        if initial == 0 {
            return (0, 0);
        }
        let deadline = Instant::now() + self.drain;
        while Instant::now() < deadline && self.inflight_count() > 0 {
            std::thread::sleep(Duration::from_millis(5));
        }
        let cancelled = {
            let inflight = self.inflight.lock().expect("inflight registry poisoned");
            for entry in inflight.values() {
                entry.token.cancel();
            }
            inflight.len() as u64
        };
        // Cancellation is cooperative; give the tripped queries a
        // bounded window to notice and unregister so the ack reflects a
        // settled server.
        let grace = Instant::now() + Duration::from_secs(2);
        while Instant::now() < grace && self.inflight_count() > 0 {
            std::thread::sleep(Duration::from_millis(5));
        }
        (initial.saturating_sub(cancelled), cancelled)
    }

    /// Renders the tenant-usage exposition: exactly the
    /// `treequery_tenant_*` counter families.
    pub fn render_tenant_exposition(&self) -> String {
        prom::render_prefixed(&self.registry, "treequery_tenant_")
    }

    /// Publishes the SLO gauges from the tracker's current windows and
    /// renders exactly the `treequery_slo_*` families.
    pub fn render_slo_exposition(&self) -> String {
        self.slo.publish(&self.registry);
        prom::render_prefixed(&self.registry, "treequery_slo_")
    }

    /// Renders the Prometheus exposition for this server: the serve,
    /// admission, tenant, and SLO instruments plus a scrape-time
    /// snapshot of the shared engine counters (every document pools one
    /// metrics block).
    pub fn render_metrics(&self) -> String {
        self.slo.publish(&self.registry);
        let snap = self.catalog.metrics().snapshot();
        let rows: [(&'static str, &'static str, u64); 5] = [
            (
                "treequery_engine_queries_executed",
                "Queries run end to end by this server's engines.",
                snap.queries_executed,
            ),
            (
                "treequery_engine_queries_cancelled",
                "Queries aborted by cooperative cancellation.",
                snap.queries_cancelled,
            ),
            (
                "treequery_engine_plan_cache_hits",
                "Plan-cache hits across the pooled cache.",
                snap.plan_cache_hits,
            ),
            (
                "treequery_engine_plan_cache_misses",
                "Plan-cache misses across the pooled cache.",
                snap.plan_cache_misses,
            ),
            (
                "treequery_engine_plans_cached",
                "Entries in the pooled plan cache right now.",
                self.catalog.plan_cache().len() as u64,
            ),
        ];
        for (name, help, value) in rows {
            self.registry
                .gauge_or_existing(name, help)
                .set(value as i64);
        }
        prom::render_registry(&self.registry)
    }
}

/// A bound, not-yet-running server.
pub struct Server {
    listener: TcpListener,
    shared: Arc<Shared>,
}

impl Server {
    /// Binds `addr` (use port 0 for an ephemeral port).
    pub fn bind(addr: &str, config: ServerConfig) -> io::Result<Server> {
        let listener = TcpListener::bind(addr)?;
        let port = listener.local_addr()?.port();
        Ok(Server {
            listener,
            shared: Arc::new(Shared::new(&config, port)),
        })
    }

    /// The bound port.
    pub fn port(&self) -> u16 {
        self.shared.port
    }

    /// The shared state (for embedding and tests).
    pub fn shared(&self) -> Arc<Shared> {
        Arc::clone(&self.shared)
    }

    /// Runs the accept loop until shutdown is requested. Session threads
    /// are detached; in-flight sessions drain on their own clock.
    pub fn run(self) -> io::Result<()> {
        loop {
            if self.shared.shutting_down() {
                return Ok(());
            }
            let (stream, _) = match self.listener.accept() {
                Ok(pair) => pair,
                Err(e) if e.kind() == io::ErrorKind::Interrupted => continue,
                Err(e) => return Err(e),
            };
            if self.shared.shutting_down() {
                return Ok(());
            }
            let shared = Arc::clone(&self.shared);
            std::thread::spawn(move || session::serve_connection(stream, shared));
        }
    }

    /// Binds an ephemeral localhost port and runs the server on a
    /// background thread: the one-call setup tests and the harness use.
    pub fn spawn(config: ServerConfig) -> io::Result<ServerHandle> {
        let server = Server::bind("127.0.0.1:0", config)?;
        let port = server.port();
        let shared = server.shared();
        let thread = std::thread::spawn(move || server.run());
        Ok(ServerHandle {
            port,
            shared,
            thread,
        })
    }
}

/// Handle to a [`Server::spawn`]ed background server.
pub struct ServerHandle {
    port: u16,
    shared: Arc<Shared>,
    thread: std::thread::JoinHandle<io::Result<()>>,
}

impl ServerHandle {
    /// The bound port.
    pub fn port(&self) -> u16 {
        self.port
    }

    /// The shared state.
    pub fn shared(&self) -> Arc<Shared> {
        Arc::clone(&self.shared)
    }

    /// Requests shutdown and joins the accept loop.
    pub fn shutdown(self) -> io::Result<()> {
        self.shared.request_shutdown();
        self.thread
            .join()
            .unwrap_or_else(|_| Err(io::Error::other("server thread panicked")))
    }
}
