//! The TCP server: accept loop, shared state, the cross-connection
//! in-flight query registry, and the per-server metrics registry.
//!
//! Each connection gets its own session thread ([`crate::session`]); the
//! threads share one [`Shared`] block: the catalog, admission control,
//! and the registry of running queries that makes `cancel` work from a
//! *different* connection than the one blocked on its answer.
//!
//! Shutdown is cooperative: the `shutdown` verb flips a flag and pokes
//! the listener with a loopback connect so the blocked `accept` observes
//! it — no platform-specific listener teardown needed.

use std::collections::HashMap;
use std::io;
use std::net::{TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Mutex};
use std::time::Duration;

use treequery_core::EngineConfig;
use treequery_obs::metrics::{Counter, CounterFamily, Gauge, Registry};
use treequery_obs::prom;
use treequery_tree::CancelToken;

use crate::admission::Admission;
use crate::catalog::Catalog;
use crate::session;

/// Server tunables.
#[derive(Clone, Debug)]
pub struct ServerConfig {
    /// Heavy-lane admission slots (superlinear plans in flight at once).
    pub heavy_cap: usize,
    /// How long a heavy query waits for a slot before
    /// `admission_rejected`.
    pub admit_timeout: Duration,
    /// Engine configuration handed to every document.
    pub engine: EngineConfig,
}

impl Default for ServerConfig {
    fn default() -> Self {
        ServerConfig {
            heavy_cap: 4,
            admit_timeout: Duration::from_secs(2),
            engine: EngineConfig::default(),
        }
    }
}

/// One running query, visible to `cancel` from any connection.
pub(crate) struct Inflight {
    pub(crate) token: CancelToken,
    pub(crate) tag: Option<String>,
}

/// State shared by every session thread of one server.
pub struct Shared {
    pub(crate) catalog: Catalog,
    pub(crate) admission: Admission,
    pub(crate) admit_timeout: Duration,
    registry: Registry,
    pub(crate) requests: CounterFamily,
    pub(crate) errors: CounterFamily,
    pub(crate) sessions_opened: Counter,
    pub(crate) sessions_active: Gauge,
    pub(crate) queries_inflight: Gauge,
    inflight: Mutex<HashMap<u64, Inflight>>,
    next_query_id: AtomicU64,
    shutdown: AtomicBool,
    port: u16,
}

impl Shared {
    fn new(config: &ServerConfig, port: u16) -> Shared {
        let registry = Registry::new();
        let requests = registry.counter_family(
            "treequery_serve_requests",
            "Requests handled, by verb.",
            "verb",
        );
        let errors = registry.counter_family(
            "treequery_serve_errors",
            "Error responses sent, by structured code.",
            "code",
        );
        let sessions_opened = registry.counter(
            "treequery_serve_sessions_opened",
            "Connections accepted since the server started.",
        );
        let sessions_active = registry.gauge(
            "treequery_serve_sessions_active",
            "Connections currently open.",
        );
        let queries_inflight = registry.gauge(
            "treequery_serve_queries_inflight",
            "Queries currently registered as cancellable.",
        );
        let admission = Admission::new(config.heavy_cap, &registry);
        Shared {
            catalog: Catalog::new(config.engine.clone()),
            admission,
            admit_timeout: config.admit_timeout,
            registry,
            requests,
            errors,
            sessions_opened,
            sessions_active,
            queries_inflight,
            inflight: Mutex::new(HashMap::new()),
            next_query_id: AtomicU64::new(1),
            shutdown: AtomicBool::new(false),
            port,
        }
    }

    /// The catalog.
    pub fn catalog(&self) -> &Catalog {
        &self.catalog
    }

    /// The bound port.
    pub fn port(&self) -> u16 {
        self.port
    }

    /// Registers a running query; returns its server-assigned id.
    pub(crate) fn register_query(&self, token: CancelToken, tag: Option<String>) -> u64 {
        let id = self.next_query_id.fetch_add(1, Ordering::Relaxed);
        self.inflight
            .lock()
            .expect("inflight registry poisoned")
            .insert(id, Inflight { token, tag });
        self.queries_inflight.add(1);
        id
    }

    /// Unregisters a finished (or rejected) query.
    pub(crate) fn unregister_query(&self, id: u64) {
        if self
            .inflight
            .lock()
            .expect("inflight registry poisoned")
            .remove(&id)
            .is_some()
        {
            self.queries_inflight.add(-1);
        }
    }

    /// Trips the token of the query with this server id. Returns how
    /// many queries were cancelled (0 or 1).
    pub(crate) fn cancel_by_id(&self, id: u64) -> usize {
        let inflight = self.inflight.lock().expect("inflight registry poisoned");
        match inflight.get(&id) {
            Some(entry) => {
                entry.token.cancel();
                1
            }
            None => 0,
        }
    }

    /// Trips every running query carrying this client tag.
    pub(crate) fn cancel_by_tag(&self, tag: &str) -> usize {
        let inflight = self.inflight.lock().expect("inflight registry poisoned");
        let mut n = 0;
        for entry in inflight.values() {
            if entry.tag.as_deref() == Some(tag) {
                entry.token.cancel();
                n += 1;
            }
        }
        n
    }

    /// Whether shutdown has been requested.
    pub fn shutting_down(&self) -> bool {
        self.shutdown.load(Ordering::SeqCst)
    }

    /// Requests shutdown and wakes the accept loop.
    pub fn request_shutdown(&self) {
        self.shutdown.store(true, Ordering::SeqCst);
        // Poke the listener so the blocked accept() returns and observes
        // the flag. A failure just means the listener is already gone.
        let _ = TcpStream::connect(("127.0.0.1", self.port));
    }

    /// Renders the Prometheus exposition for this server: the serve and
    /// admission instruments plus a scrape-time snapshot of the shared
    /// engine counters (every document pools one metrics block).
    pub fn render_metrics(&self) -> String {
        let snap = self.catalog.metrics().snapshot();
        let rows: [(&'static str, &'static str, u64); 5] = [
            (
                "treequery_engine_queries_executed",
                "Queries run end to end by this server's engines.",
                snap.queries_executed,
            ),
            (
                "treequery_engine_queries_cancelled",
                "Queries aborted by cooperative cancellation.",
                snap.queries_cancelled,
            ),
            (
                "treequery_engine_plan_cache_hits",
                "Plan-cache hits across the pooled cache.",
                snap.plan_cache_hits,
            ),
            (
                "treequery_engine_plan_cache_misses",
                "Plan-cache misses across the pooled cache.",
                snap.plan_cache_misses,
            ),
            (
                "treequery_engine_plans_cached",
                "Entries in the pooled plan cache right now.",
                self.catalog.plan_cache().len() as u64,
            ),
        ];
        for (name, help, value) in rows {
            self.registry
                .gauge_or_existing(name, help)
                .set(value as i64);
        }
        prom::render_registry(&self.registry)
    }
}

/// A bound, not-yet-running server.
pub struct Server {
    listener: TcpListener,
    shared: Arc<Shared>,
}

impl Server {
    /// Binds `addr` (use port 0 for an ephemeral port).
    pub fn bind(addr: &str, config: ServerConfig) -> io::Result<Server> {
        let listener = TcpListener::bind(addr)?;
        let port = listener.local_addr()?.port();
        Ok(Server {
            listener,
            shared: Arc::new(Shared::new(&config, port)),
        })
    }

    /// The bound port.
    pub fn port(&self) -> u16 {
        self.shared.port
    }

    /// The shared state (for embedding and tests).
    pub fn shared(&self) -> Arc<Shared> {
        Arc::clone(&self.shared)
    }

    /// Runs the accept loop until shutdown is requested. Session threads
    /// are detached; in-flight sessions drain on their own clock.
    pub fn run(self) -> io::Result<()> {
        loop {
            if self.shared.shutting_down() {
                return Ok(());
            }
            let (stream, _) = match self.listener.accept() {
                Ok(pair) => pair,
                Err(e) if e.kind() == io::ErrorKind::Interrupted => continue,
                Err(e) => return Err(e),
            };
            if self.shared.shutting_down() {
                return Ok(());
            }
            let shared = Arc::clone(&self.shared);
            std::thread::spawn(move || session::serve_connection(stream, shared));
        }
    }

    /// Binds an ephemeral localhost port and runs the server on a
    /// background thread: the one-call setup tests and the harness use.
    pub fn spawn(config: ServerConfig) -> io::Result<ServerHandle> {
        let server = Server::bind("127.0.0.1:0", config)?;
        let port = server.port();
        let shared = server.shared();
        let thread = std::thread::spawn(move || server.run());
        Ok(ServerHandle {
            port,
            shared,
            thread,
        })
    }
}

/// Handle to a [`Server::spawn`]ed background server.
pub struct ServerHandle {
    port: u16,
    shared: Arc<Shared>,
    thread: std::thread::JoinHandle<io::Result<()>>,
}

impl ServerHandle {
    /// The bound port.
    pub fn port(&self) -> u16 {
        self.port
    }

    /// The shared state.
    pub fn shared(&self) -> Arc<Shared> {
        Arc::clone(&self.shared)
    }

    /// Requests shutdown and joins the accept loop.
    pub fn shutdown(self) -> io::Result<()> {
        self.shared.request_shutdown();
        self.thread
            .join()
            .unwrap_or_else(|_| Err(io::Error::other("server thread panicked")))
    }
}
