//! One connection's session: hello handshake, verb dispatch, and the
//! query path that threads deadlines, cancellation, and tracing through
//! the engine.
//!
//! The protocol is synchronous per connection — one response per request,
//! in order — which is exactly why `cancel` matters: a connection blocked
//! on a long `query` cannot speak, so the cancel arrives on a *second*
//! connection and finds the victim through the server's in-flight
//! registry ([`crate::server::Shared`]).
//!
//! Lock discipline per request: catalog lookup under the catalog read
//! lock (released immediately), then the document's own `RwLock` — read
//! for `query`/`explain`/`stats`, write for `edit` — held across
//! evaluation. Cancellation needs no locks at all: it trips an atomic
//! flag the kernels poll at chunk boundaries.
//!
//! Tracing: every reply carries a `trace_id` — the request's own if it
//! supplied one, server-generated otherwise — and for `query` the same
//! id is threaded into the flight recorder, so a reply can be joined to
//! its full span tree in `/flight` after the fact. The session's tenant
//! (declared at `hello`) labels the usage counters and rides along on
//! the same flight record.

use std::io::{BufReader, BufWriter, Write};
use std::net::TcpStream;
use std::sync::Arc;
use std::time::{Duration, Instant};

use rand::rngs::StdRng;
use rand::SeedableRng;
use treequery_core::{CancelReason, CostClass, EngineError, Query, QueryOutput};
use treequery_obs::{flight, span, Json};
use treequery_tree::{parse_script, parse_term, xmark_document, CancelToken, Tree, XmarkConfig};

use crate::admission::AdmissionVerdict;
use crate::proto::{self, ErrorCode, Frame, PROTOCOL_VERSION};
use crate::server::Shared;

/// Longest accepted client-supplied trace id.
const MAX_TRACE_ID_BYTES: usize = 128;
/// Longest accepted tenant name.
const MAX_TENANT_BYTES: usize = 64;
/// The tenant a connection accounts to until `hello` declares one.
const ANONYMOUS_TENANT: &str = "anonymous";

/// What the session loop does after sending a response.
pub(crate) enum Flow {
    Continue,
    Close,
    /// Close, then stop the whole server. The response goes out *before*
    /// the accept loop is woken, so the requester always sees the ack
    /// even though the process is about to exit.
    CloseAndShutdown,
}

/// Per-connection protocol state: the handshake latch and the tenant
/// every request on this connection accounts to.
pub(crate) struct SessionState {
    hello_done: bool,
    tenant: String,
}

impl Default for SessionState {
    fn default() -> SessionState {
        SessionState {
            hello_done: false,
            tenant: ANONYMOUS_TENANT.to_owned(),
        }
    }
}

/// Serves one accepted connection to completion.
pub(crate) fn serve_connection(stream: TcpStream, shared: Arc<Shared>) {
    shared.sessions_opened.inc();
    shared.sessions_active.add(1);
    let _active = DecrementOnDrop(&shared);
    let Ok(read_half) = stream.try_clone() else {
        return;
    };
    let mut reader = BufReader::new(read_half);
    let mut writer = BufWriter::new(stream);
    let mut sess = SessionState::default();

    loop {
        let frame = match proto::read_frame(&mut reader) {
            Ok(f) => f,
            Err(_) => return, // connection error; nothing to say
        };
        let req = match frame {
            Frame::Eof => return,
            Frame::Oversized => {
                let body = proto::error(
                    ErrorCode::OversizedFrame,
                    format!("line exceeds {} bytes", proto::MAX_LINE_BYTES),
                );
                if send(&shared, &mut writer, &body).is_err() {
                    return;
                }
                continue;
            }
            Frame::Malformed(msg) => {
                let body = proto::error(ErrorCode::MalformedFrame, msg);
                if send(&shared, &mut writer, &body).is_err() {
                    return;
                }
                continue;
            }
            Frame::Value(v) => v,
        };
        let (body, flow) = route(&shared, &req, &mut sess);
        if send(&shared, &mut writer, &body).is_err() {
            return;
        }
        match flow {
            Flow::Continue => {}
            Flow::Close => return,
            Flow::CloseAndShutdown => {
                shared.request_shutdown();
                return;
            }
        }
    }
}

struct DecrementOnDrop<'a>(&'a Shared);
impl Drop for DecrementOnDrop<'_> {
    fn drop(&mut self) {
        self.0.sessions_active.add(-1);
    }
}

fn send(shared: &Shared, writer: &mut impl Write, body: &Json) -> std::io::Result<()> {
    if let Some(code) = body.get("code").and_then(Json::as_str) {
        shared.errors.with_label(code).inc();
    }
    writer.write_all(body.render().as_bytes())?;
    writer.write_all(b"\n")?;
    writer.flush()
}

/// The request's trace id: the client's own if present and sane, a fresh
/// server-generated one otherwise.
fn resolve_trace_id(shared: &Shared, req: &Json) -> Result<String, Json> {
    match req.get("trace_id") {
        None => Ok(shared.make_trace_id()),
        Some(v) => match v.as_str() {
            Some(t) if !t.is_empty() && t.len() <= MAX_TRACE_ID_BYTES => Ok(t.to_owned()),
            _ => Err(proto::error(
                ErrorCode::BadField,
                format!(
                    "'trace_id' must be a non-empty string of at most {MAX_TRACE_ID_BYTES} bytes"
                ),
            )),
        },
    }
}

/// The optional tenant declaration on a `hello` frame.
fn hello_tenant(req: &Json) -> Result<Option<String>, Json> {
    match req.get("tenant") {
        None => Ok(None),
        Some(v) => match v.as_str() {
            Some(t) if !t.is_empty() && t.len() <= MAX_TENANT_BYTES => Ok(Some(t.to_owned())),
            _ => Err(proto::error(
                ErrorCode::BadField,
                format!("'tenant' must be a non-empty string of at most {MAX_TENANT_BYTES} bytes"),
            )),
        },
    }
}

/// Dispatches one parsed request. Pure with respect to the connection:
/// all I/O stays in the caller, which is what the protocol tests lean
/// on. Every reply — success or error — is stamped with the request's
/// trace id, and error codes are charged to the session's tenant.
pub(crate) fn route(shared: &Shared, req: &Json, sess: &mut SessionState) -> (Json, Flow) {
    let (body, flow, trace_id) = match resolve_trace_id(shared, req) {
        Ok(trace_id) => {
            let (body, flow) = dispatch(shared, req, sess, &trace_id);
            (body, flow, trace_id)
        }
        Err(e) => {
            shared.requests.with_label("invalid").inc();
            (e, Flow::Continue, shared.make_trace_id())
        }
    };
    if sess.hello_done {
        if let Some(code) = body.get("code").and_then(Json::as_str) {
            shared.usage.record_error_code(&sess.tenant, code);
        }
    }
    (body.set("trace_id", trace_id), flow)
}

fn dispatch(shared: &Shared, req: &Json, sess: &mut SessionState, trace_id: &str) -> (Json, Flow) {
    let Some(verb) = req.get("verb").and_then(Json::as_str) else {
        shared.requests.with_label("invalid").inc();
        return (
            proto::error(ErrorCode::MissingField, "request needs a string 'verb'"),
            Flow::Continue,
        );
    };
    let known = [
        "hello", "load", "drop", "list", "query", "edit", "explain", "stats", "cancel", "usage",
        "slo", "metrics", "shutdown",
    ];
    let counted = if known.contains(&verb) {
        verb
    } else {
        "unknown"
    };
    shared.requests.with_label(counted).inc();

    if shared.shutting_down() && verb != "hello" {
        return (
            proto::error(ErrorCode::ShuttingDown, "server is shutting down"),
            Flow::Close,
        );
    }
    if !sess.hello_done {
        if verb != "hello" {
            return (
                proto::error(
                    ErrorCode::ExpectedHello,
                    "first frame must be {\"verb\":\"hello\",\"version\":1}",
                ),
                Flow::Continue,
            );
        }
        return match req.get("version").and_then(Json::as_u64) {
            Some(PROTOCOL_VERSION) => match hello_tenant(req) {
                Ok(tenant) => {
                    sess.hello_done = true;
                    if let Some(t) = tenant {
                        sess.tenant = t;
                    }
                    shared.usage.touch(&sess.tenant);
                    (
                        proto::ok()
                            .set("server", "treequery-serve")
                            .set("version", PROTOCOL_VERSION)
                            .set("tenant", sess.tenant.as_str()),
                        Flow::Continue,
                    )
                }
                Err(e) => (e, Flow::Continue),
            },
            Some(v) => (
                proto::error(
                    ErrorCode::VersionMismatch,
                    format!("server speaks version {PROTOCOL_VERSION}, client sent {v}"),
                ),
                Flow::Close,
            ),
            None => (
                proto::error(ErrorCode::MissingField, "hello needs an integer 'version'"),
                Flow::Continue,
            ),
        };
    }

    let body = match verb {
        // Re-hello may switch the tenant the rest of the connection
        // accounts to.
        "hello" => match hello_tenant(req) {
            Ok(tenant) => {
                if let Some(t) = tenant {
                    sess.tenant = t;
                    shared.usage.touch(&sess.tenant);
                }
                proto::ok()
                    .set("server", "treequery-serve")
                    .set("version", PROTOCOL_VERSION)
                    .set("tenant", sess.tenant.as_str())
            }
            Err(e) => e,
        },
        "load" => verb_load(shared, req),
        "drop" => verb_drop(shared, req),
        "list" => verb_list(shared),
        "query" => verb_query(shared, req, sess, trace_id),
        "edit" => {
            let body = verb_edit(shared, req);
            if matches!(body.get("ok"), Some(Json::Bool(true))) {
                shared.usage.record_edit(&sess.tenant);
            }
            body
        }
        "explain" => verb_explain(shared, req),
        "stats" => verb_stats(shared, req),
        "cancel" => verb_cancel(shared, req),
        "usage" => proto::ok().set("tenants", shared.usage.to_json()),
        "slo" => proto::ok()
            .set("target_ppm", shared.slo.target_ppm())
            .set("classes", shared.slo.to_json()),
        "metrics" => proto::ok().set("exposition", shared.render_metrics()),
        "shutdown" => {
            // Refuse new work immediately (flag only — the listener
            // pokes wait until the ack is flushed, or the accept loop
            // could exit and take the process down mid-drain), then
            // drain: in-flight queries get the configured budget to
            // finish before their cancel tokens are tripped. The ack
            // reports how the drain went.
            shared.begin_shutdown();
            let (drained, cancelled) = shared.drain_inflight();
            return (
                proto::ok()
                    .set("shutting_down", true)
                    .set("drained", drained)
                    .set("cancelled", cancelled),
                Flow::CloseAndShutdown,
            );
        }
        other => proto::error(ErrorCode::UnknownVerb, format!("unknown verb {other:?}")),
    };
    (body, Flow::Continue)
}

fn need_str<'a>(req: &'a Json, key: &str) -> Result<&'a str, Json> {
    match req.get(key) {
        Some(v) => v
            .as_str()
            .ok_or_else(|| proto::error(ErrorCode::BadField, format!("'{key}' must be a string"))),
        None => Err(proto::error(
            ErrorCode::MissingField,
            format!("missing field '{key}'"),
        )),
    }
}

fn opt_u64(req: &Json, key: &str) -> Result<Option<u64>, Json> {
    match req.get(key) {
        None => Ok(None),
        Some(v) => v.as_u64().map(Some).ok_or_else(|| {
            proto::error(
                ErrorCode::BadField,
                format!("'{key}' must be a non-negative integer"),
            )
        }),
    }
}

fn fingerprint_hex(fp: u64) -> String {
    format!("{fp:016x}")
}

fn verb_load(shared: &Shared, req: &Json) -> Json {
    let name = match need_str(req, "name") {
        Ok(n) => n,
        Err(e) => return e,
    };
    let tree: Tree = if let Some(term) = req.get("term") {
        let Some(term) = term.as_str() else {
            return proto::error(ErrorCode::BadField, "'term' must be a string");
        };
        match parse_term(term) {
            Ok(t) => t,
            Err(e) => return proto::error(ErrorCode::BadField, format!("term: {e}")),
        }
    } else if let Some(n) = req.get("xmark") {
        let Some(n) = n.as_u64() else {
            return proto::error(ErrorCode::BadField, "'xmark' must be a node count");
        };
        let seed = match opt_u64(req, "seed") {
            Ok(s) => s.unwrap_or(42),
            Err(e) => return e,
        };
        let mut rng = StdRng::seed_from_u64(seed);
        xmark_document(&mut rng, &XmarkConfig::scaled_to(n as usize))
    } else {
        return proto::error(
            ErrorCode::MissingField,
            "load needs 'term' (term syntax) or 'xmark' (node count)",
        );
    };
    match shared.catalog.load(name, tree) {
        Ok(info) => proto::ok()
            .set("doc", info.name)
            .set("nodes", info.nodes)
            .set("fingerprint", fingerprint_hex(info.fingerprint)),
        Err(code) => proto::error(code, format!("document {name:?} already exists")),
    }
}

fn verb_drop(shared: &Shared, req: &Json) -> Json {
    let name = match need_str(req, "name") {
        Ok(n) => n,
        Err(e) => return e,
    };
    if shared.catalog.drop_doc(name) {
        proto::ok().set("dropped", name)
    } else {
        proto::error(ErrorCode::NoSuchDocument, format!("no document {name:?}"))
    }
}

fn verb_list(shared: &Shared) -> Json {
    let docs: Vec<Json> = shared
        .catalog
        .list()
        .into_iter()
        .map(|d| {
            Json::obj()
                .set("name", d.name)
                .set("nodes", d.nodes)
                .set("fingerprint", fingerprint_hex(d.fingerprint))
                .set("edits", d.edits)
        })
        .collect();
    proto::ok().set("docs", docs)
}

/// Builds the [`Query`] a request describes: `lang` ∈
/// {`xpath`, `cq`, `datalog`} plus `text`.
fn parse_query(req: &Json) -> Result<Query, Json> {
    let lang = need_str(req, "lang")?;
    let text = need_str(req, "text")?;
    match lang {
        "xpath" => Ok(Query::xpath(text)),
        "cq" => Ok(Query::cq(text)),
        "datalog" => Ok(Query::datalog(text)),
        other => Err(proto::error(
            ErrorCode::BadField,
            format!("'lang' must be xpath|cq|datalog, got {other:?}"),
        )),
    }
}

/// Renders a query answer as pre-order ranks — positions in the current
/// tree's document order, the only node naming that is meaningful to a
/// client across the wire.
fn rows_json(tree: &Tree, out: &QueryOutput) -> Json {
    match out {
        QueryOutput::Nodes(nodes) => {
            let rows: Vec<Json> = nodes.iter().map(|&v| Json::from(tree.pre(v))).collect();
            Json::obj().set("kind", "nodes").set("rows", rows)
        }
        QueryOutput::Answer(a) => {
            let rows: Vec<Json> = a
                .tuples
                .iter()
                .map(|t| Json::Arr(t.iter().map(|&v| Json::from(tree.pre(v))).collect()))
                .collect();
            Json::obj()
                .set("kind", "tuples")
                .set("rows", rows)
                .set("satisfiable", !a.tuples.is_empty())
        }
    }
}

fn engine_error_json(err: &EngineError, id: u64) -> Json {
    let code = match err {
        EngineError::Cancelled(CancelReason::Cancelled) => ErrorCode::Cancelled,
        EngineError::Cancelled(CancelReason::DeadlineExceeded) => ErrorCode::DeadlineExceeded,
        _ => ErrorCode::QueryError,
    };
    proto::error(code, err.to_string()).set("id", id)
}

/// The SLO class key for a planner cost class — the same strings
/// [`crate::server::default_objectives`] registers.
fn cost_class_key(cost: CostClass) -> &'static str {
    match cost {
        CostClass::Linear => "linear",
        CostClass::OutputSensitive => "output_sensitive",
        CostClass::Polynomial => "polynomial",
        CostClass::Exponential => "exponential",
    }
}

fn verb_query(shared: &Shared, req: &Json, sess: &SessionState, trace_id: &str) -> Json {
    let doc_name = match need_str(req, "doc") {
        Ok(n) => n,
        Err(e) => return e,
    };
    let query = match parse_query(req) {
        Ok(q) => q,
        Err(e) => return e,
    };
    let deadline_ms = match opt_u64(req, "deadline_ms") {
        Ok(d) => d,
        Err(e) => return e,
    };
    let tag = req.get("tag").and_then(Json::as_str).map(str::to_owned);
    let Some(doc) = shared.catalog.get(doc_name) else {
        return proto::error(
            ErrorCode::NoSuchDocument,
            format!("no document {doc_name:?}"),
        );
    };

    // When the flight recorder is installed, open the query scope here —
    // before the document lock and admission — so the serve-side spans
    // land on the same record as the engine's evaluation spans, and the
    // record carries this request's tenant and trace id.
    let flight_id = if flight::enabled() {
        flight::begin_query()
    } else {
        0
    };
    let run = || {
        let doc = {
            let _lock = span("serve.lock");
            doc.read().expect("document poisoned")
        };
        let engine = doc.engine();
        // Lower + plan first: parse errors answer immediately, and the
        // plan's cost class is what admission keys on.
        let ir = match engine.lower(&query) {
            Ok(ir) => ir,
            Err(e) => return proto::error(ErrorCode::QueryError, e.to_string()),
        };
        let plan = match engine.explain(&query) {
            Ok(p) => p,
            Err(e) => return proto::error(ErrorCode::QueryError, e.to_string()),
        };

        let token = match deadline_ms {
            Some(ms) => CancelToken::with_deadline(Duration::from_millis(ms)),
            None => CancelToken::new(),
        };
        // Registered *before* evaluation starts so a racing `cancel` on
        // another connection can always find us by id or tag.
        let id = shared.register_query(token.clone(), tag);
        let _unregister = UnregisterOnDrop { shared, id };

        let admit_started = Instant::now();
        let admitted = {
            let _admission = span("serve.admission");
            shared.admission.admit(plan.cost, shared.admit_timeout)
        };
        let admission_wait_ns = admit_started.elapsed().as_nanos() as u64;
        let Ok((_permit, verdict)) = admitted else {
            return proto::error(
                ErrorCode::AdmissionRejected,
                format!(
                    "heavy lane full ({} slots) and no slot freed within {:?}",
                    shared.admission.cap(),
                    shared.admit_timeout
                ),
            )
            .set("id", id);
        };

        let ctx = flight::RequestCtx {
            tenant: sess.tenant.clone(),
            trace_id: trace_id.to_owned(),
            admission_wait_ns,
        };
        let started = Instant::now();
        let result = flight::with_request_ctx(ctx, || engine.eval_ir_with_cancel(&ir, &token));
        let wall_ns = started.elapsed().as_nanos() as u64;
        match result {
            Ok(out) => {
                let row_count = match &out {
                    QueryOutput::Nodes(v) => v.len() as u64,
                    QueryOutput::Answer(a) => a.tuples.len() as u64,
                };
                // The trace id is stamped here, before the body is
                // measured, so `resp_bytes` equals what actually goes on
                // the wire (the router's later re-stamp is idempotent).
                let serialize_started = Instant::now();
                let rows = rows_json(doc.tree(), &out);
                let mut body = proto::ok()
                    .set("id", id)
                    .set("doc", doc_name)
                    .set("strategy", format!("{:?}", plan.strategy))
                    .set("cost", plan.cost.to_string())
                    .set("admission", admission_str(verdict))
                    .set("wall_us", wall_ns / 1_000)
                    .set("trace_id", trace_id);
                if let Json::Obj(fields) = rows {
                    for (k, v) in fields {
                        body = body.set(k, v);
                    }
                }
                let resp_bytes = (body.render().len() + 1) as u64; // + '\n'
                let serialize_ns = serialize_started.elapsed().as_nanos() as u64;
                if flight_id != 0 {
                    flight::annotate_response(flight_id, resp_bytes, serialize_ns);
                }
                shared.usage.record_query(
                    &sess.tenant,
                    wall_ns,
                    row_count,
                    resp_bytes,
                    matches!(verdict, AdmissionVerdict::Queued),
                );
                shared.slo.observe(cost_class_key(plan.cost), wall_ns);
                body
            }
            Err(e) => engine_error_json(&e, id),
        }
    };
    if flight_id != 0 {
        let body = flight::with_current_query(flight_id, run);
        // Pre-evaluation exits (parse error, admission rejection) never
        // reach the engine's span collection; drop anything pending so
        // the capped span map can't fill with orphans.
        let _ = flight::take_spans(flight_id);
        body
    } else {
        run()
    }
}

fn admission_str(v: AdmissionVerdict) -> &'static str {
    match v {
        AdmissionVerdict::FastLane => "fast_lane",
        AdmissionVerdict::Immediate => "immediate",
        AdmissionVerdict::Queued => "queued",
    }
}

struct UnregisterOnDrop<'a> {
    shared: &'a Shared,
    id: u64,
}
impl Drop for UnregisterOnDrop<'_> {
    fn drop(&mut self) {
        self.shared.unregister_query(self.id);
    }
}

fn verb_edit(shared: &Shared, req: &Json) -> Json {
    let doc_name = match need_str(req, "doc") {
        Ok(n) => n,
        Err(e) => return e,
    };
    let script = match need_str(req, "script") {
        Ok(s) => s,
        Err(e) => return e,
    };
    let ops = match parse_script(script) {
        Ok(ops) => ops,
        Err(e) => return proto::error(ErrorCode::EditRejected, e.to_string()),
    };
    let Some(doc) = shared.catalog.get(doc_name) else {
        return proto::error(
            ErrorCode::NoSuchDocument,
            format!("no document {doc_name:?}"),
        );
    };
    let mut doc = doc.write().expect("document poisoned");
    let applied = doc.apply_script(&ops);
    proto::ok()
        .set("doc", doc_name)
        .set("applied", applied)
        .set("skipped", ops.len() - applied)
        .set("nodes", doc.tree().len())
        .set("fingerprint", fingerprint_hex(doc.fingerprint()))
        .set("edits", doc.edit_count())
}

fn verb_explain(shared: &Shared, req: &Json) -> Json {
    let doc_name = match need_str(req, "doc") {
        Ok(n) => n,
        Err(e) => return e,
    };
    let query = match parse_query(req) {
        Ok(q) => q,
        Err(e) => return e,
    };
    let Some(doc) = shared.catalog.get(doc_name) else {
        return proto::error(
            ErrorCode::NoSuchDocument,
            format!("no document {doc_name:?}"),
        );
    };
    let doc = doc.read().expect("document poisoned");
    match doc.engine().explain(&query) {
        Ok(plan) => proto::ok()
            .set("doc", doc_name)
            .set("source", plan.source.to_string())
            .set("strategy", format!("{:?}", plan.strategy))
            .set("cost", plan.cost.to_string())
            .set("estimated_work", plan.estimated_work)
            .set("workers", plan.workers)
            .set("rationale", plan.rationale)
            .set("parallel_rationale", plan.parallel_rationale),
        Err(e) => proto::error(ErrorCode::QueryError, e.to_string()),
    }
}

fn verb_stats(shared: &Shared, req: &Json) -> Json {
    let snap = shared.catalog.metrics().snapshot();
    let mut body = proto::ok()
        .set("docs", shared.catalog.len())
        .set("cached_plans", shared.catalog.plan_cache().len())
        .set("inflight", shared.inflight_count() as u64)
        .set("engine", snap.to_json());
    if let Some(name) = req.get("doc").and_then(Json::as_str) {
        let Some(doc) = shared.catalog.get(name) else {
            return proto::error(ErrorCode::NoSuchDocument, format!("no document {name:?}"));
        };
        let doc = doc.read().expect("document poisoned");
        body = body.set(
            "doc",
            Json::obj()
                .set("name", name)
                .set("nodes", doc.tree().len())
                .set("fingerprint", fingerprint_hex(doc.fingerprint()))
                .set("edits", doc.edit_count())
                .set("refreezes", doc.refreeze_count()),
        );
    }
    body
}

fn verb_cancel(shared: &Shared, req: &Json) -> Json {
    let by_id = match opt_u64(req, "id") {
        Ok(v) => v,
        Err(e) => return e,
    };
    let by_tag = req.get("tag").and_then(Json::as_str);
    let cancelled = match (by_id, by_tag) {
        (Some(id), None) => shared.cancel_by_id(id),
        (None, Some(tag)) => shared.cancel_by_tag(tag),
        (Some(id), Some(tag)) => shared.cancel_by_id(id) + shared.cancel_by_tag(tag),
        (None, None) => {
            return proto::error(ErrorCode::MissingField, "cancel needs an 'id' or a 'tag'")
        }
    };
    if cancelled == 0 {
        proto::error(ErrorCode::NoSuchQuery, "no running query matches")
    } else {
        proto::ok().set("cancelled", cancelled)
    }
}
