//! The document catalog: named mutable documents pooling one plan cache
//! and one metrics block.
//!
//! Sharing is deliberate: [`treequery_core::plan::PlanCache`] entries are
//! keyed by `(query fingerprint, tree fingerprint)`, so documents never
//! collide, and an edit rekeys only the edited document's entries
//! ([`Document::edit`] calls `rekey_tree`). One tenant's compiled plans
//! therefore survive another tenant's churn.
//!
//! Locking is two-level: the catalog map behind an `RwLock` (held only
//! for lookups — never across evaluation), and each document behind its
//! own `RwLock` (queries share a read lock, edits take the write lock).
//! That per-document lock is what makes query/edit interleavings
//! linearizable across connections, the same guarantee the borrow
//! checker gives single-threaded [`Document`] users.

use std::collections::BTreeMap;
use std::sync::{Arc, Mutex, RwLock};

use treequery_core::plan::{Metrics, PlanCache};
use treequery_core::{Document, EngineConfig};
use treequery_tree::Tree;

use crate::proto::ErrorCode;

/// One catalog entry's identity row (what `list` reports).
#[derive(Clone, Debug)]
pub struct DocInfo {
    /// The catalog name.
    pub name: String,
    /// Node count of the current tree.
    pub nodes: usize,
    /// The maintained tree fingerprint.
    pub fingerprint: u64,
    /// Edits applied so far.
    pub edits: u64,
}

/// A named collection of mutable documents sharing one engine runtime.
pub struct Catalog {
    docs: RwLock<BTreeMap<String, Arc<RwLock<Document>>>>,
    config: EngineConfig,
    cache: Arc<PlanCache>,
    metrics: Arc<Metrics>,
    /// Serializes load-check-insert so two concurrent `load`s of one
    /// name cannot both succeed.
    load_lock: Mutex<()>,
}

impl Default for Catalog {
    fn default() -> Self {
        Catalog::new(EngineConfig::default())
    }
}

impl Catalog {
    /// An empty catalog with a fresh shared cache and metrics block.
    pub fn new(config: EngineConfig) -> Catalog {
        Catalog {
            docs: RwLock::new(BTreeMap::new()),
            config,
            cache: Arc::new(PlanCache::default()),
            metrics: Arc::new(Metrics::default()),
            load_lock: Mutex::new(()),
        }
    }

    /// The metrics block every document (and ephemeral engine) feeds.
    pub fn metrics(&self) -> &Arc<Metrics> {
        &self.metrics
    }

    /// The pooled plan cache.
    pub fn plan_cache(&self) -> &Arc<PlanCache> {
        &self.cache
    }

    /// Inserts a new document under `name`. Fails with
    /// [`ErrorCode::DuplicateDocument`] if the name is taken — dropping
    /// first is explicit, never implicit.
    pub fn load(&self, name: &str, tree: Tree) -> Result<DocInfo, ErrorCode> {
        let _serial = self.load_lock.lock().expect("catalog load lock poisoned");
        if self
            .docs
            .read()
            .expect("catalog poisoned")
            .contains_key(name)
        {
            return Err(ErrorCode::DuplicateDocument);
        }
        let doc = Document::with_runtime(
            tree,
            self.config.clone(),
            Arc::clone(&self.cache),
            Arc::clone(&self.metrics),
        );
        let info = DocInfo {
            name: name.to_owned(),
            nodes: doc.tree().len(),
            fingerprint: doc.fingerprint(),
            edits: doc.edit_count(),
        };
        self.docs
            .write()
            .expect("catalog poisoned")
            .insert(name.to_owned(), Arc::new(RwLock::new(doc)));
        Ok(info)
    }

    /// Removes a document. Running queries holding the document's read
    /// lock finish normally — the `Arc` keeps the document alive until
    /// the last session lets go.
    pub fn drop_doc(&self, name: &str) -> bool {
        self.docs
            .write()
            .expect("catalog poisoned")
            .remove(name)
            .is_some()
    }

    /// Looks a document up by name.
    pub fn get(&self, name: &str) -> Option<Arc<RwLock<Document>>> {
        self.docs
            .read()
            .expect("catalog poisoned")
            .get(name)
            .cloned()
    }

    /// All documents, name-sorted (the map is a BTree).
    pub fn list(&self) -> Vec<DocInfo> {
        let docs = self.docs.read().expect("catalog poisoned");
        docs.iter()
            .map(|(name, doc)| {
                let d = doc.read().expect("document poisoned");
                DocInfo {
                    name: name.clone(),
                    nodes: d.tree().len(),
                    fingerprint: d.fingerprint(),
                    edits: d.edit_count(),
                }
            })
            .collect()
    }

    /// Number of documents.
    pub fn len(&self) -> usize {
        self.docs.read().expect("catalog poisoned").len()
    }

    /// Whether the catalog is empty.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use treequery_tree::{parse_term, EditOp};

    #[test]
    fn load_query_drop_roundtrip() {
        let cat = Catalog::default();
        let info = cat.load("t", parse_term("r(a(b) c)").unwrap()).unwrap();
        assert_eq!(info.nodes, 4);
        assert_eq!(
            cat.load("t", parse_term("x").unwrap()).unwrap_err(),
            ErrorCode::DuplicateDocument
        );
        let doc = cat.get("t").unwrap();
        let hits = doc.read().unwrap().engine().xpath("//a[b]").unwrap();
        assert_eq!(hits.len(), 1);
        assert!(cat.drop_doc("t"));
        assert!(!cat.drop_doc("t"));
        assert!(cat.get("t").is_none());
    }

    #[test]
    fn documents_pool_one_cache_and_edits_rekey_only_their_own() {
        let cat = Catalog::default();
        cat.load("a", parse_term("r(a(b) c)").unwrap()).unwrap();
        cat.load("b", parse_term("x(y z)").unwrap()).unwrap();
        cat.get("a")
            .unwrap()
            .read()
            .unwrap()
            .engine()
            .xpath("//a")
            .unwrap();
        cat.get("b")
            .unwrap()
            .read()
            .unwrap()
            .engine()
            .xpath("//y")
            .unwrap();
        assert_eq!(cat.plan_cache().len(), 2);
        cat.get("a")
            .unwrap()
            .write()
            .unwrap()
            .edit(&EditOp::Relabel {
                pre: 2,
                label: "q".to_owned(),
            })
            .unwrap();
        let misses = cat.metrics().snapshot().plan_cache_misses;
        // Both entries survive the edit: a's was rekeyed, b's untouched.
        cat.get("a")
            .unwrap()
            .read()
            .unwrap()
            .engine()
            .xpath("//a")
            .unwrap();
        cat.get("b")
            .unwrap()
            .read()
            .unwrap()
            .engine()
            .xpath("//y")
            .unwrap();
        assert_eq!(cat.metrics().snapshot().plan_cache_misses, misses);
    }
}
