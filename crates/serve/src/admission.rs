//! Admission control: a bounded heavy lane with a fast lane for provably
//! linear plans.
//!
//! The planner already classifies every plan into a
//! [`CostClass`] band. Admission exploits that: plans in
//! [`CostClass::Linear`] — `O(|D|·|Q|)`, the paper's headline bound —
//! are admitted unconditionally (they cannot monopolize the service),
//! while everything superlinear (output-sensitive enumeration, AC
//! fixpoints, rewrite unions, backtracking) competes for a fixed number
//! of heavy slots. A queued heavy query waits on a condvar up to a
//! timeout, then is rejected with a structured error rather than held
//! forever.
//!
//! Two counters publish the policy's behavior:
//! `treequery_admission_queued` (heavy queries that had to wait) and
//! `treequery_admission_rejected` (waits that timed out).

use std::sync::{Condvar, Mutex};
use std::time::Duration;

use treequery_core::CostClass;
use treequery_obs::metrics::{Counter, Registry};

/// The admission wait timed out: every heavy slot stayed occupied for
/// the full timeout. The caller maps this to an `admission_rejected`
/// wire error.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct AdmissionTimeout;

impl std::fmt::Display for AdmissionTimeout {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str("admission wait timed out: heavy lane saturated")
    }
}

impl std::error::Error for AdmissionTimeout {}

/// What [`Admission::admit`] decided.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum AdmissionVerdict {
    /// Admitted straight through the fast lane (linear plan).
    FastLane,
    /// Admitted into a free heavy slot without waiting.
    Immediate,
    /// Admitted after waiting for a slot.
    Queued,
}

/// Admission state: heavy slots in use, guarded by a condvar.
pub struct Admission {
    cap: usize,
    in_flight: Mutex<usize>,
    freed: Condvar,
    queued: Counter,
    rejected: Counter,
}

impl Admission {
    /// A controller with `cap` heavy slots, publishing its counters into
    /// `registry`.
    pub fn new(cap: usize, registry: &Registry) -> Admission {
        Admission {
            cap: cap.max(1),
            in_flight: Mutex::new(0),
            freed: Condvar::new(),
            queued: registry.counter_or_existing(
                "treequery_admission_queued",
                "Heavy-lane queries that waited for an admission slot.",
            ),
            rejected: registry.counter_or_existing(
                "treequery_admission_rejected",
                "Heavy-lane queries rejected after the admission wait timed out.",
            ),
        }
    }

    /// The heavy-lane capacity.
    pub fn cap(&self) -> usize {
        self.cap
    }

    /// Admits one query of the given cost class, waiting up to `timeout`
    /// for a heavy slot. The returned [`Permit`] frees the slot on drop
    /// — including on panic and on the cancellation early-return path.
    pub fn admit(
        &self,
        cost: CostClass,
        timeout: Duration,
    ) -> Result<(Permit<'_>, AdmissionVerdict), AdmissionTimeout> {
        if matches!(cost, CostClass::Linear) {
            return Ok((Permit { lane: None }, AdmissionVerdict::FastLane));
        }
        let mut in_flight = self.in_flight.lock().expect("admission poisoned");
        if *in_flight < self.cap {
            *in_flight += 1;
            return Ok((Permit { lane: Some(self) }, AdmissionVerdict::Immediate));
        }
        self.queued.inc();
        let deadline = std::time::Instant::now() + timeout;
        while *in_flight >= self.cap {
            let now = std::time::Instant::now();
            let Some(left) = deadline
                .checked_duration_since(now)
                .filter(|d| !d.is_zero())
            else {
                self.rejected.inc();
                return Err(AdmissionTimeout);
            };
            let (guard, res) = self
                .freed
                .wait_timeout(in_flight, left)
                .expect("admission poisoned");
            in_flight = guard;
            if res.timed_out() && *in_flight >= self.cap {
                self.rejected.inc();
                return Err(AdmissionTimeout);
            }
        }
        *in_flight += 1;
        Ok((Permit { lane: Some(self) }, AdmissionVerdict::Queued))
    }
}

/// RAII admission slot: dropping it frees the heavy slot (fast-lane
/// permits hold nothing).
pub struct Permit<'a> {
    lane: Option<&'a Admission>,
}

impl Drop for Permit<'_> {
    fn drop(&mut self) {
        if let Some(adm) = self.lane {
            let mut in_flight = adm.in_flight.lock().expect("admission poisoned");
            *in_flight = in_flight.saturating_sub(1);
            drop(in_flight);
            adm.freed.notify_one();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn linear_queries_bypass_a_full_heavy_lane() {
        let r = Registry::new();
        let adm = Admission::new(1, &r);
        let (_held, v) = adm
            .admit(CostClass::Exponential, Duration::from_millis(10))
            .unwrap();
        assert_eq!(v, AdmissionVerdict::Immediate);
        // Heavy lane is full; linear still sails through.
        let (_fast, v) = adm
            .admit(CostClass::Linear, Duration::from_millis(10))
            .unwrap();
        assert_eq!(v, AdmissionVerdict::FastLane);
        // Another heavy query times out and is counted.
        assert!(adm
            .admit(CostClass::Polynomial, Duration::from_millis(20))
            .is_err());
        assert_eq!(adm.queued.get(), 1);
        assert_eq!(adm.rejected.get(), 1);
    }

    #[test]
    fn dropping_a_permit_frees_the_slot() {
        let r = Registry::new();
        let adm = Admission::new(1, &r);
        let (held, _) = adm
            .admit(CostClass::OutputSensitive, Duration::from_millis(10))
            .unwrap();
        drop(held);
        let (_again, v) = adm
            .admit(CostClass::OutputSensitive, Duration::from_millis(10))
            .unwrap();
        assert_eq!(v, AdmissionVerdict::Immediate);
    }

    #[test]
    fn a_queued_query_proceeds_when_the_slot_frees() {
        let r = Registry::new();
        let adm = std::sync::Arc::new(Admission::new(1, &r));
        let (held, _) = adm
            .admit(CostClass::Polynomial, Duration::from_millis(10))
            .unwrap();
        let adm2 = std::sync::Arc::clone(&adm);
        let waiter = std::thread::spawn(move || {
            adm2.admit(CostClass::Polynomial, Duration::from_secs(10))
                .map(|(_, v)| v)
        });
        std::thread::sleep(Duration::from_millis(30));
        drop(held);
        assert_eq!(waiter.join().unwrap(), Ok(AdmissionVerdict::Queued));
        assert_eq!(adm.rejected.get(), 0);
    }
}
