//! The observatory: a minimal HTTP/1.1 listener exposing the server's
//! tenant and SLO state to scrapers, next to the line-JSON protocol
//! port.
//!
//! Five read-only endpoints: `/metrics` (the full per-server
//! exposition), `/tenants` (the `treequery_tenant_*` families only),
//! `/slo` (the `treequery_slo_*` gauges, published at scrape time),
//! and `/flight` + `/slow` (the process-global flight recorder, when
//! installed). One thread, one connection at a time — scrapers poll on
//! the order of seconds, and keeping it boring means the observatory
//! can never contend with the query path.
//!
//! Shutdown rides the same cooperative poke as the main accept loop:
//! [`crate::server::Shared::request_shutdown`] connects to this port
//! too, so the blocked `accept` wakes and observes the flag.

use std::io::{BufRead, BufReader, Write};
use std::net::{TcpListener, TcpStream};
use std::sync::Arc;

use treequery_obs::{flight, prom};

use crate::server::Shared;

/// Routes one request target to `(status, reason, content-type, body)`.
/// Pure — the unit tests drive it without sockets.
pub(crate) fn respond(shared: &Shared, method: &str, target: &str) -> (u16, &'static str, String) {
    if method != "GET" {
        return (
            405,
            "text/plain; charset=utf-8",
            "only GET is supported\n".to_owned(),
        );
    }
    match target {
        "/" => (
            200,
            "text/plain; charset=utf-8",
            "treequery observatory: /metrics /tenants /slo /flight /slow\n".to_owned(),
        ),
        "/metrics" => (200, prom::CONTENT_TYPE, shared.render_metrics()),
        "/tenants" => (200, prom::CONTENT_TYPE, shared.render_tenant_exposition()),
        "/slo" => (200, prom::CONTENT_TYPE, shared.render_slo_exposition()),
        "/flight" => (
            200,
            "application/json",
            flight::recent_json().render() + "\n",
        ),
        "/slow" => (200, "application/json", flight::slow_json().render() + "\n"),
        _ => (
            404,
            "text/plain; charset=utf-8",
            format!("no such endpoint {target}\n"),
        ),
    }
}

fn reason(status: u16) -> &'static str {
    match status {
        200 => "OK",
        400 => "Bad Request",
        404 => "Not Found",
        405 => "Method Not Allowed",
        _ => "Internal Server Error",
    }
}

fn answer(stream: TcpStream, shared: &Shared) {
    let Ok(peer) = stream.try_clone() else { return };
    let mut reader = BufReader::new(peer);
    let mut line = String::new();
    if reader.read_line(&mut line).is_err() {
        return;
    }
    let mut parts = line.split_whitespace();
    let (method, target) = match (parts.next(), parts.next()) {
        (Some(m), Some(t)) => (m.to_owned(), t.to_owned()),
        _ => ("".to_owned(), "/".to_owned()),
    };
    // Drain the headers; responses close the connection, so the body
    // (none is expected on GET) can be ignored.
    loop {
        let mut header = String::new();
        match reader.read_line(&mut header) {
            Ok(0) => break,
            Ok(_) if header == "\r\n" || header == "\n" => break,
            Ok(_) => {}
            Err(_) => return,
        }
    }
    let (status, content_type, body) = if method.is_empty() {
        (
            400,
            "text/plain; charset=utf-8",
            "malformed request line\n".to_owned(),
        )
    } else {
        respond(shared, &method, &target)
    };
    let mut out = stream;
    let _ = write!(
        out,
        "HTTP/1.1 {status} {}\r\nContent-Type: {content_type}\r\nContent-Length: {}\r\nConnection: close\r\n\r\n{body}",
        reason(status),
        body.len()
    );
    let _ = out.flush();
}

/// Binds the observatory on `addr` (port 0 for ephemeral) and serves it
/// on a background thread until the server shuts down. Returns the
/// bound port, which is also recorded on `shared` so the shutdown poke
/// reaches this listener.
pub fn spawn_observatory(shared: Arc<Shared>, addr: &str) -> std::io::Result<u16> {
    let listener = TcpListener::bind(addr)?;
    let port = listener.local_addr()?.port();
    shared.set_observatory_port(port);
    std::thread::spawn(move || {
        for stream in listener.incoming() {
            if shared.shutting_down() {
                break;
            }
            if let Ok(stream) = stream {
                answer(stream, &shared);
            }
        }
    });
    Ok(port)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::server::ServerConfig;

    fn shared() -> Arc<Shared> {
        crate::server::Server::bind("127.0.0.1:0", ServerConfig::default())
            .expect("bind")
            .shared()
    }

    #[test]
    fn routes_cover_the_observatory_surface() {
        let s = shared();
        let (status, ct, body) = respond(&s, "GET", "/metrics");
        assert_eq!(status, 200);
        assert_eq!(ct, prom::CONTENT_TYPE);
        treequery_obs::prom::validate_exposition(&body).expect("metrics validate");
        let (status, _, body) = respond(&s, "GET", "/tenants");
        assert_eq!(status, 200);
        treequery_obs::prom::validate_exposition(&body).expect("tenants validate");
        let (status, _, body) = respond(&s, "GET", "/slo");
        assert_eq!(status, 200);
        assert!(body.contains("treequery_slo_fast_burn_ppm"), "{body}");
        let (status, _, _) = respond(&s, "GET", "/flight");
        assert_eq!(status, 200);
        let (status, _, _) = respond(&s, "GET", "/nope");
        assert_eq!(status, 404);
        let (status, _, _) = respond(&s, "POST", "/metrics");
        assert_eq!(status, 405);
    }
}
