//! The wire protocol: line-delimited JSON frames, structured error
//! codes, and the bounded frame reader.
//!
//! Every frame is one JSON object on one `\n`-terminated line, at most
//! [`MAX_LINE_BYTES`] long. The reader never buffers an oversized line:
//! it drains it chunk by chunk through the `BufRead` internals and
//! reports [`Frame::Oversized`], so a misbehaving peer costs bounded
//! memory and still gets a structured error back instead of a dropped
//! connection.

use std::io::{self, BufRead};

use treequery_obs::{parse_json, Json};

/// The protocol version this build speaks. A hello carrying any other
/// version is answered with `version_mismatch` and the connection is
/// closed.
pub const PROTOCOL_VERSION: u64 = 1;

/// Hard cap on one frame line (newline included): 1 MiB.
pub const MAX_LINE_BYTES: usize = 1 << 20;

/// Structured error codes, the machine-readable half of every
/// `{"ok":false,...}` response.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum ErrorCode {
    /// The line was not a JSON object.
    MalformedFrame,
    /// The line exceeded [`MAX_LINE_BYTES`].
    OversizedFrame,
    /// The `verb` field names no known verb.
    UnknownVerb,
    /// A required field is absent.
    MissingField,
    /// A field is present but has the wrong type or an invalid value.
    BadField,
    /// The first frame on a connection must be a `hello`.
    ExpectedHello,
    /// The hello's `version` is not [`PROTOCOL_VERSION`].
    VersionMismatch,
    /// The named document is not in the catalog.
    NoSuchDocument,
    /// `load` would overwrite an existing document.
    DuplicateDocument,
    /// The query failed to parse or evaluate (parse errors, no query
    /// predicate, ...).
    QueryError,
    /// The query was cancelled by an explicit `cancel` request.
    Cancelled,
    /// The query's `deadline_ms` passed before it finished.
    DeadlineExceeded,
    /// Admission control timed out waiting for a heavy-lane slot.
    AdmissionRejected,
    /// `cancel` named an `id`/`tag` with no running query behind it.
    NoSuchQuery,
    /// The edit script failed to parse, or no op took effect.
    EditRejected,
    /// The server is shutting down.
    ShuttingDown,
}

impl ErrorCode {
    /// The wire form of the code.
    pub fn as_str(self) -> &'static str {
        match self {
            ErrorCode::MalformedFrame => "malformed_frame",
            ErrorCode::OversizedFrame => "oversized_frame",
            ErrorCode::UnknownVerb => "unknown_verb",
            ErrorCode::MissingField => "missing_field",
            ErrorCode::BadField => "bad_field",
            ErrorCode::ExpectedHello => "expected_hello",
            ErrorCode::VersionMismatch => "version_mismatch",
            ErrorCode::NoSuchDocument => "no_such_document",
            ErrorCode::DuplicateDocument => "duplicate_document",
            ErrorCode::QueryError => "query_error",
            ErrorCode::Cancelled => "cancelled",
            ErrorCode::DeadlineExceeded => "deadline_exceeded",
            ErrorCode::AdmissionRejected => "admission_rejected",
            ErrorCode::NoSuchQuery => "no_such_query",
            ErrorCode::EditRejected => "edit_rejected",
            ErrorCode::ShuttingDown => "shutting_down",
        }
    }
}

impl std::fmt::Display for ErrorCode {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.as_str())
    }
}

/// Builds the standard success envelope.
pub fn ok() -> Json {
    Json::obj().set("ok", true)
}

/// Builds the standard error envelope.
pub fn error(code: ErrorCode, message: impl Into<String>) -> Json {
    Json::obj()
        .set("ok", false)
        .set("code", code.as_str())
        .set("error", message.into())
}

/// One read attempt's outcome.
#[derive(Debug)]
pub enum Frame {
    /// A parsed JSON value (not yet checked to be an object).
    Value(Json),
    /// The peer closed the connection (EOF on a line boundary).
    Eof,
    /// The line was longer than [`MAX_LINE_BYTES`]; it has been drained.
    Oversized,
    /// The line was not valid JSON.
    Malformed(String),
}

/// Reads one frame. Empty lines are skipped (friendly to `nc` users
/// tapping return). An oversized line is consumed to its newline in
/// buffer-sized chunks — never materialized — before reporting.
pub fn read_frame(reader: &mut impl BufRead) -> io::Result<Frame> {
    loop {
        let mut line: Vec<u8> = Vec::new();
        let mut oversized = false;
        // Manual bounded read_until: pull from fill_buf so an attacker's
        // 100 MiB line occupies only the BufReader's fixed buffer.
        let complete = loop {
            let buf = reader.fill_buf()?;
            if buf.is_empty() {
                break false; // EOF
            }
            let (chunk, found_newline) = match buf.iter().position(|&b| b == b'\n') {
                Some(i) => (&buf[..i], true),
                None => (buf, false),
            };
            if !oversized {
                if line.len() + chunk.len() + 1 > MAX_LINE_BYTES {
                    oversized = true;
                    line.clear();
                } else {
                    line.extend_from_slice(chunk);
                }
            }
            let consumed = chunk.len() + usize::from(found_newline);
            reader.consume(consumed);
            if found_newline {
                break true;
            }
        };
        if oversized {
            return Ok(Frame::Oversized);
        }
        if line.is_empty() {
            if complete {
                continue; // blank line
            }
            return Ok(Frame::Eof);
        }
        let text = match std::str::from_utf8(&line) {
            Ok(t) => t.trim(),
            Err(_) => return Ok(Frame::Malformed("frame is not UTF-8".to_owned())),
        };
        if text.is_empty() {
            if complete {
                continue;
            }
            return Ok(Frame::Eof);
        }
        return Ok(match parse_json(text) {
            Ok(v) => Frame::Value(v),
            Err(e) => Frame::Malformed(e.to_string()),
        });
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::io::BufReader;

    fn frames(input: &[u8]) -> Vec<String> {
        let mut r = BufReader::with_capacity(64, input);
        let mut out = Vec::new();
        loop {
            match read_frame(&mut r).unwrap() {
                Frame::Eof => break,
                Frame::Value(v) => out.push(format!("value:{}", v.render())),
                Frame::Oversized => out.push("oversized".to_owned()),
                Frame::Malformed(_) => out.push("malformed".to_owned()),
            }
        }
        out
    }

    #[test]
    fn frames_split_on_newlines_and_skip_blanks() {
        let got = frames(b"{\"a\":1}\n\n  \n{\"b\":2}\n");
        assert_eq!(got, vec!["value:{\"a\":1}", "value:{\"b\":2}"]);
    }

    #[test]
    fn a_final_unterminated_line_still_parses() {
        let got = frames(b"{\"a\":1}");
        assert_eq!(got, vec!["value:{\"a\":1}"]);
    }

    #[test]
    fn oversized_lines_are_drained_not_buffered() {
        // 2 MiB of junk, then a healthy frame: the reader must survive
        // with its 64-byte buffer and resynchronize on the newline.
        let mut input = vec![b'x'; 2 << 20];
        input.push(b'\n');
        input.extend_from_slice(b"{\"ok\":1}\n");
        let got = frames(&input);
        assert_eq!(got, vec!["oversized", "value:{\"ok\":1}"]);
    }

    #[test]
    fn junk_is_malformed_not_fatal() {
        let got = frames(b"not json\n{\"a\":1}\n");
        assert_eq!(got, vec!["malformed", "value:{\"a\":1}"]);
    }
}
