//! Property tests: Minoux's algorithm computes exactly the naive fixpoint.

use proptest::prelude::*;
use treequery_hornsat::{HornFormula, Var};

/// Strategy: a random definite Horn formula over `n` variables.
fn formula() -> impl Strategy<Value = HornFormula> {
    (
        2u32..20,
        proptest::collection::vec(
            (any::<u32>(), proptest::collection::vec(any::<u32>(), 0..4)),
            0..40,
        ),
    )
        .prop_map(|(n, raw_rules)| {
            let mut f = HornFormula::new();
            let vars: Vec<Var> = (0..n).map(|_| f.fresh_var()).collect();
            for (head, body) in raw_rules {
                let head = vars[(head % n) as usize];
                let body: Vec<Var> = body.iter().map(|&b| vars[(b % n) as usize]).collect();
                f.add_rule(head, &body);
            }
            f
        })
}

proptest! {
    #[test]
    fn minoux_equals_naive_fixpoint(f in formula()) {
        let fast = f.solve();
        let naive = f.solve_naive();
        prop_assert_eq!(fast.truth(), naive.as_slice());
    }

    #[test]
    fn derivation_order_is_causally_sound(f in formula()) {
        // Every derived variable must be the head of a rule whose body
        // consists only of variables derived strictly earlier (facts have
        // empty bodies and are trivially supported).
        let sol = f.solve();
        let order = sol.derivation_order();
        let mut position = vec![usize::MAX; f.num_vars() as usize];
        for (i, v) in order.iter().enumerate() {
            position[v.index()] = i;
        }
        for (i, &v) in order.iter().enumerate() {
            let supported = (0..f.num_rules()).any(|r| {
                let r = treequery_hornsat::RuleId(r as u32);
                f.head(r) == v
                    && f.body(r).iter().all(|b| position[b.index()] < i)
            });
            prop_assert!(supported, "{v:?} at position {i} has no support");
        }
    }

    #[test]
    fn solution_is_a_model(f in formula()) {
        // Every rule with a true body has a true head.
        let sol = f.solve();
        for r in 0..f.num_rules() {
            let r = treequery_hornsat::RuleId(r as u32);
            if f.body(r).iter().all(|&b| sol.is_true(b)) {
                prop_assert!(sol.is_true(f.head(r)));
            }
        }
    }
}
