//! Minoux's algorithm (Figure 3): linear-time unit resolution for
//! definite propositional Horn formulas.

/// A propositional variable (the paper's "predicate" `p` in Figure 3).
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Debug)]
pub struct Var(pub u32);

impl Var {
    /// Dense index of the variable.
    #[inline]
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

/// Identifier of a rule within a [`HornFormula`].
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
pub struct RuleId(pub u32);

impl RuleId {
    /// Dense index of the rule.
    #[inline]
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

/// A definite propositional Horn formula: a conjunction of rules
/// `head ← b₁ ∧ … ∧ b_k` (k = 0 gives a fact).
///
/// This is the input format of Figure 3, where clause `i` is
/// `p_{i,1} ∨ ¬p_{i,2} ∨ … ∨ ¬p_{i,k_i}` with head `p_{i,1}`.
#[derive(Clone, Debug, Default)]
pub struct HornFormula {
    num_vars: u32,
    heads: Vec<Var>,
    /// Bodies, concatenated; `body_of[i]` is `body_pool[starts[i]..starts[i+1]]`.
    body_pool: Vec<Var>,
    body_starts: Vec<u32>,
}

impl HornFormula {
    /// Creates an empty formula.
    pub fn new() -> Self {
        Self {
            num_vars: 0,
            heads: Vec::new(),
            body_pool: Vec::new(),
            body_starts: vec![0],
        }
    }

    /// Creates an empty formula pre-sized for `vars` variables and `rules`
    /// rules with a total body size of `body`.
    pub fn with_capacity(vars: u32, rules: usize, body: usize) -> Self {
        let mut f = Self::new();
        f.num_vars = vars;
        f.heads.reserve(rules);
        f.body_starts.reserve(rules + 1);
        f.body_pool.reserve(body);
        f
    }

    /// Allocates a fresh variable.
    pub fn fresh_var(&mut self) -> Var {
        let v = Var(self.num_vars);
        self.num_vars += 1;
        v
    }

    /// Ensures variables `0..n` exist (useful when variables are external
    /// dense ids, e.g. produced by an [`crate::AtomTable`]).
    pub fn ensure_vars(&mut self, n: u32) {
        self.num_vars = self.num_vars.max(n);
    }

    /// Number of variables.
    pub fn num_vars(&self) -> u32 {
        self.num_vars
    }

    /// Number of rules.
    pub fn num_rules(&self) -> usize {
        self.heads.len()
    }

    /// Total size of the formula (head + body literals), the `l + Σ kᵢ`
    /// quantity the linear-time bound is measured in.
    pub fn size(&self) -> usize {
        self.heads.len() + self.body_pool.len()
    }

    /// Adds the rule `head ← body`. An empty body makes `head` a fact.
    pub fn add_rule(&mut self, head: Var, body: &[Var]) -> RuleId {
        debug_assert!(head.0 < self.num_vars, "head variable not allocated");
        debug_assert!(body.iter().all(|v| v.0 < self.num_vars));
        let id = RuleId(u32::try_from(self.heads.len()).expect("too many rules"));
        self.heads.push(head);
        self.body_pool.extend_from_slice(body);
        self.body_starts
            .push(u32::try_from(self.body_pool.len()).expect("body pool overflow"));
        id
    }

    /// Adds the fact `head ←`.
    pub fn add_fact(&mut self, head: Var) -> RuleId {
        self.add_rule(head, &[])
    }

    /// The head of a rule.
    pub fn head(&self, r: RuleId) -> Var {
        self.heads[r.index()]
    }

    /// The body of a rule.
    pub fn body(&self, r: RuleId) -> &[Var] {
        let s = self.body_starts[r.index()] as usize;
        let e = self.body_starts[r.index() + 1] as usize;
        &self.body_pool[s..e]
    }

    /// The initialization phase of Figure 3: builds the `size`, `head` and
    /// `rules` data structures and the initial queue. Exposed separately so
    /// that the worked Example 3.3 can be reproduced verbatim (experiment
    /// E3).
    pub fn initial_state(&self) -> InitialState {
        let l = self.heads.len();
        let mut size = vec![0u32; l];
        let mut rules = vec![Vec::new(); self.num_vars as usize];
        let mut queue = Vec::new();
        for (i, slot) in size.iter_mut().enumerate() {
            let r = RuleId(i as u32);
            let body = self.body(r);
            *slot = body.len() as u32;
            for &b in body {
                rules[b.index()].push(r);
            }
            if body.is_empty() {
                queue.push(self.heads[i]);
            }
        }
        InitialState {
            size,
            heads: self.heads.clone(),
            rules,
            queue,
        }
    }

    /// Minoux's algorithm (the main loop of Figure 3): computes the minimal
    /// model in time linear in [`HornFormula::size`].
    ///
    /// Emits a `hornsat.solve` span carrying the formula size (the
    /// quantity the Theorem 3.2 linear bound charges) and the number of
    /// variables derived true, when a `treequery_obs` recorder is
    /// installed.
    pub fn solve(&self) -> Solution {
        let mut span = treequery_obs::span("hornsat.solve");
        let _mem = treequery_obs::alloc::AllocScope::enter("hornsat.solve");
        span.record_u64("vars", self.num_vars as u64);
        span.record_u64("rules", self.num_rules() as u64);
        span.record_u64("formula_size", self.size() as u64);
        let InitialState {
            mut size,
            heads,
            rules,
            queue: initial,
        } = self.initial_state();

        let mut truth = vec![false; self.num_vars as usize];
        let mut order = Vec::new();
        let mut queue = std::collections::VecDeque::with_capacity(initial.len());
        for p in initial {
            // The figure appends every fact head; we deduplicate so each
            // variable is output (and its rule list scanned) exactly once.
            if !truth[p.index()] {
                truth[p.index()] = true;
                queue.push_back(p);
            }
        }
        while let Some(p) = queue.pop_front() {
            order.push(p);
            for &r in &rules[p.index()] {
                size[r.index()] -= 1;
                if size[r.index()] == 0 {
                    let h = heads[r.index()];
                    if !truth[h.index()] {
                        truth[h.index()] = true;
                        queue.push_back(h);
                    }
                }
            }
        }
        span.record_u64("derived", order.len() as u64);
        Solution { truth, order }
    }

    /// Naive fixpoint evaluation (repeated passes until stable); quadratic,
    /// used as a differential-testing oracle for [`HornFormula::solve`].
    pub fn solve_naive(&self) -> Vec<bool> {
        let mut truth = vec![false; self.num_vars as usize];
        loop {
            let mut changed = false;
            for i in 0..self.num_rules() {
                let r = RuleId(i as u32);
                let h = self.head(r);
                if !truth[h.index()] && self.body(r).iter().all(|b| truth[b.index()]) {
                    truth[h.index()] = true;
                    changed = true;
                }
            }
            if !changed {
                return truth;
            }
        }
    }
}

/// The data structures after the initialization phase of Figure 3.
#[derive(Clone, Debug)]
pub struct InitialState {
    /// `size[i]`: number of body literals of rule `i` not yet resolved.
    pub size: Vec<u32>,
    /// `head[i]`: head variable of rule `i`.
    pub heads: Vec<Var>,
    /// `rules[p]`: rules in whose body `p` occurs (with multiplicity).
    pub rules: Vec<Vec<RuleId>>,
    /// Initial queue: heads of facts, in rule order.
    pub queue: Vec<Var>,
}

/// The minimal model of a definite Horn formula.
#[derive(Clone, Debug)]
pub struct Solution {
    truth: Vec<bool>,
    order: Vec<Var>,
}

impl Solution {
    /// Whether `v` is true in the minimal model.
    #[inline]
    pub fn is_true(&self, v: Var) -> bool {
        self.truth[v.index()]
    }

    /// The variables derived true, in derivation order (the order in which
    /// Figure 3 outputs "`p` is true").
    pub fn derivation_order(&self) -> &[Var] {
        &self.order
    }

    /// Number of true variables.
    pub fn num_true(&self) -> usize {
        self.order.len()
    }

    /// The truth vector, indexed by variable.
    pub fn truth(&self) -> &[bool] {
        &self.truth
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// The relabeled ground program of Example 3.3:
    /// r1: 1←  r2: 2←  r3: 3←  r4: 4←1  r5: 5←3,4  r6: 6←2,5.
    fn example_3_3() -> (HornFormula, Vec<Var>) {
        let mut f = HornFormula::new();
        // Variable 0 is unused so that variables 1..=6 match the example.
        let vars: Vec<Var> = (0..7).map(|_| f.fresh_var()).collect();
        f.add_fact(vars[1]);
        f.add_fact(vars[2]);
        f.add_fact(vars[3]);
        f.add_rule(vars[4], &[vars[1]]);
        f.add_rule(vars[5], &[vars[3], vars[4]]);
        f.add_rule(vars[6], &[vars[2], vars[5]]);
        (f, vars)
    }

    #[test]
    fn example_3_3_initial_state_matches_paper() {
        let (f, vars) = example_3_3();
        let st = f.initial_state();
        assert_eq!(st.size, vec![0, 0, 0, 1, 2, 2]);
        assert_eq!(
            st.heads,
            vec![vars[1], vars[2], vars[3], vars[4], vars[5], vars[6]]
        );
        // rules: 1 ↦ [r4], 2 ↦ [r6], 3 ↦ [r5], 4 ↦ [r5], 5 ↦ [r6], 6 ↦ [].
        assert_eq!(st.rules[vars[1].index()], vec![RuleId(3)]);
        assert_eq!(st.rules[vars[2].index()], vec![RuleId(5)]);
        assert_eq!(st.rules[vars[3].index()], vec![RuleId(4)]);
        assert_eq!(st.rules[vars[4].index()], vec![RuleId(4)]);
        assert_eq!(st.rules[vars[5].index()], vec![RuleId(5)]);
        assert!(st.rules[vars[6].index()].is_empty());
        assert_eq!(st.queue, vec![vars[1], vars[2], vars[3]]);
    }

    #[test]
    fn example_3_3_derivation() {
        let (f, vars) = example_3_3();
        let sol = f.solve();
        for (i, &var) in vars.iter().enumerate().skip(1) {
            assert!(sol.is_true(var), "var {i}");
        }
        assert!(!sol.is_true(vars[0]));
        // The first iteration pops 1, derives 4; the queue discipline gives
        // the order 1, 2, 3, 4, 5, 6.
        assert_eq!(
            sol.derivation_order(),
            &[vars[1], vars[2], vars[3], vars[4], vars[5], vars[6]]
        );
    }

    #[test]
    fn unsupported_heads_stay_false() {
        let mut f = HornFormula::new();
        let a = f.fresh_var();
        let b = f.fresh_var();
        let c = f.fresh_var();
        f.add_rule(a, &[b]);
        f.add_rule(b, &[a]);
        f.add_fact(c);
        let sol = f.solve();
        assert!(!sol.is_true(a));
        assert!(!sol.is_true(b));
        assert!(sol.is_true(c));
        assert_eq!(sol.num_true(), 1);
    }

    #[test]
    fn duplicate_body_literals() {
        let mut f = HornFormula::new();
        let a = f.fresh_var();
        let b = f.fresh_var();
        // b ← a ∧ a: both occurrences must be resolved; since `a` is popped
        // once and `rules[a]` lists the rule twice, size reaches 0 exactly
        // when a is true.
        f.add_rule(b, &[a, a]);
        f.add_fact(a);
        let sol = f.solve();
        assert!(sol.is_true(b));
    }

    #[test]
    fn repeated_facts_do_not_double_count() {
        let mut f = HornFormula::new();
        let a = f.fresh_var();
        let b = f.fresh_var();
        f.add_fact(a);
        f.add_fact(a);
        f.add_rule(b, &[a]);
        let sol = f.solve();
        assert!(sol.is_true(b));
        assert_eq!(sol.derivation_order(), &[a, b]);
    }

    #[test]
    fn empty_formula() {
        let f = HornFormula::new();
        let sol = f.solve();
        assert_eq!(sol.num_true(), 0);
    }

    #[test]
    fn chain_is_linear_in_practice() {
        // A long implication chain exercises the queue discipline.
        let mut f = HornFormula::new();
        let vars: Vec<Var> = (0..10_000).map(|_| f.fresh_var()).collect();
        for w in vars.windows(2) {
            f.add_rule(w[1], &[w[0]]);
        }
        f.add_fact(vars[0]);
        let sol = f.solve();
        assert_eq!(sol.num_true(), vars.len());
        assert_eq!(sol.derivation_order().first(), Some(&vars[0]));
        assert_eq!(sol.derivation_order().last(), Some(vars.last().unwrap()));
    }

    #[test]
    fn agrees_with_naive_on_small_cases() {
        let (f, _) = example_3_3();
        assert_eq!(f.solve().truth(), f.solve_naive().as_slice());
    }
}
