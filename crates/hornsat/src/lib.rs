#![warn(missing_docs)]

//! Propositional Horn-SAT and Minoux's linear-time algorithm (Figure 3 of
//! the paper; Minoux's LTUR, *Information Processing Letters* 29(1), 1988).
//!
//! The paper uses linear-time Horn-SAT as the engine behind two central
//! results: Theorem 3.2 (monadic datalog over τ⁺ in `O(|P|·|Dom|)`) and
//! Proposition 6.2 (the maximal arc-consistent pre-valuation in
//! `O(||A||·|Q|)`). Both reduce to computing the minimal model of a
//! propositional Horn formula, which this crate does in time linear in the
//! formula size.

mod atoms;
mod minoux;

pub use atoms::{assemble_ground_chunks, AtomTable};
pub use minoux::{HornFormula, InitialState, RuleId, Solution, Var};
