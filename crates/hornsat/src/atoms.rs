//! Dense interning of ground atoms into propositional variables.
//!
//! The reductions in the paper (grounding monadic datalog, the Horn-SAT
//! encoding of arc-consistency in Proposition 6.2) all map structured
//! ground atoms like `P₀(3)` or `Θ(x, v)` to propositional variables. An
//! [`AtomTable`] provides this mapping with O(1) amortized interning.

use std::collections::HashMap;
use std::hash::Hash;

use crate::minoux::Var;

/// Bijection between ground atoms of type `A` and dense propositional
/// variables.
#[derive(Clone, Debug)]
pub struct AtomTable<A> {
    by_atom: HashMap<A, Var>,
    atoms: Vec<A>,
}

impl<A: Clone + Eq + Hash> Default for AtomTable<A> {
    fn default() -> Self {
        Self::new()
    }
}

impl<A: Clone + Eq + Hash> AtomTable<A> {
    /// Creates an empty table.
    pub fn new() -> Self {
        Self {
            by_atom: HashMap::new(),
            atoms: Vec::new(),
        }
    }

    /// Interns `atom`, returning its variable (allocating one if new).
    pub fn var(&mut self, atom: A) -> Var {
        if let Some(&v) = self.by_atom.get(&atom) {
            return v;
        }
        let v = Var(u32::try_from(self.atoms.len()).expect("too many atoms"));
        self.atoms.push(atom.clone());
        self.by_atom.insert(atom, v);
        v
    }

    /// Looks up an atom without interning it.
    pub fn lookup(&self, atom: &A) -> Option<Var> {
        self.by_atom.get(atom).copied()
    }

    /// The atom of a variable.
    pub fn atom(&self, v: Var) -> &A {
        &self.atoms[v.index()]
    }

    /// Number of interned atoms.
    pub fn len(&self) -> usize {
        self.atoms.len()
    }

    /// Whether the table is empty.
    pub fn is_empty(&self) -> bool {
        self.atoms.is_empty()
    }

    /// Iterates over all `(Var, atom)` pairs in interning order.
    pub fn iter(&self) -> impl Iterator<Item = (Var, &A)> {
        self.atoms
            .iter()
            .enumerate()
            .map(|(i, a)| (Var(i as u32), a))
    }
}

/// Assembles ground-rule chunks — each a list of `(head, body)` atom
/// pairs — into a Horn formula plus the interning [`AtomTable`],
/// consuming chunks (and rules within a chunk) in iteration order.
///
/// Interning order is body atoms before the head within each rule,
/// which is exactly the order `treequery-datalog`'s sequential
/// grounding interns in — so feeding this the per-(rule, node-range)
/// chunks of a partitioned grounding, in rule-major / range-ascending
/// order, produces a formula and table **byte-identical** to the
/// sequential ones, no matter which worker produced which chunk.
pub fn assemble_ground_chunks<A: Clone + Eq + Hash>(
    chunks: impl IntoIterator<Item = Vec<(A, Vec<A>)>>,
) -> (crate::minoux::HornFormula, AtomTable<A>) {
    let mut formula = crate::minoux::HornFormula::new();
    let mut atoms: AtomTable<A> = AtomTable::new();
    let mut body_buf = Vec::new();
    for chunk in chunks {
        for (head, body) in chunk {
            body_buf.clear();
            for a in body {
                body_buf.push(atoms.var(a));
            }
            let head = atoms.var(head);
            formula.ensure_vars(atoms.len() as u32);
            formula.add_rule(head, &body_buf);
        }
    }
    formula.ensure_vars(atoms.len() as u32);
    (formula, atoms)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn assemble_interns_bodies_before_heads() {
        let chunks = vec![
            vec![(("p", 1u32), vec![("q", 1u32), ("r", 1u32)])],
            vec![(("p", 2u32), Vec::new())],
        ];
        let (formula, atoms) = assemble_ground_chunks(chunks);
        assert_eq!(formula.num_rules(), 2);
        assert_eq!(formula.num_vars(), 4);
        let order: Vec<_> = atoms.iter().map(|(_, a)| *a).collect();
        assert_eq!(
            order,
            vec![("q", 1), ("r", 1), ("p", 1), ("p", 2)],
            "bodies intern before heads, chunks in order"
        );
    }

    #[test]
    fn intern_and_lookup() {
        let mut t: AtomTable<(u32, u32)> = AtomTable::new();
        let v1 = t.var((0, 5));
        let v2 = t.var((1, 5));
        assert_ne!(v1, v2);
        assert_eq!(t.var((0, 5)), v1);
        assert_eq!(t.lookup(&(1, 5)), Some(v2));
        assert_eq!(t.lookup(&(9, 9)), None);
        assert_eq!(*t.atom(v2), (1, 5));
        assert_eq!(t.len(), 2);
    }

    #[test]
    fn iter_in_order() {
        let mut t: AtomTable<&'static str> = AtomTable::new();
        t.var("a");
        t.var("b");
        let collected: Vec<_> = t.iter().map(|(v, a)| (v.0, *a)).collect();
        assert_eq!(collected, vec![(0, "a"), (1, "b")]);
    }
}
