//! Dense interning of ground atoms into propositional variables.
//!
//! The reductions in the paper (grounding monadic datalog, the Horn-SAT
//! encoding of arc-consistency in Proposition 6.2) all map structured
//! ground atoms like `P₀(3)` or `Θ(x, v)` to propositional variables. An
//! [`AtomTable`] provides this mapping with O(1) amortized interning.

use std::collections::HashMap;
use std::hash::Hash;

use crate::minoux::Var;

/// Bijection between ground atoms of type `A` and dense propositional
/// variables.
#[derive(Clone, Debug)]
pub struct AtomTable<A> {
    by_atom: HashMap<A, Var>,
    atoms: Vec<A>,
}

impl<A: Clone + Eq + Hash> Default for AtomTable<A> {
    fn default() -> Self {
        Self::new()
    }
}

impl<A: Clone + Eq + Hash> AtomTable<A> {
    /// Creates an empty table.
    pub fn new() -> Self {
        Self {
            by_atom: HashMap::new(),
            atoms: Vec::new(),
        }
    }

    /// Interns `atom`, returning its variable (allocating one if new).
    pub fn var(&mut self, atom: A) -> Var {
        if let Some(&v) = self.by_atom.get(&atom) {
            return v;
        }
        let v = Var(u32::try_from(self.atoms.len()).expect("too many atoms"));
        self.atoms.push(atom.clone());
        self.by_atom.insert(atom, v);
        v
    }

    /// Looks up an atom without interning it.
    pub fn lookup(&self, atom: &A) -> Option<Var> {
        self.by_atom.get(atom).copied()
    }

    /// The atom of a variable.
    pub fn atom(&self, v: Var) -> &A {
        &self.atoms[v.index()]
    }

    /// Number of interned atoms.
    pub fn len(&self) -> usize {
        self.atoms.len()
    }

    /// Whether the table is empty.
    pub fn is_empty(&self) -> bool {
        self.atoms.is_empty()
    }

    /// Iterates over all `(Var, atom)` pairs in interning order.
    pub fn iter(&self) -> impl Iterator<Item = (Var, &A)> {
        self.atoms
            .iter()
            .enumerate()
            .map(|(i, a)| (Var(i as u32), a))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn intern_and_lookup() {
        let mut t: AtomTable<(u32, u32)> = AtomTable::new();
        let v1 = t.var((0, 5));
        let v2 = t.var((1, 5));
        assert_ne!(v1, v2);
        assert_eq!(t.var((0, 5)), v1);
        assert_eq!(t.lookup(&(1, 5)), Some(v2));
        assert_eq!(t.lookup(&(9, 9)), None);
        assert_eq!(*t.atom(v2), (1, 5));
        assert_eq!(t.len(), 2);
    }

    #[test]
    fn iter_in_order() {
        let mut t: AtomTable<&'static str> = AtomTable::new();
        t.var("a");
        t.var("b");
        let collected: Vec<_> = t.iter().map(|(v, a)| (v.0, *a)).collect();
        assert_eq!(collected, vec![(0, "a"), (1, "b")]);
    }
}
