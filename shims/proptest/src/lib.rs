#![warn(missing_docs)]

//! Offline stand-in for the `proptest` crate.
//!
//! The build environment has no crates.io access, so the workspace vendors
//! the subset of the proptest 1.x API its property tests use: the
//! [`Strategy`] trait with `prop_map`/`prop_recursive`/`boxed`, strategies
//! for integer ranges, tuples, [`collection::vec`], [`sample::select`],
//! [`option::of`], [`arbitrary::any`], the [`proptest!`]/[`prop_assert!`]/
//! [`prop_assert_eq!`]/[`prop_oneof!`] macros, and
//! [`test_runner::ProptestConfig`].
//!
//! Semantics: each `#[test]` inside [`proptest!`] runs `cases` iterations
//! with inputs drawn from a generator seeded deterministically from the
//! test's name, so failures reproduce across runs. There is **no
//! shrinking** — a failing case reports its case index and assertion
//! message only. That trade-off keeps the shim small while preserving the
//! tests' value as differential oracles.

use std::ops::{Range, RangeInclusive};
use std::rc::Rc;

pub mod test_runner {
    //! The per-test configuration and failure plumbing.

    use rand::rngs::StdRng;
    use rand::{RngCore, SeedableRng};

    /// How a property test runs (only `cases` is honored).
    #[derive(Clone, Debug)]
    pub struct ProptestConfig {
        /// Number of random cases to execute per test.
        pub cases: u32,
    }

    impl ProptestConfig {
        /// A config running `cases` random cases.
        pub fn with_cases(cases: u32) -> Self {
            ProptestConfig { cases }
        }
    }

    impl Default for ProptestConfig {
        fn default() -> Self {
            ProptestConfig { cases: 256 }
        }
    }

    /// A failed property (carried out of the test body by `prop_assert!`).
    #[derive(Clone, Debug)]
    pub struct TestCaseError(String);

    impl TestCaseError {
        /// A failure with the given message.
        pub fn fail(message: impl Into<String>) -> Self {
            TestCaseError(message.into())
        }
    }

    impl std::fmt::Display for TestCaseError {
        fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
            f.write_str(&self.0)
        }
    }

    /// The deterministic generator driving one property test.
    #[derive(Clone, Debug)]
    pub struct TestRng(StdRng);

    impl TestRng {
        /// Seeds from a test name (FNV-1a), so every test gets a stable,
        /// distinct stream.
        pub fn from_name(name: &str) -> Self {
            let mut h: u64 = 0xcbf2_9ce4_8422_2325;
            for b in name.bytes() {
                h ^= b as u64;
                h = h.wrapping_mul(0x100_0000_01b3);
            }
            TestRng(StdRng::seed_from_u64(h))
        }

        /// The next 64 random bits.
        pub fn next_u64(&mut self) -> u64 {
            self.0.next_u64()
        }

        /// A uniform index below `n` (`n > 0`).
        pub fn below(&mut self, n: usize) -> usize {
            assert!(n > 0, "below(0)");
            ((self.next_u64() as u128 * n as u128) >> 64) as usize
        }
    }
}

use test_runner::TestRng;

/// A generator of values of one type. Unlike real proptest there is no
/// value tree and no shrinking: a strategy just samples.
pub trait Strategy {
    /// The generated type.
    type Value;

    /// Draws one value.
    fn new_value(&self, rng: &mut TestRng) -> Self::Value;

    /// Maps generated values through `f`.
    fn prop_map<O, F>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
        F: Fn(Self::Value) -> O,
    {
        Map { inner: self, f }
    }

    /// Type-erases the strategy (cheaply clonable).
    fn boxed(self) -> BoxedStrategy<Self::Value>
    where
        Self: Sized + 'static,
    {
        BoxedStrategy(Rc::new(self))
    }

    /// Recursive strategies: `f` maps a strategy for the inner occurrences
    /// to a strategy for the enclosing shape; `depth` bounds the nesting.
    /// `_desired_size`/`_expected_branch` are accepted for API parity and
    /// ignored.
    fn prop_recursive<R, F>(
        self,
        depth: u32,
        _desired_size: u32,
        _expected_branch: u32,
        f: F,
    ) -> BoxedStrategy<Self::Value>
    where
        Self: Sized + 'static,
        R: Strategy<Value = Self::Value> + 'static,
        F: Fn(BoxedStrategy<Self::Value>) -> R,
    {
        let leaf = self.boxed();
        let mut level = leaf.clone();
        for _ in 0..depth {
            // Mix the leaf back in so expected sizes stay bounded.
            level = Union::new(vec![(1, leaf.clone()), (2, f(level).boxed())]).boxed();
        }
        level
    }
}

/// The result of [`Strategy::prop_map`].
#[derive(Clone, Debug)]
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S: Strategy, O, F: Fn(S::Value) -> O> Strategy for Map<S, F> {
    type Value = O;
    fn new_value(&self, rng: &mut TestRng) -> O {
        (self.f)(self.inner.new_value(rng))
    }
}

/// A type-erased, cheaply clonable strategy.
pub struct BoxedStrategy<T>(Rc<dyn Strategy<Value = T>>);

impl<T> Clone for BoxedStrategy<T> {
    fn clone(&self) -> Self {
        BoxedStrategy(Rc::clone(&self.0))
    }
}

impl<T> Strategy for BoxedStrategy<T> {
    type Value = T;
    fn new_value(&self, rng: &mut TestRng) -> T {
        self.0.new_value(rng)
    }
}

/// A weighted union of strategies of one value type (behind [`prop_oneof!`]
/// and `prop_recursive`).
pub struct Union<T> {
    arms: Vec<(u32, BoxedStrategy<T>)>,
    total: u32,
}

impl<T> Union<T> {
    /// A union over weighted arms (weights must not all be zero).
    pub fn new(arms: Vec<(u32, BoxedStrategy<T>)>) -> Self {
        let total = arms.iter().map(|(w, _)| *w).sum();
        assert!(total > 0, "Union needs positive total weight");
        Union { arms, total }
    }
}

impl<T> Clone for Union<T> {
    fn clone(&self) -> Self {
        Union {
            arms: self.arms.clone(),
            total: self.total,
        }
    }
}

impl<T> Strategy for Union<T> {
    type Value = T;
    fn new_value(&self, rng: &mut TestRng) -> T {
        let mut pick = rng.below(self.total as usize) as u32;
        for (w, s) in &self.arms {
            if pick < *w {
                return s.new_value(rng);
            }
            pick -= w;
        }
        unreachable!("weights sum to total")
    }
}

macro_rules! impl_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            fn new_value(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty range strategy");
                let span = (self.end as i128 - self.start as i128) as usize;
                (self.start as i128 + rng.below(span) as i128) as $t
            }
        }
        impl Strategy for RangeInclusive<$t> {
            type Value = $t;
            fn new_value(&self, rng: &mut TestRng) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "empty range strategy");
                let span = (hi as i128 - lo as i128 + 1) as usize;
                (lo as i128 + rng.below(span) as i128) as $t
            }
        }
    )*};
}
impl_range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

macro_rules! impl_tuple_strategy {
    ($($name:ident),+) => {
        impl<$($name: Strategy),+> Strategy for ($($name,)+) {
            type Value = ($($name::Value,)+);
            #[allow(non_snake_case)]
            fn new_value(&self, rng: &mut TestRng) -> Self::Value {
                let ($($name,)+) = self;
                ($($name.new_value(rng),)+)
            }
        }
    };
}
impl_tuple_strategy!(A);
impl_tuple_strategy!(A, B);
impl_tuple_strategy!(A, B, C);
impl_tuple_strategy!(A, B, C, D);
impl_tuple_strategy!(A, B, C, D, E);

/// A strategy that always yields a clone of one value.
#[derive(Clone, Debug)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;
    fn new_value(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

pub mod arbitrary {
    //! `any::<T>()` — the canonical whole-domain strategy per type.

    use super::{Strategy, TestRng};
    use std::marker::PhantomData;

    /// Types with a canonical strategy.
    pub trait Arbitrary: Sized {
        /// Draws an unconstrained value.
        fn arbitrary_value(rng: &mut TestRng) -> Self;
    }

    macro_rules! impl_arbitrary_int {
        ($($t:ty),*) => {$(
            impl Arbitrary for $t {
                fn arbitrary_value(rng: &mut TestRng) -> Self {
                    rng.next_u64() as $t
                }
            }
        )*};
    }
    impl_arbitrary_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

    impl Arbitrary for bool {
        fn arbitrary_value(rng: &mut TestRng) -> Self {
            rng.next_u64() & 1 == 1
        }
    }

    /// The strategy returned by [`any`].
    pub struct Any<T>(PhantomData<T>);

    impl<T> Clone for Any<T> {
        fn clone(&self) -> Self {
            Any(PhantomData)
        }
    }

    impl<T: Arbitrary> Strategy for Any<T> {
        type Value = T;
        fn new_value(&self, rng: &mut TestRng) -> T {
            T::arbitrary_value(rng)
        }
    }

    /// The canonical strategy for `T`.
    pub fn any<T: Arbitrary>() -> Any<T> {
        Any(PhantomData)
    }
}

pub mod collection {
    //! Collection strategies (`vec`).

    use super::{Strategy, TestRng};
    use std::ops::{Range, RangeInclusive};

    /// An inclusive size band for generated collections.
    #[derive(Clone, Copy, Debug)]
    pub struct SizeRange {
        lo: usize,
        hi: usize,
    }

    impl From<Range<usize>> for SizeRange {
        fn from(r: Range<usize>) -> Self {
            assert!(r.start < r.end, "empty size range");
            SizeRange {
                lo: r.start,
                hi: r.end - 1,
            }
        }
    }

    impl From<RangeInclusive<usize>> for SizeRange {
        fn from(r: RangeInclusive<usize>) -> Self {
            assert!(r.start() <= r.end(), "empty size range");
            SizeRange {
                lo: *r.start(),
                hi: *r.end(),
            }
        }
    }

    impl From<usize> for SizeRange {
        fn from(n: usize) -> Self {
            SizeRange { lo: n, hi: n }
        }
    }

    /// The strategy returned by [`vec()`].
    #[derive(Clone, Debug)]
    pub struct VecStrategy<S> {
        element: S,
        size: SizeRange,
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn new_value(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let n = self.size.lo + rng.below(self.size.hi - self.size.lo + 1);
            (0..n).map(|_| self.element.new_value(rng)).collect()
        }
    }

    /// Vectors of `element` values with a length drawn from `size`.
    pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
        VecStrategy {
            element,
            size: size.into(),
        }
    }
}

pub mod sample {
    //! Uniform selection from explicit value lists.

    use super::{Strategy, TestRng};

    /// The strategy returned by [`select`].
    #[derive(Clone, Debug)]
    pub struct Select<T: Clone>(Vec<T>);

    impl<T: Clone> Strategy for Select<T> {
        type Value = T;
        fn new_value(&self, rng: &mut TestRng) -> T {
            self.0[rng.below(self.0.len())].clone()
        }
    }

    /// A uniformly random element of `values` (must be non-empty).
    pub fn select<T: Clone>(values: Vec<T>) -> Select<T> {
        assert!(!values.is_empty(), "select over an empty list");
        Select(values)
    }
}

pub mod option {
    //! `Option` strategies.

    use super::{Strategy, TestRng};

    /// The strategy returned by [`of`].
    #[derive(Clone, Debug)]
    pub struct OptionStrategy<S>(S);

    impl<S: Strategy> Strategy for OptionStrategy<S> {
        type Value = Option<S::Value>;
        fn new_value(&self, rng: &mut TestRng) -> Option<S::Value> {
            if rng.below(4) == 0 {
                None
            } else {
                Some(self.0.new_value(rng))
            }
        }
    }

    /// `None` a quarter of the time, otherwise `Some` of the inner value.
    pub fn of<S: Strategy>(inner: S) -> OptionStrategy<S> {
        OptionStrategy(inner)
    }
}

pub mod prelude {
    //! The glob-import surface, mirroring `proptest::prelude`.

    pub use crate::arbitrary::any;
    pub use crate::test_runner::{ProptestConfig, TestCaseError};
    pub use crate::{prop_assert, prop_assert_eq, prop_oneof, proptest};
    pub use crate::{BoxedStrategy, Just, Strategy};
}

/// Declares property tests: each `fn` runs `cases` times with inputs drawn
/// from the given strategies. See the crate docs for the differences from
/// real proptest (deterministic seeding, no shrinking).
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_fns! { ($cfg) $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_fns! { ($crate::test_runner::ProptestConfig::default()) $($rest)* }
    };
}

/// Implementation detail of [`proptest!`]: munches one test fn at a time.
#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_fns {
    ( ($cfg:expr) ) => {};
    ( ($cfg:expr)
      $(#[$meta:meta])*
      fn $name:ident($($arg:pat in $strat:expr),+ $(,)?) $body:block
      $($rest:tt)*
    ) => {
        $(#[$meta])*
        fn $name() {
            let config = $cfg;
            let mut rng = $crate::test_runner::TestRng::from_name(stringify!($name));
            for case in 0..config.cases {
                $(let $arg = $crate::Strategy::new_value(&($strat), &mut rng);)+
                let result: ::std::result::Result<(), $crate::test_runner::TestCaseError> =
                    (|| { $body ::std::result::Result::Ok(()) })();
                if let ::std::result::Result::Err(e) = result {
                    panic!("proptest case {case}/{}: {e}", config.cases);
                }
            }
        }
        $crate::__proptest_fns! { ($cfg) $($rest)* }
    };
}

/// Fails the surrounding property if the condition is false.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr $(,)?) => {
        if !$cond {
            return ::std::result::Result::Err($crate::test_runner::TestCaseError::fail(
                concat!("assertion failed: ", stringify!($cond)),
            ));
        }
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !$cond {
            return ::std::result::Result::Err($crate::test_runner::TestCaseError::fail(format!(
                "assertion failed: {}: {}",
                stringify!($cond),
                format!($($fmt)+),
            )));
        }
    };
}

/// Fails the surrounding property if the two values differ.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {{
        let (left, right) = (&$left, &$right);
        if !(*left == *right) {
            return ::std::result::Result::Err($crate::test_runner::TestCaseError::fail(format!(
                "assertion failed: `{:?}` != `{:?}`",
                left, right,
            )));
        }
    }};
    ($left:expr, $right:expr, $($fmt:tt)+) => {{
        let (left, right) = (&$left, &$right);
        if !(*left == *right) {
            return ::std::result::Result::Err($crate::test_runner::TestCaseError::fail(format!(
                "assertion failed: `{:?}` != `{:?}`: {}",
                left, right,
                format!($($fmt)+),
            )));
        }
    }};
}

/// A uniform choice between several strategies of the same value type.
#[macro_export]
macro_rules! prop_oneof {
    ($($strat:expr),+ $(,)?) => {
        $crate::Union::new(vec![$((1u32, $crate::Strategy::boxed($strat)),)+])
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    #[test]
    fn strategies_sample_within_bounds() {
        let mut rng = crate::test_runner::TestRng::from_name("bounds");
        let s = crate::collection::vec(0u8..4, 1..=10usize);
        for _ in 0..200 {
            let v = s.new_value(&mut rng);
            assert!((1..=10).contains(&v.len()));
            assert!(v.iter().all(|&x| x < 4));
        }
        let sel = crate::sample::select(vec!["a", "b"]);
        for _ in 0..50 {
            assert!(["a", "b"].contains(&sel.new_value(&mut rng)));
        }
    }

    #[test]
    fn recursive_strategies_terminate() {
        #[derive(Clone, Debug)]
        enum T {
            Leaf,
            Node(Box<T>, Box<T>),
        }
        fn depth(t: &T) -> u32 {
            match t {
                T::Leaf => 0,
                T::Node(a, b) => 1 + depth(a).max(depth(b)),
            }
        }
        let leaf = (0u8..16).prop_map(|_| T::Leaf);
        let s = leaf.prop_recursive(3, 16, 2, |inner| {
            (inner.clone(), inner).prop_map(|(a, b)| T::Node(Box::new(a), Box::new(b)))
        });
        let mut rng = crate::test_runner::TestRng::from_name("recursive");
        for _ in 0..200 {
            assert!(depth(&s.new_value(&mut rng)) <= 3);
        }
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(32))]

        /// The macro front-end compiles and runs with multiple bindings.
        #[test]
        fn macro_front_end(x in 0u32..10, ys in crate::collection::vec(any::<u32>(), 0..5)) {
            prop_assert!(x < 10);
            prop_assert!(ys.len() < 5, "len {}", ys.len());
            prop_assert_eq!(x, x);
            let choice = prop_oneof![Just(1u8), Just(2u8)];
            let mut inner = crate::test_runner::TestRng::from_name("inner");
            prop_assert!(matches!(choice.new_value(&mut inner), 1 | 2));
        }
    }
}
