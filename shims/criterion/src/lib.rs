#![warn(missing_docs)]

//! Offline stand-in for the `criterion` crate.
//!
//! The build environment has no crates.io access, so the workspace vendors
//! the subset of the criterion 0.5 API its benches use: [`Criterion`],
//! `benchmark_group`/`sample_size`/`bench_with_input`/`bench_function`,
//! [`BenchmarkId`], `Bencher::iter`, [`black_box`], and the
//! [`criterion_group!`]/[`criterion_main!`] macros.
//!
//! Measurement is deliberately simple: each benchmark runs a short warm-up,
//! then `sample_size` timed samples of one iteration batch each, and prints
//! min/median/mean per-iteration times. There are no plots, no statistical
//! regression analysis, and no baselines — enough to compare strategies in
//! one run, which is all the harness tables need.

use std::time::{Duration, Instant};

/// An opaque-to-the-optimizer identity function.
pub fn black_box<T>(x: T) -> T {
    std::hint::black_box(x)
}

/// Names one benchmark within a group.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct BenchmarkId {
    id: String,
}

impl BenchmarkId {
    /// A `function_name/parameter` id.
    pub fn new(function_name: impl Into<String>, parameter: impl std::fmt::Display) -> Self {
        BenchmarkId {
            id: format!("{}/{}", function_name.into(), parameter),
        }
    }

    /// An id that is just the parameter.
    pub fn from_parameter(parameter: impl std::fmt::Display) -> Self {
        BenchmarkId {
            id: parameter.to_string(),
        }
    }
}

impl std::fmt::Display for BenchmarkId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&self.id)
    }
}

/// Passed to the benchmark closure; `iter` does the timing.
pub struct Bencher {
    samples: Vec<Duration>,
    sample_size: usize,
}

impl Bencher {
    /// Times `routine`: warm-up, then `sample_size` timed samples.
    pub fn iter<O, R: FnMut() -> O>(&mut self, mut routine: R) {
        // Warm-up and calibration: find an iteration count that makes one
        // sample take ≳1ms so Instant overhead is negligible.
        let mut iters_per_sample = 1u64;
        loop {
            let start = Instant::now();
            for _ in 0..iters_per_sample {
                black_box(routine());
            }
            let elapsed = start.elapsed();
            if elapsed >= Duration::from_millis(1) || iters_per_sample >= 1 << 20 {
                break;
            }
            iters_per_sample *= 4;
        }
        self.samples.clear();
        for _ in 0..self.sample_size {
            let start = Instant::now();
            for _ in 0..iters_per_sample {
                black_box(routine());
            }
            self.samples.push(start.elapsed() / iters_per_sample as u32);
        }
    }

    fn report(&self, label: &str) {
        if self.samples.is_empty() {
            println!("{label:<40} (no samples)");
            return;
        }
        let mut sorted = self.samples.clone();
        sorted.sort_unstable();
        let min = sorted[0];
        let median = sorted[sorted.len() / 2];
        let mean = sorted.iter().sum::<Duration>() / sorted.len() as u32;
        println!(
            "{label:<40} min {:>12?}  median {:>12?}  mean {:>12?}",
            min, median, mean
        );
    }
}

/// A named collection of related benchmarks.
pub struct BenchmarkGroup<'c> {
    name: String,
    sample_size: usize,
    _criterion: &'c mut Criterion,
}

impl BenchmarkGroup<'_> {
    /// Sets the number of timed samples per benchmark.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n.max(1);
        self
    }

    /// Runs one benchmark over an input value.
    pub fn bench_with_input<I: ?Sized, F>(&mut self, id: BenchmarkId, input: &I, mut f: F)
    where
        F: FnMut(&mut Bencher, &I),
    {
        let mut b = Bencher {
            samples: Vec::new(),
            sample_size: self.sample_size,
        };
        f(&mut b, input);
        b.report(&format!("{}/{}", self.name, id));
    }

    /// Runs one benchmark without an explicit input.
    pub fn bench_function<F>(&mut self, id: impl std::fmt::Display, mut f: F)
    where
        F: FnMut(&mut Bencher),
    {
        let mut b = Bencher {
            samples: Vec::new(),
            sample_size: self.sample_size,
        };
        f(&mut b);
        b.report(&format!("{}/{}", self.name, id));
    }

    /// Ends the group (prints a separator).
    pub fn finish(self) {
        println!();
    }
}

/// The benchmark driver.
#[derive(Default)]
pub struct Criterion {}

impl Criterion {
    /// Begins a named group of benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        let name = name.into();
        println!("== {name} ==");
        BenchmarkGroup {
            name,
            sample_size: 20,
            _criterion: self,
        }
    }

    /// Runs one stand-alone benchmark.
    pub fn bench_function<F>(&mut self, name: &str, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let mut b = Bencher {
            samples: Vec::new(),
            sample_size: 20,
        };
        f(&mut b);
        b.report(name);
        self
    }

    /// Accepted for API parity with criterion's CLI handling; a no-op.
    pub fn configure_from_args(self) -> Self {
        self
    }
}

/// Declares a group function running each target benchmark.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        fn $name() {
            let mut criterion = $crate::Criterion::default();
            $($target(&mut criterion);)+
        }
    };
}

/// Declares the bench `main` running each group.
#[macro_export]
macro_rules! criterion_main {
    ($($group:ident),+ $(,)?) => {
        fn main() {
            // `cargo bench` passes flags like `--bench`; this runner has no
            // CLI surface, so arguments are accepted and ignored.
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bench_api_runs() {
        let mut c = Criterion::default();
        let mut g = c.benchmark_group("smoke");
        g.sample_size(3);
        let input = 1_000u64;
        g.bench_with_input(BenchmarkId::from_parameter(input), &input, |b, &n| {
            b.iter(|| (0..n).sum::<u64>())
        });
        g.finish();
        c.bench_function("standalone", |b| b.iter(|| black_box(2 + 2)));
    }
}
