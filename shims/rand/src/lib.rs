#![warn(missing_docs)]

//! Offline stand-in for the `rand` crate.
//!
//! The build environment for this workspace has no access to crates.io, so
//! the workspace vendors the *subset* of the `rand` 0.8 API it actually
//! uses as this tiny path dependency: [`rngs::StdRng`] (a xoshiro256**
//! generator seeded through SplitMix64), the [`SeedableRng`] and [`Rng`]
//! traits with `gen_range`/`gen_bool`/`gen`, and [`seq::SliceRandom`] with
//! `choose`/`shuffle`.
//!
//! The streams differ from the real `rand` crate (different generator), but
//! every consumer in this workspace only needs *deterministic, well-mixed*
//! streams — none encode expectations about the exact values.

use std::ops::{Range, RangeInclusive};

/// A source of random 64-bit words.
pub trait RngCore {
    /// The next 64 uniformly random bits.
    fn next_u64(&mut self) -> u64;

    /// The next 32 uniformly random bits.
    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }
}

impl<R: RngCore + ?Sized> RngCore for &mut R {
    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }
}

/// Deterministically seedable generators.
pub trait SeedableRng: Sized {
    /// Builds a generator from a 64-bit seed (mixed through SplitMix64).
    fn seed_from_u64(seed: u64) -> Self;
}

/// Types that can be sampled uniformly from the whole domain (`Rng::gen`).
pub trait Standard: Sized {
    /// Draws a uniform value.
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

macro_rules! impl_standard_int {
    ($($t:ty),*) => {$(
        impl Standard for $t {
            fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
                rng.next_u64() as $t
            }
        }
    )*};
}
impl_standard_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Standard for bool {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}

/// Ranges that `Rng::gen_range` accepts.
pub trait SampleRange<T> {
    /// Draws a uniform value from the range. Panics on empty ranges.
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

/// Rejection-free-enough uniform draw in `[0, n)` (Lemire-style without
/// the correction pass; the tiny modulo bias is irrelevant for tests and
/// synthetic workloads).
fn below<R: RngCore + ?Sized>(rng: &mut R, n: u64) -> u64 {
    assert!(n > 0, "cannot sample from an empty range");
    ((rng.next_u64() as u128 * n as u128) >> 64) as u64
}

macro_rules! impl_sample_range {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for Range<$t> {
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "empty range in gen_range");
                let span = (self.end as i128 - self.start as i128) as u64;
                (self.start as i128 + below(rng, span) as i128) as $t
            }
        }
        impl SampleRange<$t> for RangeInclusive<$t> {
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "empty range in gen_range");
                let span = (hi as i128 - lo as i128 + 1) as u64;
                (lo as i128 + below(rng, span) as i128) as $t
            }
        }
    )*};
}
impl_sample_range!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

/// The user-facing sampling interface (blanket-implemented for every
/// [`RngCore`], like the real crate).
pub trait Rng: RngCore {
    /// A uniform value from `range`.
    fn gen_range<T, Ra: SampleRange<T>>(&mut self, range: Ra) -> T {
        range.sample_from(self)
    }

    /// `true` with probability `p`.
    fn gen_bool(&mut self, p: f64) -> bool {
        assert!((0.0..=1.0).contains(&p), "gen_bool probability {p}");
        // 53 uniform mantissa bits, exactly like rand's `Open01`-free path.
        let x = (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64);
        x < p
    }

    /// A uniform value of type `T`.
    fn gen<T: Standard>(&mut self) -> T {
        T::sample_standard(self)
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

/// Sequence-related helpers (`choose`, `shuffle`).
pub mod seq {
    use super::{below, RngCore};

    /// Random selection from slices.
    pub trait SliceRandom {
        /// The element type.
        type Item;

        /// A uniformly random element, or `None` if the slice is empty.
        fn choose<R: RngCore + ?Sized>(&self, rng: &mut R) -> Option<&Self::Item>;

        /// Fisher–Yates shuffle in place.
        fn shuffle<R: RngCore + ?Sized>(&mut self, rng: &mut R);
    }

    impl<T> SliceRandom for [T] {
        type Item = T;

        fn choose<R: RngCore + ?Sized>(&self, rng: &mut R) -> Option<&T> {
            if self.is_empty() {
                None
            } else {
                Some(&self[below(rng, self.len() as u64) as usize])
            }
        }

        fn shuffle<R: RngCore + ?Sized>(&mut self, rng: &mut R) {
            for i in (1..self.len()).rev() {
                self.swap(i, below(rng, i as u64 + 1) as usize);
            }
        }
    }
}

/// Concrete generators.
pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// The workspace's standard generator: xoshiro256** seeded via
    /// SplitMix64. Deterministic for a given seed.
    #[derive(Clone, Debug)]
    pub struct StdRng {
        s: [u64; 4],
    }

    fn splitmix64(state: &mut u64) -> u64 {
        *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = *state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> Self {
            let mut sm = seed;
            let s = [
                splitmix64(&mut sm),
                splitmix64(&mut sm),
                splitmix64(&mut sm),
                splitmix64(&mut sm),
            ];
            StdRng { s }
        }
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            let result = self.s[1].wrapping_mul(5).rotate_left(7).wrapping_mul(9);
            let t = self.s[1] << 17;
            self.s[2] ^= self.s[0];
            self.s[3] ^= self.s[1];
            self.s[1] ^= self.s[2];
            self.s[0] ^= self.s[3];
            self.s[2] ^= t;
            self.s[3] = self.s[3].rotate_left(45);
            result
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::seq::SliceRandom;
    use super::{Rng, SeedableRng};

    #[test]
    fn deterministic_and_in_range() {
        let mut a = StdRng::seed_from_u64(42);
        let mut b = StdRng::seed_from_u64(42);
        for _ in 0..100 {
            let x: usize = a.gen_range(0..10);
            assert_eq!(x, b.gen_range(0..10));
            assert!(x < 10);
            let y = a.gen_range(-3i64..=3);
            assert!((-3..=3).contains(&y));
            b.gen_range(-3i64..=3);
        }
    }

    #[test]
    fn gen_bool_is_roughly_fair() {
        let mut rng = StdRng::seed_from_u64(7);
        let heads = (0..10_000).filter(|_| rng.gen_bool(0.5)).count();
        assert!((4_500..5_500).contains(&heads), "{heads}");
        assert!((0..1000).all(|_| !rng.gen_bool(0.0)));
        assert!((0..1000).all(|_| rng.gen_bool(1.0)));
    }

    #[test]
    fn choose_and_shuffle_cover_the_slice() {
        let mut rng = StdRng::seed_from_u64(3);
        let items = [1, 2, 3, 4];
        let mut seen = [false; 4];
        for _ in 0..200 {
            seen[*items.choose(&mut rng).unwrap() - 1] = true;
        }
        assert!(seen.iter().all(|&s| s));
        let mut v: Vec<u32> = (0..50).collect();
        v.shuffle(&mut rng);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..50).collect::<Vec<_>>());
        assert_ne!(v, sorted, "shuffle left the slice sorted");
    }
}
