//! Property tests for the planner pipeline: whatever strategy the
//! planner picks must agree with the reference evaluators, and cached
//! plans must be transparent (re-execution returns identical results).

use proptest::prelude::*;
use treequery::tree::TreeBuilder;
use treequery::xpath::{eval_reference, Path, Qual};
use treequery::{cq, Axis, Engine, Tree};

const ALPHABET: [&str; 3] = ["a", "b", "c"];

fn tree_strategy(max_nodes: usize) -> impl Strategy<Value = Tree> {
    (
        proptest::collection::vec(any::<u32>(), 0..max_nodes),
        proptest::collection::vec(0u8..3, 1..=max_nodes),
    )
        .prop_map(|(parents, labels)| {
            let mut b = TreeBuilder::new();
            let mut nodes = vec![b.root(ALPHABET[labels[0] as usize % 3])];
            for (i, p) in parents.iter().enumerate() {
                let parent = nodes[(*p as usize) % nodes.len()];
                let label = ALPHABET[labels.get(i + 1).copied().unwrap_or(0) as usize % 3];
                nodes.push(b.child(parent, label));
            }
            b.freeze()
        })
}

fn path_strategy() -> impl Strategy<Value = Path> {
    let axis = proptest::sample::select(Axis::ALL.to_vec());
    let label = proptest::sample::select(ALPHABET.to_vec());
    let leaf = (axis, proptest::option::of(label)).prop_map(|(a, l)| match l {
        Some(l) => Path::labeled_step(a, l),
        None => Path::step(a),
    });
    leaf.prop_recursive(3, 24, 3, |inner| {
        prop_oneof![
            (inner.clone(), inner.clone()).prop_map(|(a, b)| a.then(b)),
            (inner.clone(), inner.clone()).prop_map(|(a, b)| a.union(b)),
            (inner.clone(), inner.clone()).prop_map(|(p, q)| p.filtered(Qual::Path(q))),
            (inner.clone(), inner.clone())
                .prop_map(|(p, q)| p.filtered(Qual::Not(Box::new(Qual::Path(q))))),
            (inner, proptest::sample::select(ALPHABET.to_vec()))
                .prop_map(|(p, l)| p.filtered(Qual::Label(l.to_owned()))),
        ]
    })
}

fn rooted(p: Path) -> Path {
    Path::step(Axis::DescendantOrSelf).then(p)
}

fn cq_strategy(max_vars: usize) -> impl Strategy<Value = cq::Cq> {
    let axes = vec![
        Axis::Child,
        Axis::Descendant,
        Axis::NextSibling,
        Axis::Following,
        Axis::Parent,
        Axis::Ancestor,
    ];
    (
        2..=max_vars,
        proptest::collection::vec((any::<u32>(), proptest::sample::select(axes)), 1..6),
        proptest::collection::vec(
            (any::<u32>(), proptest::sample::select(ALPHABET.to_vec())),
            0..3,
        ),
    )
        .prop_map(|(nvars, edges, labels)| {
            let mut q = cq::Cq::new();
            let vars: Vec<_> = (0..nvars).map(|i| q.add_var(format!("v{i}"))).collect();
            for (i, (pick, axis)) in edges.iter().enumerate() {
                let hi = (i + 1) % nvars;
                if hi == 0 {
                    continue;
                }
                let lo = (*pick as usize) % hi;
                q.atoms.push(cq::CqAtom::Axis(*axis, vars[lo], vars[hi]));
            }
            for (pick, label) in labels {
                let v = vars[(pick as usize) % nvars];
                q.atoms.push(cq::CqAtom::Label(label.to_owned(), v));
            }
            q.head = vec![vars[0]];
            q
        })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Planner-chosen XPath pipeline ≡ the (P1)–(P4)/(Q1)–(Q5) reference
    /// semantics, whatever strategy the statistics selected.
    #[test]
    fn planned_xpath_equals_reference(p in path_strategy(), t in tree_strategy(16)) {
        let p = rooted(p);
        let engine = Engine::new(&t);
        let ir = treequery::plan::ir::lower_path(&p);
        let got = engine.eval_ir(&ir).unwrap();
        let got = got.nodes().expect("xpath answers are node sets");
        let mut expect = eval_reference(&p, &t).to_vec();
        t.sort_by_pre(&mut expect);
        prop_assert_eq!(got, &expect[..], "query {}", p);
    }

    /// Planner-chosen CQ pipeline ≡ exhaustive backtracking.
    #[test]
    fn planned_cq_equals_backtrack(q in cq_strategy(4), t in tree_strategy(12)) {
        let engine = Engine::new(&t);
        let fast = engine.eval_cq(&q);
        let slow = cq::eval_backtrack(&q, &t);
        prop_assert_eq!(&fast.tuples, &slow, "plan {:?}", fast.plan);
    }

    /// Executing through a cached plan is transparent: the second run (a
    /// guaranteed cache hit) returns exactly the first run's answer.
    #[test]
    fn cached_plan_reexecution_is_identical(p in path_strategy(), t in tree_strategy(14)) {
        let ir = treequery::plan::ir::lower_path(&rooted(p));
        let engine = Engine::new(&t);
        let first = engine.eval_ir(&ir).unwrap();
        let hits_before = engine.metrics().plan_cache_hits;
        let second = engine.eval_ir(&ir).unwrap();
        prop_assert_eq!(&first, &second);
        prop_assert!(engine.metrics().plan_cache_hits > hits_before);
    }
}
