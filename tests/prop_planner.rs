//! Property tests for the planner pipeline: whatever strategy the
//! planner picks must agree with the reference evaluators, and cached
//! plans must be transparent (re-execution returns identical results).

mod common;

use common::{cq_strategy, path_strategy, rooted, tree_strategy};
use proptest::prelude::*;
use treequery::xpath::eval_reference;
use treequery::{cq, Engine};

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Planner-chosen XPath pipeline ≡ the (P1)–(P4)/(Q1)–(Q5) reference
    /// semantics, whatever strategy the statistics selected.
    #[test]
    fn planned_xpath_equals_reference(p in path_strategy(), t in tree_strategy(16)) {
        let p = rooted(p);
        let engine = Engine::new(&t);
        let ir = treequery::plan::ir::lower_path(&p);
        let got = engine.eval_ir(&ir).unwrap();
        let got = got.nodes().expect("xpath answers are node sets");
        let mut expect = eval_reference(&p, &t).to_vec();
        t.sort_by_pre(&mut expect);
        prop_assert_eq!(got, &expect[..], "query {}", p);
    }

    /// Planner-chosen CQ pipeline ≡ exhaustive backtracking.
    #[test]
    fn planned_cq_equals_backtrack(q in cq_strategy(4), t in tree_strategy(12)) {
        let engine = Engine::new(&t);
        let fast = engine.eval_cq(&q);
        let slow = cq::eval_backtrack(&q, &t);
        prop_assert_eq!(&fast.tuples, &slow, "plan {:?}", fast.plan);
    }

    /// Executing through a cached plan is transparent: the second run (a
    /// guaranteed cache hit) returns exactly the first run's answer.
    #[test]
    fn cached_plan_reexecution_is_identical(p in path_strategy(), t in tree_strategy(14)) {
        let ir = treequery::plan::ir::lower_path(&rooted(p));
        let engine = Engine::new(&t);
        let first = engine.eval_ir(&ir).unwrap();
        let hits_before = engine.metrics().plan_cache_hits;
        let second = engine.eval_ir(&ir).unwrap();
        prop_assert_eq!(&first, &second);
        prop_assert!(engine.metrics().plan_cache_hits > hits_before);
    }
}
