//! Property-based tests over randomly generated trees and queries.

use proptest::prelude::*;
use treequery::cq;
use treequery::tree::{to_term, TreeBuilder};
use treequery::{Axis, NodeSet, Order, Tree};

/// Strategy: a random tree described by parent choices — node i ≥ 1
/// attaches to node `parents[i-1] % i` — with labels from a small
/// alphabet.
fn tree_strategy(max_nodes: usize) -> impl Strategy<Value = Tree> {
    (
        proptest::collection::vec(any::<u32>(), 0..max_nodes),
        proptest::collection::vec(0u8..4, 1..=max_nodes),
    )
        .prop_map(|(parents, labels)| {
            const ALPHABET: [&str; 4] = ["a", "b", "c", "d"];
            let mut b = TreeBuilder::new();
            let mut nodes = vec![b.root(ALPHABET[labels[0] as usize % 4])];
            for (i, p) in parents.iter().enumerate() {
                let parent = nodes[(*p as usize) % nodes.len()];
                let label = ALPHABET[labels.get(i + 1).copied().unwrap_or(0) as usize % 4];
                nodes.push(b.child(parent, label));
            }
            b.freeze()
        })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// The three orders are permutations of the node set.
    #[test]
    fn orders_are_permutations(t in tree_strategy(40)) {
        for order in Order::ALL {
            let mut seen = vec![false; t.len()];
            for v in t.nodes() {
                let r = order.rank(&t, v) as usize;
                prop_assert!(!seen[r]);
                seen[r] = true;
            }
        }
    }

    /// Section 2: `Child⁺(x,y) ⇔ x <pre y ∧ y <post x` and
    /// `Following(x,y) ⇔ x <pre y ∧ x <post y`.
    #[test]
    fn pre_post_characterizations(t in tree_strategy(30)) {
        for x in t.nodes() {
            for y in t.nodes() {
                let anc = t.ancestors(y).any(|a| a == x);
                prop_assert_eq!(
                    anc,
                    t.pre(x) < t.pre(y) && t.post(y) < t.post(x)
                );
                prop_assert_eq!(
                    t.is_following(x, y),
                    t.pre(x) < t.pre(y) && t.post(x) < t.post(y)
                );
            }
        }
    }

    /// Term serialization round-trips.
    #[test]
    fn term_round_trip(t in tree_strategy(40)) {
        let s = to_term(&t);
        let t2 = treequery::parse_term(&s).unwrap();
        prop_assert_eq!(s, to_term(&t2));
    }

    /// XML serialization round-trips (structure and labels).
    #[test]
    fn xml_round_trip(t in tree_strategy(40)) {
        let xml = treequery::to_xml(&t);
        let t2 = treequery::parse_xml(&xml).unwrap();
        prop_assert_eq!(to_term(&t), to_term(&t2));
    }

    /// Axis set images equal the union of per-node successor sets, and
    /// `holds` matches `successors`, for every axis.
    #[test]
    fn axis_images_sound_and_complete(t in tree_strategy(25), seed in any::<u64>()) {
        let s = NodeSet::from_iter(
            t.len(),
            t.nodes().filter(|v| (seed >> (v.0 % 64)) & 1 == 1),
        );
        for axis in Axis::ALL {
            let fast = axis.image(&t, &s);
            let mut naive = NodeSet::empty(t.len());
            for x in &s {
                for y in axis.successors(&t, x) {
                    prop_assert!(axis.holds(&t, x, y));
                    naive.insert(y);
                }
            }
            prop_assert_eq!(&fast, &naive, "{}", axis);
        }
    }

    /// The subtree extent really delimits the descendants.
    #[test]
    fn subtree_extents(t in tree_strategy(40)) {
        for v in t.nodes() {
            let descendants = Axis::Descendant.successors(&t, v);
            prop_assert_eq!(descendants.len() as u32 + 1, t.subtree_size(v));
            for d in descendants {
                prop_assert!(t.pre(d) > t.pre(v) && t.pre(d) <= t.pre_end(v));
            }
        }
    }

    /// Acyclic-CQ evaluation equals backtracking on random trees.
    #[test]
    fn acyclic_cq_matches_backtracking(t in tree_strategy(25)) {
        for qs in [
            "q(x, y) :- child+(x, y), label(y, b).",
            "q(z) :- label(x, a), child(x, y), nextsibling(y, z).",
            "q(x) :- following(x, y), label(y, c).",
        ] {
            let q = cq::parse_cq(qs).unwrap();
            let fast = cq::eval_acyclic(&q, &t).unwrap();
            let slow = cq::eval_backtrack(&q, &t);
            prop_assert_eq!(&fast, &slow, "{}", qs);
        }
    }

    /// Theorem 6.5 equals backtracking satisfiability on cyclic τ1/τ3
    /// queries.
    #[test]
    fn x_property_matches_backtracking(t in tree_strategy(20)) {
        for qs in [
            "child+(x, y), child+(y, z), child+(x, z), label(z, b)",
            "child(x, y), nextsibling(y, z), child(x, z), label(y, a)",
        ] {
            let q = cq::parse_cq(qs).unwrap();
            let fast = cq::eval_x_property(&q, &t).unwrap().is_some();
            let slow = cq::is_satisfiable_backtrack(&q, &t);
            prop_assert_eq!(fast, slow, "{}", qs);
        }
    }

    /// Theorem 5.1 rewriting preserves semantics on random trees.
    #[test]
    fn rewrite_matches_backtracking(t in tree_strategy(18)) {
        for qs in [
            "q(z) :- child+(x, z), child(y, z), label(x, a), label(y, b).",
            "q(z) :- child(x, y), child+(y, z), child+(x, z), label(x, a).",
        ] {
            let q = cq::parse_cq(qs).unwrap();
            let fast = cq::rewrite::eval_via_rewrite(&q, &t).unwrap();
            let slow = cq::eval_backtrack(&q, &t);
            prop_assert_eq!(&fast, &slow, "{}", qs);
        }
    }

    /// The streaming filter agrees with the in-memory evaluator.
    #[test]
    fn streaming_matches_in_memory(t in tree_strategy(35)) {
        use treequery::streaming::{compile, matches_tree};
        use treequery::xpath::{eval_query, parse_xpath};
        for qs in ["//a[b]//c", "//a[not(b)]", "/a/b"] {
            let p = parse_xpath(qs).unwrap();
            let f = compile(&p).unwrap();
            let expected = !eval_query(&p, &t).is_empty();
            prop_assert_eq!(matches_tree(&f, &t).0, expected, "{}", qs);
        }
    }

    /// XPath: the fast evaluator agrees with the (P1)–(P4)/(Q1)–(Q5)
    /// reference on random trees.
    #[test]
    fn xpath_fast_matches_reference(t in tree_strategy(30)) {
        use treequery::xpath::{eval_query, eval_reference, parse_xpath};
        for qs in [
            "//a[b or not(c)]/d",
            "//b/ancestor::a[following::c]",
            "//a/preceding-sibling::*[lab()=b]",
        ] {
            let p = parse_xpath(qs).unwrap();
            prop_assert_eq!(eval_query(&p, &t), eval_reference(&p, &t), "{}", qs);
        }
    }
}
