//! Differential property suite for intra-query parallelism: for random
//! Core XPath and conjunctive queries on random trees, an engine whose
//! planner is granted 2 or 8 workers (with the size threshold disabled,
//! so the parallel kernels really run even on tiny trees) must return
//! exactly the sequential engine's answer — same nodes, same order, same
//! tuples.

mod common;

use common::{cq_strategy, path_strategy, rooted, tree_strategy};
use proptest::prelude::*;
use treequery::{Engine, EngineConfig, PlannerConfig, Tree};

fn engine_with_workers(tree: &Tree, workers: usize) -> Engine<'_> {
    Engine::with_config(
        tree,
        EngineConfig {
            planner: PlannerConfig {
                workers: Some(workers),
                // Disable the size gate so chunked kernels run on the
                // small random trees proptest generates.
                parallel_threshold: 0,
                ..PlannerConfig::default()
            },
            batch_threads: Some(workers),
            ..EngineConfig::default()
        },
    )
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(40))]

    /// Parallel XPath pipeline ≡ sequential, at 2 and 8 workers.
    #[test]
    fn parallel_xpath_equals_sequential(p in path_strategy(), t in tree_strategy(16)) {
        let p = rooted(p);
        let ir = treequery::plan::ir::lower_path(&p);
        let sequential = engine_with_workers(&t, 1).eval_ir(&ir).unwrap();
        for workers in [2usize, 8] {
            let engine = engine_with_workers(&t, workers);
            let parallel = engine.eval_ir(&ir).unwrap();
            prop_assert_eq!(
                &parallel, &sequential,
                "query {} at {} workers", p, workers
            );
        }
    }

    /// Parallel CQ pipeline ≡ sequential, at 2 and 8 workers (covers the
    /// rewrite-union route when the random query is cyclic).
    #[test]
    fn parallel_cq_equals_sequential(q in cq_strategy(4), t in tree_strategy(12)) {
        let sequential = engine_with_workers(&t, 1).eval_cq(&q);
        for workers in [2usize, 8] {
            let parallel = engine_with_workers(&t, workers).eval_cq(&q);
            prop_assert_eq!(
                &parallel.tuples, &sequential.tuples,
                "{} workers, plan {:?}", workers, parallel.plan
            );
        }
    }

    /// Parallel batch evaluation ≡ per-query sequential evaluation, in
    /// input order, on random trees.
    #[test]
    fn parallel_batch_equals_sequential(t in tree_strategy(16), n in 1usize..12) {
        let pool = [
            "//a",
            "//a[b]/c",
            "//b[not(c)]",
            "//a/following-sibling::b",
            "//c//b",
        ];
        let queries: Vec<treequery::Query> = (0..n)
            .map(|i| treequery::Query::xpath(pool[i % pool.len()]))
            .collect();
        let sequential = engine_with_workers(&t, 1);
        let parallel = engine_with_workers(&t, 8);
        let batch = parallel.eval_batch(&queries);
        prop_assert_eq!(batch.len(), queries.len());
        for (i, q) in queries.iter().enumerate() {
            let expect = sequential.eval(q).unwrap();
            prop_assert_eq!(batch[i].as_ref().unwrap(), &expect, "query {}", i);
        }
    }
}
