//! Cross-crate integration: every route through the system must agree.

use rand::rngs::StdRng;
use rand::SeedableRng;
use treequery::tree::{random_recursive_tree, xmark_document, XmarkConfig};
use treequery::{cq, parse_term, streaming, xpath, Engine, Tree, XPathStrategy};

fn random_trees(n: usize, size: usize) -> Vec<Tree> {
    let mut rng = StdRng::seed_from_u64(0xC0DE);
    (0..n)
        .map(|_| random_recursive_tree(&mut rng, size, &["a", "b", "c", "d", "r"]))
        .collect()
}

/// All four XPath strategies agree, including on negation (where the
/// conjunctive route is skipped).
#[test]
fn xpath_strategies_agree_on_random_trees() {
    let queries = [
        "//a[b]/c",
        "//a[not(b or c)]",
        "//b/parent::a[following-sibling::c]",
        "//a//b[not(parent::a)]",
        "//a/following::b",
        "//c/preceding-sibling::a | //d",
    ];
    for t in random_trees(8, 70) {
        let e = Engine::new(&t);
        for q in queries {
            let base = e.xpath(q).unwrap();
            assert_eq!(
                e.xpath_via(q, XPathStrategy::Reference).unwrap(),
                base,
                "reference: {q} on {t}"
            );
            assert_eq!(
                e.xpath_via(q, XPathStrategy::Datalog).unwrap(),
                base,
                "datalog: {q} on {t}"
            );
        }
    }
}

/// Conjunctive XPath additionally agrees through the acyclic-CQ route
/// (Proposition 4.2).
#[test]
fn conjunctive_xpath_agrees_through_cq() {
    let queries = ["//a[b]/c", "/r/a//b", "//a[b/c and lab()=a]/d"];
    for t in random_trees(6, 60) {
        let e = Engine::new(&t);
        for q in queries {
            assert_eq!(
                e.xpath_via(q, XPathStrategy::AcyclicCq).unwrap(),
                e.xpath(q).unwrap(),
                "{q} on {t}"
            );
        }
    }
}

/// The TMNF translation preserves the XPath→datalog semantics end to end.
#[test]
fn xpath_to_datalog_to_tmnf_chain() {
    use treequery::datalog::{eval_query, to_tmnf};
    let queries = ["//a[b]", "//a[not(b)]/c", "//b/parent::a"];
    for t in random_trees(4, 40) {
        let e = Engine::new(&t);
        for q in queries {
            let path = xpath::parse_xpath(q).unwrap();
            let prog = xpath::to_datalog(&path);
            let tmnf = to_tmnf(&prog).expect("translation produces convertible programs");
            assert!(tmnf.is_tmnf());
            let direct: Vec<_> = e.xpath(q).unwrap();
            let mut via_tmnf = eval_query(&tmnf, &t).to_vec();
            t.sort_by_pre(&mut via_tmnf);
            assert_eq!(via_tmnf, direct, "{q} on {t}");
        }
    }
}

/// All CQ evaluation techniques agree with exhaustive backtracking.
#[test]
fn cq_techniques_agree_with_backtracking() {
    let queries = [
        // Acyclic.
        "q(x, y) :- child+(x, y), label(y, b).",
        "q(z) :- root(r0), child(r0, x), child+(x, z), leaf(z).",
        // Cyclic tractable (Boolean).
        "child+(x, y), child+(y, z), child+(x, z), label(z, c)",
        "child(x, y), nextsibling(y, z), child(x, z)",
        // Cyclic NP-hard shape: rewrite.
        "q(z) :- child(x, y), child+(y, z), child+(x, z), label(x, r).",
    ];
    for t in random_trees(6, 35) {
        let e = Engine::new(&t);
        for qs in queries {
            let q = cq::parse_cq(qs).unwrap();
            let fast = e.eval_cq(&q);
            let slow = cq::eval_backtrack(&q, &t);
            if q.is_boolean() {
                assert_eq!(fast.is_satisfiable(), !slow.is_empty(), "{qs} on {t}");
            } else {
                assert_eq!(fast.tuples, slow, "{qs} on {t}");
            }
        }
    }
}

/// Twig joins, the structural-join plan, and the acyclic-CQ machinery
/// agree on tree patterns.
#[test]
fn twig_joins_agree_with_cq() {
    use treequery::cq::twigjoin::{structural_join_plan, twig_stack, TwigEdge, TwigQuery};
    for t in random_trees(6, 50) {
        let mut tq = TwigQuery::new("a");
        let b = tq.add_child(0, "b", TwigEdge::Descendant);
        tq.add_child(b, "c", TwigEdge::Child);
        tq.add_child(0, "d", TwigEdge::Child);

        let via_cq: Vec<Vec<_>> = cq::eval_acyclic(&tq.to_cq(), &t)
            .expect("twig patterns are acyclic")
            .into_iter()
            .collect();
        let (mut ts, _) = twig_stack(&tq, &t);
        ts.sort_unstable();
        ts.dedup();
        assert_eq!(ts, via_cq, "twig_stack on {t}");
        let (mut sj, _) = structural_join_plan(&tq, &t);
        sj.sort_unstable();
        sj.dedup();
        assert_eq!(sj, via_cq, "structural plan on {t}");
    }
}

/// Streaming filters agree with in-memory non-emptiness on the XMark
/// workload, and automata recognize what they should.
#[test]
fn streaming_and_automata_on_xmark() {
    let mut rng = StdRng::seed_from_u64(42);
    let t = xmark_document(&mut rng, &XmarkConfig::scaled_to(3_000));
    let e = Engine::new(&t);
    for q in [
        "//open_auction[bidder]",
        "//person[not(address)]",
        "//parlist//listitem//text",
        "//homepage/parent::person",
    ] {
        let filter = e.stream_filter(q).unwrap();
        let (matched, stats) = streaming::matches_tree(&filter, &t);
        assert_eq!(matched, !e.xpath(q).unwrap().is_empty(), "{q}");
        assert!(stats.peak_frames <= t.height() as usize + 1);
    }
    // Automata: "contains a bidder" as a regular language.
    use treequery::automata::Nta;
    let has_bidder = Nta::exists_label("bidder").determinize();
    assert_eq!(
        has_bidder.accepts(&t),
        !e.xpath("//bidder").unwrap().is_empty()
    );
    let (streamed, peak) = has_bidder.run_streaming(&streaming::tree_events(&t));
    assert_eq!(streamed, has_bidder.accepts(&t));
    assert!(peak <= t.height() as usize + 1);
}

/// The worked structural-join example of Section 2 chains through the
/// storage crate.
#[test]
fn storage_chain() {
    use treequery::storage::{stack_tree_join, Xasr};
    let t = parse_term("a(b(a c) a(b d))").unwrap();
    let x = Xasr::from_tree(&t);
    // descendant view ≍ structural join over full label lists.
    let desc = x.descendant_view();
    let mut all: Vec<(u32, u32)> = Vec::new();
    for la in ["a", "b", "c", "d"] {
        for ld in ["a", "b", "c", "d"] {
            all.extend(stack_tree_join(x.label_list(la), x.label_list(ld)));
        }
    }
    all.sort_unstable();
    assert_eq!(all, desc.pairs());
}
