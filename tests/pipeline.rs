//! Integration tests for the three-stage query pipeline: IR lowering,
//! statistics-driven planning with explanations, the plan cache, and
//! batched parallel execution.

use rand::rngs::StdRng;
use rand::SeedableRng;
use treequery::tree::{xmark_document, XmarkConfig};
use treequery::{Engine, Query, SourceLang, Strategy};

fn xmark_tree() -> treequery::Tree {
    let mut rng = StdRng::seed_from_u64(0x5eed17);
    xmark_document(&mut rng, &XmarkConfig::scaled_to(1500))
}

/// A mixed workload of ≥100 queries across all three front-ends, with a
/// few repeated entries so the plan cache gets exercised.
fn workload() -> Vec<Query> {
    let mut queries = Vec::new();
    let labels = [
        "site",
        "people",
        "person",
        "name",
        "open_auction",
        "bidder",
        "increase",
        "item",
        "description",
        "category",
    ];
    for a in labels {
        queries.push(Query::xpath(format!("//{a}")));
        for b in labels {
            queries.push(Query::xpath(format!("//{a}[{b}]")));
        }
    }
    queries.push(Query::xpath("//open_auction[bidder]/seller"));
    queries.push(Query::xpath("//person[name][not(homepage)]"));
    queries.push(Query::cq(
        "q(x) :- label(x, person), child(x, y), label(y, name).",
    ));
    queries.push(Query::cq("child+(x, y), child+(y, z), child+(x, z)"));
    queries.push(Query::cq(
        "q(x, y) :- child(z, x), child(z, y), pre_lt(x, y), label(z, name).",
    ));
    queries.push(Query::datalog(
        "P(x) :- label(x, bidder).
         P(x) :- firstchild(x, y), P(y).
         ?- P.",
    ));
    // Repeats → cache hits.
    queries.push(Query::xpath("//person[name]"));
    queries.push(Query::xpath("//person[name]"));
    queries
}

#[test]
fn eval_batch_matches_sequential_on_xmark() {
    let t = xmark_tree();
    let queries = workload();
    assert!(
        queries.len() >= 100,
        "workload has {} queries",
        queries.len()
    );

    let parallel_engine = Engine::new(&t);
    let batch = parallel_engine.eval_batch(&queries);

    let sequential_engine = Engine::new(&t);
    for (i, q) in queries.iter().enumerate() {
        let seq = sequential_engine.eval(q);
        match (&batch[i], seq) {
            (Ok(b), Ok(s)) => assert_eq!(*b, s, "query {i}: {:?}", q.text()),
            (Err(_), Err(_)) => {}
            (b, s) => panic!("query {i} diverged: batch {b:?} vs sequential {s:?}"),
        }
    }

    let m = parallel_engine.metrics();
    assert_eq!(m.batch_queries, queries.len() as u64);
    assert_eq!(m.queries_executed, queries.len() as u64);
    assert!(
        m.plan_cache_hits > 0,
        "repeated queries should hit the plan cache: {m:?}"
    );
}

#[test]
fn explain_names_a_strategy_for_every_front_end() {
    let t = xmark_tree();
    let e = Engine::new(&t);

    let x = e.explain(&Query::xpath("//open_auction[bidder]")).unwrap();
    assert_eq!(x.source, SourceLang::XPath);
    assert!(
        matches!(
            x.strategy,
            Strategy::XPathSetAtATime | Strategy::XPathViaAcyclicCq
        ),
        "{:?}",
        x.strategy
    );
    assert!(!x.rationale.is_empty());
    assert!(x.estimated_work > 0);

    let c = e
        .explain(&Query::cq(
            "q(x) :- label(x, person), child(x, y), label(y, name).",
        ))
        .unwrap();
    assert_eq!(c.source, SourceLang::Cq);
    assert_eq!(c.strategy, Strategy::CqAcyclic);

    let d = e
        .explain(&Query::datalog("P(x) :- label(x, item). ?- P."))
        .unwrap();
    assert_eq!(d.source, SourceLang::Datalog);
    assert_eq!(d.strategy, Strategy::DatalogGround);
}

#[test]
fn absent_labels_reroute_the_xpath_plan() {
    let t = xmark_tree();
    let e = Engine::new(&t);
    // `phantom` never occurs in an XMark document: the planner routes the
    // query through the CQ lowering, whose reducer refutes it without a
    // sweep — and the answer must agree with the forced sweep.
    let q = "//person[phantom]";
    let explained = e.explain(&Query::xpath(q)).unwrap();
    assert_eq!(
        explained.strategy,
        Strategy::XPathViaAcyclicCq,
        "{explained:?}"
    );
    assert!(explained.rationale.contains("does not occur"));
    let planned = e.xpath(q).unwrap();
    let forced = e
        .xpath_via(q, treequery::XPathStrategy::SetAtATime)
        .unwrap();
    assert_eq!(planned, forced);
    assert!(planned.is_empty());
    // A query over common labels keeps the sweep.
    let common = e.explain(&Query::xpath("//person[name]")).unwrap();
    assert_eq!(common.strategy, Strategy::XPathSetAtATime, "{common:?}");
}

#[test]
fn plan_cache_key_distinguishes_trees() {
    let t1 = xmark_tree();
    let mut rng = StdRng::seed_from_u64(99);
    let t2 = xmark_document(&mut rng, &XmarkConfig::scaled_to(600));
    let e1 = Engine::new(&t1);
    let e2 = Engine::new(&t2);
    assert_ne!(e1.tree_fingerprint(), e2.tree_fingerprint());
    // Same normalized query on each engine → one plan per engine cache.
    e1.xpath("//person[name]").unwrap();
    e2.xpath("//person[name]").unwrap();
    assert_eq!(e1.cached_plans(), 1);
    assert_eq!(e2.cached_plans(), 1);
}
