//! Shared proptest generators for the integration property suites:
//! random trees over a small alphabet, random Core XPath paths, and
//! random conjunctive queries. Each test binary uses a subset.
#![allow(dead_code)]

use proptest::prelude::*;
use treequery::tree::TreeBuilder;
use treequery::xpath::{Path, Qual};
use treequery::{cq, Axis, Tree};

pub const ALPHABET: [&str; 3] = ["a", "b", "c"];

/// Random trees with up to `max_nodes` nodes, labels drawn from
/// [`ALPHABET`], and arbitrary parent choices (so depth and fan-out both
/// vary).
pub fn tree_strategy(max_nodes: usize) -> impl Strategy<Value = Tree> {
    (
        proptest::collection::vec(any::<u32>(), 0..max_nodes),
        proptest::collection::vec(0u8..3, 1..=max_nodes),
    )
        .prop_map(|(parents, labels)| {
            let mut b = TreeBuilder::new();
            let mut nodes = vec![b.root(ALPHABET[labels[0] as usize % 3])];
            for (i, p) in parents.iter().enumerate() {
                let parent = nodes[(*p as usize) % nodes.len()];
                let label = ALPHABET[labels.get(i + 1).copied().unwrap_or(0) as usize % 3];
                nodes.push(b.child(parent, label));
            }
            b.freeze()
        })
}

/// Random Core XPath paths: steps over every axis, composed with `/`,
/// `|`, qualifiers, and negation.
pub fn path_strategy() -> impl Strategy<Value = Path> {
    let axis = proptest::sample::select(Axis::ALL.to_vec());
    let label = proptest::sample::select(ALPHABET.to_vec());
    let leaf = (axis, proptest::option::of(label)).prop_map(|(a, l)| match l {
        Some(l) => Path::labeled_step(a, l),
        None => Path::step(a),
    });
    leaf.prop_recursive(3, 24, 3, |inner| {
        prop_oneof![
            (inner.clone(), inner.clone()).prop_map(|(a, b)| a.then(b)),
            (inner.clone(), inner.clone()).prop_map(|(a, b)| a.union(b)),
            (inner.clone(), inner.clone()).prop_map(|(p, q)| p.filtered(Qual::Path(q))),
            (inner.clone(), inner.clone())
                .prop_map(|(p, q)| p.filtered(Qual::Not(Box::new(Qual::Path(q))))),
            (inner, proptest::sample::select(ALPHABET.to_vec()))
                .prop_map(|(p, l)| p.filtered(Qual::Label(l.to_owned()))),
        ]
    })
}

/// Anchors a path at the document root via `descendant-or-self`.
pub fn rooted(p: Path) -> Path {
    Path::step(Axis::DescendantOrSelf).then(p)
}

/// Random conjunctive queries with up to `max_vars` variables: axis
/// atoms over a forward-biased edge pool plus a few label atoms.
pub fn cq_strategy(max_vars: usize) -> impl Strategy<Value = cq::Cq> {
    let axes = vec![
        Axis::Child,
        Axis::Descendant,
        Axis::NextSibling,
        Axis::Following,
        Axis::Parent,
        Axis::Ancestor,
    ];
    (
        2..=max_vars,
        proptest::collection::vec((any::<u32>(), proptest::sample::select(axes)), 1..6),
        proptest::collection::vec(
            (any::<u32>(), proptest::sample::select(ALPHABET.to_vec())),
            0..3,
        ),
    )
        .prop_map(|(nvars, edges, labels)| {
            let mut q = cq::Cq::new();
            let vars: Vec<_> = (0..nvars).map(|i| q.add_var(format!("v{i}"))).collect();
            for (i, (pick, axis)) in edges.iter().enumerate() {
                let hi = (i + 1) % nvars;
                if hi == 0 {
                    continue;
                }
                let lo = (*pick as usize) % hi;
                q.atoms.push(cq::CqAtom::Axis(*axis, vars[lo], vars[hi]));
            }
            for (pick, label) in labels {
                let v = vars[(pick as usize) % nvars];
                q.atoms.push(cq::CqAtom::Label(label.to_owned(), v));
            }
            q.head = vec![vars[0]];
            q
        })
}
