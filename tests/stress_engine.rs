//! Concurrency stress for the shared engine: many threads hammer one
//! `Engine` with a mix of `eval`, `eval_batch`, and `explain_analyze`
//! while the planner dispatches parallel kernels onto the shared worker
//! pool. Afterwards the counters must balance exactly — every lowered
//! query took exactly one plan-cache lookup, every miss computed exactly
//! one plan — and the quiesced snapshot must agree with the plain one at
//! rest.

use treequery::{Engine, EngineConfig, PlannerConfig, Query, QueryOutput, Tree};

fn stress_tree() -> Tree {
    let term = format!("r({})", "a(b(c) b) a(c(b)) b(a) ".repeat(50));
    treequery::parse_term(&term).unwrap()
}

fn parallel_engine(tree: &Tree) -> Engine<'_> {
    Engine::with_config(
        tree,
        EngineConfig {
            planner: PlannerConfig {
                workers: Some(4),
                parallel_threshold: 0,
                ..PlannerConfig::default()
            },
            batch_threads: Some(4),
            ..EngineConfig::default()
        },
    )
}

fn stress_queries() -> Vec<Query> {
    vec![
        Query::xpath("//a[b]/c"),
        Query::xpath("//b"),
        Query::xpath("//a/following-sibling::b"),
        Query::cq("q(x) :- label(x, a), child(x, y), label(y, b)."),
        Query::datalog("P(x) :- label(x, c). ?- P."),
    ]
}

#[test]
fn hammered_engine_keeps_its_counters_consistent() {
    const THREADS: usize = 8;
    const ROUNDS: usize = 12;
    let tree = stress_tree();
    let engine = parallel_engine(&tree);
    let queries = stress_queries();
    // Sequential oracle from a fresh single-worker engine.
    let oracle: Vec<QueryOutput> = {
        let sequential = Engine::with_config(
            &tree,
            EngineConfig {
                planner: PlannerConfig {
                    workers: Some(1),
                    ..PlannerConfig::default()
                },
                batch_threads: Some(1),
                ..EngineConfig::default()
            },
        );
        queries
            .iter()
            .map(|q| sequential.eval(q).unwrap())
            .collect()
    };

    std::thread::scope(|s| {
        for _ in 0..THREADS {
            s.spawn(|| {
                for round in 0..ROUNDS {
                    for (q, expect) in queries.iter().zip(&oracle) {
                        assert_eq!(&engine.eval(q).unwrap(), expect);
                    }
                    if round % 3 == 0 {
                        let batch = engine.eval_batch(&queries);
                        for (got, expect) in batch.iter().zip(&oracle) {
                            assert_eq!(got.as_ref().unwrap(), expect);
                        }
                    }
                    if round % 4 == 0 {
                        let i = round % queries.len();
                        let analyzed = engine.explain_analyze(&queries[i]).unwrap();
                        assert_eq!(&analyzed.output, &oracle[i]);
                    }
                }
            });
        }
    });

    // Expected pipeline traffic: every eval / batch entry / analyze runs
    // lower → one cache lookup → execute.
    let batches = (0..ROUNDS).filter(|r| r % 3 == 0).count();
    let analyzes = (0..ROUNDS).filter(|r| r % 4 == 0).count();
    let per_thread = (ROUNDS + batches) * queries.len() + analyzes;
    let expected = (THREADS * per_thread) as u64;

    let m = engine.metrics_quiesced();
    assert_eq!(
        m,
        engine.metrics(),
        "at rest the quiesced snapshot equals the plain snapshot"
    );
    assert_eq!(m.queries_lowered, expected);
    assert_eq!(m.queries_executed, expected);
    // The cache-lookup ledger balances: one lookup per lowered query, one
    // computed plan per miss, one distinct plan per distinct query.
    assert_eq!(m.plan_cache_hits + m.plan_cache_misses, m.queries_lowered);
    assert_eq!(m.plan_cache_misses, m.plans_computed);
    assert_eq!(m.plan_cache_misses, queries.len() as u64);
    assert_eq!(engine.cached_plans(), queries.len());
    assert_eq!(m.batch_queries, (THREADS * batches * queries.len()) as u64);
    assert!(
        m.parallel_kernels > 0,
        "the 4-worker engine should have dispatched parallel kernels"
    );
    assert!(m.parallel_chunks >= m.parallel_kernels);
    // Concurrent explain_analyze calls race their recorder restores (the
    // documented treequery-obs model); leave the process clean for other
    // tests in this binary.
    treequery::obs::clear_recorder();
}

/// `EXPLAIN ANALYZE` under parallel execution is deterministic: worker
/// chunk spans are merged into one stable stage row per name, so two
/// warm-cache runs report exactly the same stage structure (names,
/// calls, depths, summed fields — everything except wall time).
#[test]
fn parallel_explain_analyze_is_deterministic() {
    let tree = stress_tree();
    let engine = parallel_engine(&tree);
    let query = Query::xpath("//a[b]/c");
    let sequential = Engine::with_config(
        &tree,
        EngineConfig {
            planner: PlannerConfig {
                workers: Some(1),
                ..PlannerConfig::default()
            },
            ..EngineConfig::default()
        },
    );
    let expect = sequential.eval(&query).unwrap();

    // Warm the plan cache so both measured runs take the same path.
    let warm = engine.explain_analyze(&query).unwrap();
    assert_eq!(warm.plan.workers, 4, "{}", warm.plan.parallel_rationale);
    let first = engine.explain_analyze(&query).unwrap();
    let second = engine.explain_analyze(&query).unwrap();
    for analyzed in [&first, &second] {
        assert_eq!(analyzed.output, expect, "parallel ≡ sequential");
        assert!(analyzed.counters.parallel_kernels > 0);
    }

    let shape = |a: &treequery::AnalyzedPlan| {
        a.stages
            .iter()
            .map(|s| (s.name, s.calls, s.depth, s.fields.clone()))
            .collect::<Vec<_>>()
    };
    assert_eq!(shape(&first), shape(&second));
    // The merged chunk rows are present and nested under their kernel.
    let chunk = first
        .stages
        .iter()
        .find(|s| s.name == "exec.sweep.chunk")
        .expect("parallel sweep ran in chunks");
    assert!(chunk.calls > 1, "multiple chunks merged into one row");
    let sweep = first
        .stages
        .iter()
        .find(|s| s.name == "exec.sweep")
        .unwrap();
    assert!(
        chunk.depth > sweep.depth,
        "chunk spans nest under the sweep"
    );
    // The rendering (minus times) is identical too: plan lines match.
    let plan_lines = |text: &str| {
        text.lines()
            .filter(|l| !l.contains("time=") && !l.starts_with("Measured"))
            .map(str::to_owned)
            .collect::<Vec<_>>()
    };
    assert_eq!(plan_lines(&first.render()), plan_lines(&second.render()));
}
