//! Property tests with *randomly generated queries*: random Core XPath
//! expressions and random conjunctive queries, differentially evaluated
//! through every engine in the workspace.

use proptest::prelude::*;
use treequery::tree::TreeBuilder;
use treequery::xpath::{eval_query, eval_reference, Path, Qual};
use treequery::{cq, datalog, Axis, Tree};

const ALPHABET: [&str; 3] = ["a", "b", "c"];

fn tree_strategy(max_nodes: usize) -> impl Strategy<Value = Tree> {
    (
        proptest::collection::vec(any::<u32>(), 0..max_nodes),
        proptest::collection::vec(0u8..3, 1..=max_nodes),
    )
        .prop_map(|(parents, labels)| {
            let mut b = TreeBuilder::new();
            let mut nodes = vec![b.root(ALPHABET[labels[0] as usize % 3])];
            for (i, p) in parents.iter().enumerate() {
                let parent = nodes[(*p as usize) % nodes.len()];
                let label = ALPHABET[labels.get(i + 1).copied().unwrap_or(0) as usize % 3];
                nodes.push(b.child(parent, label));
            }
            b.freeze()
        })
}

/// Random Core XPath paths: steps over all fifteen axes with nested
/// qualifiers (including negation).
fn path_strategy() -> impl Strategy<Value = Path> {
    let axis = proptest::sample::select(Axis::ALL.to_vec());
    let label = proptest::sample::select(ALPHABET.to_vec());
    let leaf = (axis, proptest::option::of(label)).prop_map(|(a, l)| match l {
        Some(l) => Path::labeled_step(a, l),
        None => Path::step(a),
    });
    leaf.prop_recursive(3, 24, 3, |inner| {
        prop_oneof![
            (inner.clone(), inner.clone()).prop_map(|(a, b)| a.then(b)),
            (inner.clone(), inner.clone()).prop_map(|(a, b)| a.union(b)),
            (inner.clone(), inner.clone()).prop_map(|(p, q)| p.filtered(Qual::Path(q))),
            (inner.clone(), inner.clone())
                .prop_map(|(p, q)| p.filtered(Qual::Not(Box::new(Qual::Path(q))))),
            (inner, proptest::sample::select(ALPHABET.to_vec()))
                .prop_map(|(p, l)| p.filtered(Qual::Label(l.to_owned()))),
        ]
    })
}

/// The query must start downward from the virtual document node for all
/// evaluators to agree on the convention.
fn rooted(p: Path) -> Path {
    Path::step(Axis::DescendantOrSelf).then(p)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Fast evaluator ≡ reference semantics on random queries and trees.
    #[test]
    fn random_xpath_fast_vs_reference(p in path_strategy(), t in tree_strategy(18)) {
        let p = rooted(p);
        prop_assert_eq!(eval_query(&p, &t), eval_reference(&p, &t));
    }

    /// Fast evaluator ≡ the monadic-datalog route (grounding + Minoux) on
    /// random queries — this exercises every ∃χ/∀χ datalog gadget,
    /// including the duals introduced by negation.
    #[test]
    fn random_xpath_fast_vs_datalog(p in path_strategy(), t in tree_strategy(14)) {
        let p = rooted(p);
        let prog = treequery::xpath::to_datalog(&p);
        prop_assert_eq!(datalog::eval_query(&prog, &t), eval_query(&p, &t));
    }
}

/// Random conjunctive queries: a forest-shaped core (guaranteed acyclic)
/// plus optional extra atoms that may introduce cycles.
fn cq_strategy(max_vars: usize) -> impl Strategy<Value = cq::Cq> {
    let axes = vec![
        Axis::Child,
        Axis::Descendant,
        Axis::DescendantOrSelf,
        Axis::NextSibling,
        Axis::FollowingSibling,
        Axis::Following,
        Axis::Parent,
        Axis::Ancestor,
    ];
    (
        2..=max_vars,
        proptest::collection::vec((any::<u32>(), proptest::sample::select(axes.clone())), 1..6),
        proptest::collection::vec(
            (any::<u32>(), proptest::sample::select(ALPHABET.to_vec())),
            0..3,
        ),
    )
        .prop_map(|(nvars, edges, labels)| {
            let mut q = cq::Cq::new();
            let vars: Vec<_> = (0..nvars).map(|i| q.add_var(format!("v{i}"))).collect();
            // Tree-shaped axis atoms: var i connects to an earlier var.
            for (i, (pick, axis)) in edges.iter().enumerate() {
                let hi = (i + 1) % nvars;
                if hi == 0 {
                    continue;
                }
                let lo = (*pick as usize) % hi;
                q.atoms.push(cq::CqAtom::Axis(*axis, vars[lo], vars[hi]));
            }
            for (pick, label) in labels {
                let v = vars[(pick as usize) % nvars];
                q.atoms.push(cq::CqAtom::Label(label.to_owned(), v));
            }
            q.head = vec![vars[0]];
            q
        })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Acyclic random CQs: Yannakakis + enumeration ≡ backtracking.
    #[test]
    fn random_acyclic_cq(q in cq_strategy(4), t in tree_strategy(14)) {
        if let Some(fast) = cq::eval_acyclic(&q, &t) {
            let slow = cq::eval_backtrack(&q, &t);
            prop_assert_eq!(fast, slow);
        }
    }

    /// Random CQs through the engine planner ≡ backtracking (whatever
    /// technique the planner picks).
    #[test]
    fn random_cq_via_planner(q in cq_strategy(4), t in tree_strategy(12)) {
        let engine = treequery::Engine::new(&t);
        let fast = engine.eval_cq(&q);
        let slow = cq::eval_backtrack(&q, &t);
        prop_assert_eq!(&fast.tuples, &slow, "plan {:?}", fast.plan);
    }

    /// The maximal arc-consistent pre-valuation always over-approximates
    /// the solution projections (soundness of Proposition 6.2's fixpoint).
    #[test]
    fn random_cq_ac_superset(q in cq_strategy(4), t in tree_strategy(12)) {
        let n = q.normalize_forward();
        if let Some(theta) = cq::max_arc_consistent(&n, &t) {
            let mut projections =
                vec![std::collections::BTreeSet::new(); n.num_vars()];
            cq::eval_backtrack(&{
                let mut all = n.clone();
                all.head = (0..n.num_vars() as u32).map(cq::CqVar).collect();
                all
            }, &t)
            .into_iter()
            .for_each(|tuple| {
                for (i, v) in tuple.into_iter().enumerate() {
                    projections[i].insert(v);
                }
            });
            for (i, proj) in projections.iter().enumerate() {
                for &v in proj {
                    prop_assert!(
                        theta[i].contains(v),
                        "var {i}: solution value {v:?} missing from AC set"
                    );
                }
            }
        } else {
            // No arc-consistent pre-valuation ⇒ unsatisfiable.
            prop_assert!(!cq::is_satisfiable_backtrack(&n, &t));
        }
    }
}
