//! The paper's worked examples, figures and tables, asserted end to end.

use treequery::{cq, parse_term, Axis, Order};

/// Figure 2: the XASR of the example tree, cell by cell.
#[test]
fn figure_2_xasr() {
    use treequery::storage::Xasr;
    let t = parse_term("a(b(a c) a(b d))").unwrap();
    let x = Xasr::from_tree(&t);
    let expected: [(u32, u32, Option<u32>, &str); 7] = [
        (1, 7, None, "a"),
        (2, 3, Some(1), "b"),
        (3, 1, Some(2), "a"),
        (4, 2, Some(2), "c"),
        (5, 6, Some(1), "a"),
        (6, 4, Some(5), "b"),
        (7, 5, Some(5), "d"),
    ];
    for (row, e) in x.rows().iter().zip(expected) {
        assert_eq!((row.pre, row.post, row.parent_pre, row.label.as_str()), e);
    }
}

/// Example 3.3: Minoux's data structures and derivation, exactly as
/// printed in the paper.
#[test]
fn example_3_3_minoux_trace() {
    use treequery::hornsat::{HornFormula, RuleId};
    let mut f = HornFormula::new();
    let v: Vec<_> = (0..7).map(|_| f.fresh_var()).collect();
    f.add_fact(v[1]); // r1: 1 ←
    f.add_fact(v[2]); // r2: 2 ←
    f.add_fact(v[3]); // r3: 3 ←
    f.add_rule(v[4], &[v[1]]); // r4: 4 ← 1
    f.add_rule(v[5], &[v[3], v[4]]); // r5: 5 ← 3, 4
    f.add_rule(v[6], &[v[2], v[5]]); // r6: 6 ← 2, 5
    let st = f.initial_state();
    assert_eq!(st.size, vec![0, 0, 0, 1, 2, 2]);
    assert_eq!(st.queue, vec![v[1], v[2], v[3]]);
    assert_eq!(st.rules[v[1].index()], vec![RuleId(3)]);
    let sol = f.solve();
    assert_eq!(
        sol.derivation_order(),
        &[v[1], v[2], v[3], v[4], v[5], v[6]]
    );
}

/// Table 1, validated exhaustively: for each axis pair (R, S), the
/// satisfiability of `R(x, z) ∧ S(y, z) ∧ x <pre y` over *all* ordered
/// trees with up to 5 nodes matches the paper's table (the witnesses the
/// table's "sat" entries need are at most 4 nodes).
#[test]
fn table_1_exhaustive() {
    use treequery::tree::all_trees;
    let axes = [
        Axis::Child,
        Axis::Descendant,
        Axis::NextSibling,
        Axis::FollowingSibling,
    ];
    for r in axes {
        for s in axes {
            let expected = cq::sat_table(r, s);
            let mut found = false;
            'outer: for n in 1..=5 {
                for t in all_trees(n, "x") {
                    for x in t.nodes() {
                        for y in t.nodes() {
                            for z in t.nodes() {
                                if t.pre(x) < t.pre(y) && r.holds(&t, x, z) && s.holds(&t, y, z) {
                                    found = true;
                                    break 'outer;
                                }
                            }
                        }
                    }
                }
            }
            assert_eq!(found, expected, "Table 1 cell ({}, {})", r.name(), s.name());
        }
    }
}

/// Figure 4: the (Child, NextSibling) graph of the figure's 15-node tree
/// has a valid width-2 decomposition.
#[test]
fn figure_4_tree_width_two() {
    use treequery::cq::decomposition::{decompose_tree_structure, exact_treewidth, Graph};
    let t = parse_term("v1(v2(v3 v4) v5(v6(v7 v8) v9(v10)) v11(v12) v13(v14 v15))").unwrap();
    let g = Graph::of_tree_structure(&t);
    let d = decompose_tree_structure(&t);
    assert!(d.is_valid_for(&g));
    assert_eq!(d.width(), 2);
    // And a tree with ≥ 2 consecutive siblings needs width exactly 2.
    let small = parse_term("a(b c)").unwrap();
    assert_eq!(exact_treewidth(&Graph::of_tree_structure(&small)), 2);
}

/// Proposition 6.6 / Figure 5: the complete axis × order X-property
/// matrix, exhaustively over all trees with ≤ 6 nodes, matches the
/// dichotomy classifier's table.
#[test]
fn proposition_6_6_matrix() {
    use treequery::cq::dichotomy::axis_compatible;
    use treequery::cq::x_property_counterexample;
    use treequery::tree::all_trees;
    let forward = [
        Axis::Child,
        Axis::Descendant,
        Axis::DescendantOrSelf,
        Axis::NextSibling,
        Axis::FollowingSibling,
        Axis::FollowingSiblingOrSelf,
        Axis::Following,
    ];
    for axis in forward {
        for order in Order::ALL {
            let claimed = axis_compatible(axis, order);
            let counterexample_exists = (1..=7).any(|n| {
                all_trees(n, "x")
                    .iter()
                    .any(|t| x_property_counterexample(t, axis, order).is_some())
            });
            assert_eq!(
                claimed,
                !counterexample_exists,
                "{} vs {}",
                axis.name(),
                order
            );
        }
    }
}

/// Example 6.1: an arc-consistent pre-valuation without a consistent
/// valuation.
#[test]
fn example_6_1() {
    use std::collections::BTreeSet;
    use treequery::cq::relational::{
        example_6_1, is_satisfiable_generic, max_arc_consistent_hornsat,
    };
    let (q, a) = example_6_1();
    let theta = max_arc_consistent_hornsat(&q, &a).expect("arc-consistent");
    assert_eq!(theta[0], BTreeSet::from([1, 3]));
    assert_eq!(theta[1], BTreeSet::from([2, 4]));
    assert!(!is_satisfiable_generic(&q, &a));
}

/// Figure 6 / Proposition 6.9: enumeration over the reduced sets never
/// dead-ends.
#[test]
fn figure_6_backtrack_free() {
    use treequery::cq::Enumerator;
    let t = parse_term("r(a(b(c) b) a(c(b)) b(a))").unwrap();
    for qs in [
        "q(x) :- label(x, a), child+(x, y), label(y, b), child(y, z).",
        "q(x, y) :- following(x, y), label(y, b).",
    ] {
        let q = cq::parse_cq(qs).unwrap();
        let e = Enumerator::new(&q, &t).unwrap();
        let stats = e.count();
        assert_eq!(stats.dead_branches, 0, "{qs}");
    }
}

/// The Example 3.1 program (with the prose corrected to "descendant
/// labeled L" — see crates/datalog) evaluated through the engine.
#[test]
fn example_3_1_program() {
    use treequery::Engine;
    let t = parse_term("r(L(a) b(L) c)").unwrap();
    let e = Engine::new(&t);
    let result = e
        .datalog(
            "P0(x) :- label(x, L).
             P0(x0) :- nextsibling(x0, x), P0(x).
             P(x0) :- firstchild(x0, x), P0(x).
             P0(x) :- P(x).
             ?- P.",
        )
        .unwrap();
    // Nodes with a proper descendant labeled L: the root and b.
    let labels: Vec<_> = result.iter().map(|&v| t.label_name(v)).collect();
    assert_eq!(labels, ["r", "b"]);
}
