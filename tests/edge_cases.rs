//! Degenerate-input conformance: every strategy must agree on the trees
//! that break naive implementations — single nodes, depth-10⁴ chains
//! (stack-overflow bait), maximal-fanout stars with one label, and
//! queries with no matches at all. The differential executor from the
//! fuzz crate does the cross-checking, so "agree" here means: every
//! applicable strategy × worker count, plus the streaming and datalog
//! variants, produce identical answers.

use treequery_core::tree::{deep_path, star, to_term};
use treequery_core::{cq, datalog, parse_term, xpath, Tree};
use treequery_fuzz::{differential_check, shrink, CaseQuery, DiffOptions, FuzzCase};

fn assert_agrees(tree: Tree, query: CaseQuery) {
    let case = FuzzCase {
        tree,
        query,
        edits: Vec::new(),
    };
    let (d, checks) = differential_check(&case, &DiffOptions::default());
    assert!(checks >= 2, "at least two executors must run");
    if let Some(d) = d {
        panic!("{} on {}: {d}", case.query, to_term(&case.tree));
    }
}

fn xp(s: &str) -> CaseQuery {
    CaseQuery::XPath(xpath::parse_xpath(s).unwrap())
}

fn cq(s: &str) -> CaseQuery {
    CaseQuery::Cq(cq::parse_cq(s).unwrap())
}

fn dl(s: &str) -> CaseQuery {
    CaseQuery::Datalog(datalog::parse_program(s).unwrap())
}

#[test]
fn single_node_trees_agree_across_strategies() {
    let queries = [
        xp("self::*[lab()=a]"),
        xp("descendant-or-self::*"),
        xp("child::*"),
        cq("q(x) :- label(x, a)."),
        cq("q(x, y) :- child*(x, y)."),
        cq("q() :- root(x), leaf(x)."),
        dl("P0(x) :- label(x, a). ?- P0."),
    ];
    for q in queries {
        assert_agrees(parse_term("a").unwrap(), q);
    }
}

#[test]
fn deep_chains_do_not_overflow_any_strategy() {
    let t = deep_path(10_000, "a");
    assert_agrees(t.clone(), xp("descendant::*[lab()=a]"));
    assert_agrees(t.clone(), xp("child::*/child::*"));
    assert_agrees(t.clone(), cq("q(y) :- root(x), child+(x, y), leaf(y)."));
    assert_agrees(t, dl("P0(x) :- leaf(x). ?- P0."));
}

#[test]
fn deep_chain_survives_the_shrinker() {
    // The shrinker walks and rebuilds the tree on every candidate; with
    // a depth-10⁴ chain any recursive traversal would blow the stack.
    let case = FuzzCase {
        tree: deep_path(10_000, "a"),
        query: xp("self::*"),
        edits: Vec::new(),
    };
    // Predicate: tree deeper than 5 nodes (monotone under shrinking
    // until the bound, so the minimum is a 6-node chain).
    let (min, _) = shrink(&case, &mut |c| c.tree.len() > 5);
    assert_eq!(min.tree.len(), 6, "got {}", to_term(&min.tree));
}

#[test]
fn all_same_label_stars_agree_across_strategies() {
    let t = star(500, "a");
    assert_agrees(t.clone(), xp("child::*[lab()=a]"));
    assert_agrees(t.clone(), xp("descendant::*/following-sibling::*"));
    assert_agrees(t.clone(), cq("q(x, y) :- nextsibling(x, y)."));
    assert_agrees(t.clone(), cq("q(x) :- nextsibling*(x, y), leaf(y)."));
    assert_agrees(t, dl("P0(x) :- lastsibling(x). ?- P0."));
}

#[test]
fn no_match_queries_return_empty_everywhere() {
    let t = parse_term("r(a(b) a(b(c)) c)").unwrap();
    assert_agrees(t.clone(), xp("descendant::*[lab()=zzz]"));
    assert_agrees(t.clone(), xp("child::*[lab()=b]/child::*[lab()=r]"));
    assert_agrees(t.clone(), cq("q(x) :- label(x, zzz)."));
    assert_agrees(t.clone(), cq("q(x) :- root(x), leaf(x)."));
    assert_agrees(t, dl("P0(x) :- label(x, zzz), child(y, x). ?- P0."));
}

#[test]
#[should_panic(expected = "at least one node")]
fn zero_node_trees_are_unrepresentable() {
    let _ = deep_path(0, "a");
}
