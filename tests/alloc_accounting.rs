//! Integration tests for the counting allocator: exact attribution of a
//! known allocation pattern, scope propagation across the worker pool,
//! and the `mem` columns `EXPLAIN ANALYZE` joins onto the stage tree.
//!
//! The accounting switch and the scope-totals table are process-global,
//! so these tests serialize on one mutex (mirroring the unit tests inside
//! `treequery-obs`).

use std::sync::Mutex;

use treequery::obs::alloc::{current_scope, with_scope, AccountingGuard, AllocScope, ScopeStats};
use treequery::plan::WorkerPool;
use treequery::{parse_term, Engine, Query};

static TEST_LOCK: Mutex<()> = Mutex::new(());

fn lock() -> std::sync::MutexGuard<'static, ()> {
    TEST_LOCK.lock().unwrap_or_else(|e| e.into_inner())
}

/// Vec growth by explicit doubling reports *exact* byte counts: each
/// `reserve_exact` is one allocation of exactly the new capacity (realloc
/// counts as alloc(new) + free(old)), and nothing else on this thread
/// allocates between the scope's entry and the reads.
#[test]
fn vec_doubling_reports_exact_byte_counts() {
    let _l = lock();
    let _on = AccountingGuard::begin();
    let scope = AllocScope::enter("test.vec_doubling");
    let mut v: Vec<u8> = Vec::new();
    v.reserve_exact(1024); // alloc 1024
    v.resize(1024, 0);
    v.reserve_exact(1024); // realloc: alloc 2048, free 1024
    v.resize(2048, 0);
    v.reserve_exact(2048); // realloc: alloc 4096, free 2048
    let stats = scope.stats();
    assert_eq!(
        stats,
        ScopeStats {
            allocs: 3,
            frees: 2,
            bytes: 1024 + 2048 + 4096,
            freed_bytes: 1024 + 2048,
            peak_live: 4096 + 2048, // during realloc both blocks are charged
        },
        "doubling pattern must be counted exactly"
    );
    drop(v); // free 4096
    let stats = scope.stats();
    assert_eq!(stats.frees, 3);
    assert_eq!(stats.freed_bytes, 1024 + 2048 + 4096);
    assert_eq!(stats.bytes, stats.freed_bytes, "everything returned");
}

/// Scope attribution survives a `plan::pool` round-trip: tasks running on
/// pool workers charge the submitting thread's scope through the
/// propagated handle.
#[test]
fn scope_attribution_survives_a_pool_round_trip() {
    let _l = lock();
    let _on = AccountingGuard::begin();
    let scope = AllocScope::enter("test.pool_round_trip");
    let tasks: Vec<Box<dyn FnOnce() -> usize + Send>> = (0..8)
        .map(|i| {
            Box::new(move || {
                let v: Vec<u8> = Vec::with_capacity(16 * 1024);
                v.capacity() + i
            }) as Box<dyn FnOnce() -> usize + Send>
        })
        .collect();
    let results = WorkerPool::global().run_scoped(4, tasks);
    assert_eq!(results.len(), 8);
    let stats = scope.stats();
    assert!(
        stats.bytes >= 8 * 16 * 1024,
        "worker allocations must be charged to the submitting scope: {stats:?}"
    );
}

/// The handle API the pool uses, exercised directly across a plain
/// spawned thread.
#[test]
fn current_scope_handle_carries_attribution() {
    let _l = lock();
    let _on = AccountingGuard::begin();
    let scope = AllocScope::enter("test.handle");
    let handle = current_scope().expect("a scope is current");
    std::thread::scope(|s| {
        s.spawn(move || {
            with_scope(&handle, || {
                let _v: Vec<u8> = Vec::with_capacity(32 * 1024);
            });
        });
    });
    assert!(scope.stats().bytes >= 32 * 1024, "{:?}", scope.stats());
}

/// `EXPLAIN ANALYZE` turns accounting on for the run and joins the scope
/// totals onto the stage tree: the executor stages carry `mem` columns
/// with non-zero byte counts, in both the struct and the rendering.
#[test]
fn explain_analyze_reports_per_stage_memory() {
    let _l = lock();
    let t = parse_term("site(people(person(name) person(name)) regions(item item))").unwrap();
    let e = Engine::new(&t);
    let analyzed = e.explain_analyze(&Query::xpath("//person")).unwrap();
    let run = analyzed
        .stages
        .iter()
        .find(|s| s.name == "exec.run")
        .expect("exec.run stage present");
    let mem = run.mem.expect("accounted run attaches mem to exec.run");
    assert!(mem.allocs > 0, "{mem:?}");
    assert!(mem.bytes > 0, "{mem:?}");
    let rendered = analyzed.render();
    assert!(
        rendered.contains("[mem: bytes="),
        "render must show mem columns:\n{rendered}"
    );
    // The machine-readable form carries the same columns.
    let json = treequery::obs::parse_json(&analyzed.to_json().render()).unwrap();
    let stages = json.get("stages").unwrap().as_arr().unwrap().to_vec();
    assert!(stages.iter().any(|s| s
        .get("mem")
        .and_then(|m| m.get("bytes"))
        .and_then(|b| b.as_u64())
        > Some(0)));
}

/// Accounting is off outside guards: a plain `Engine::eval` run leaves no
/// scope totals behind and attaches no mem columns.
#[test]
fn unaccounted_runs_attach_no_mem() {
    let _l = lock();
    treequery::obs::alloc::take_scope_totals();
    let t = parse_term("r(a(b) a)").unwrap();
    let e = Engine::new(&t);
    e.xpath("//a").unwrap();
    assert!(
        treequery::obs::alloc::take_scope_totals().is_empty(),
        "no guard, no attribution"
    );
}
