//! XML parser round-trip property: `parse_xml ∘ to_xml` is the identity
//! on trees, and malformed documents are rejected rather than silently
//! repaired. The positive half is driven by the fuzz crate's structure-
//! aware tree generator, so the property covers chains, stars, and
//! random shapes — not just handwritten fixtures.

use rand::rngs::StdRng;
use rand::SeedableRng;
use treequery_core::tree::to_term;
use treequery_core::{parse_term, parse_xml, to_xml};
use treequery_fuzz::{gen_tree, GenConfig};

#[test]
fn generated_trees_round_trip_through_xml() {
    let cfg = GenConfig::default();
    let mut rng = StdRng::seed_from_u64(0xA11CE);
    for _ in 0..200 {
        let t = gen_tree(&mut rng, &cfg);
        let xml = to_xml(&t);
        let back = parse_xml(&xml).expect("serialized XML parses back");
        assert_eq!(to_term(&back), to_term(&t), "round trip changed {xml}");
        // And the serialization itself is stable across the round trip.
        assert_eq!(to_xml(&back), xml);
    }
}

#[test]
fn handwritten_documents_round_trip() {
    for term in ["a", "r(a b c)", "r(a(b(c)) a(b) c)", "x(x(x))"] {
        let t = parse_term(term).unwrap();
        let back = parse_xml(&to_xml(&t)).unwrap();
        assert_eq!(to_term(&back), term);
    }
}

#[test]
fn deep_chain_round_trips_without_overflow() {
    let t = treequery_core::tree::deep_path(10_000, "a");
    let back = parse_xml(&to_xml(&t)).expect("deep chain parses");
    assert_eq!(back.len(), 10_000);
}

#[test]
fn malformed_documents_are_rejected() {
    let bad = [
        "",               // no root element
        "<a>",            // unclosed root
        "<a></b>",        // mismatched close tag
        "<a></a></a>",    // close past the root
        "<a><b></a></b>", // interleaved tags
        "<a></a><b></b>", // two roots
        "< a></a>",       // space before the name
        "<a",             // truncated open tag
        "junk",           // no markup at all
    ];
    for doc in bad {
        assert!(
            parse_xml(doc).is_err(),
            "malformed document accepted: {doc:?}"
        );
    }
}
