//! Replays the committed regression corpus (`tests/corpus/*.case`).
//!
//! Every file is a shrunk reproducer of a historical discrepancy (or a
//! handwritten conformance case). Replaying one runs the full
//! differential check — every applicable strategy × worker count, plus
//! the streaming / datalog variants — and the metamorphic laws; a clean
//! corpus therefore proves the current engine agrees with itself on
//! every input that ever caught a bug. `ci.sh` runs this suite under
//! `TREEQUERY_WORKERS=1` and `=4`.

use std::path::Path;

use treequery_fuzz::{case_file_name, load_dir, render_case, replay, save_case, Reproducer};

fn corpus_dir() -> std::path::PathBuf {
    Path::new(env!("CARGO_MANIFEST_DIR")).join("tests/corpus")
}

#[test]
fn committed_corpus_is_nonempty() {
    let corpus = load_dir(&corpus_dir()).expect("corpus loads");
    assert!(
        corpus.len() >= 3,
        "expected the seeded regression corpus, found {} cases",
        corpus.len()
    );
}

#[test]
fn every_corpus_case_replays_clean() {
    for (path, r) in load_dir(&corpus_dir()).expect("corpus loads") {
        if let Some(failure) = replay(&r) {
            panic!("{} regressed: {failure}", path.display());
        }
    }
}

#[test]
fn corpus_files_are_content_addressed() {
    // File names are the FNV-1a hash of the case content, so a re-found
    // bug overwrites its existing reproducer instead of growing the
    // corpus. A renamed or hand-edited file breaks that invariant.
    for (path, r) in load_dir(&corpus_dir()).expect("corpus loads") {
        let expected = case_file_name(&r);
        assert_eq!(
            path.file_name().and_then(|n| n.to_str()),
            Some(expected.as_str()),
            "{} is misnamed for its content",
            path.display()
        );
    }
}

#[test]
fn corpus_files_are_canonically_rendered() {
    // Each committed file must be exactly what `save_case` would write,
    // so render → parse → render is a fixpoint on the whole corpus.
    for (path, r) in load_dir(&corpus_dir()).expect("corpus loads") {
        let on_disk = std::fs::read_to_string(&path).unwrap();
        assert_eq!(
            on_disk,
            render_case(&r),
            "{} is not canonically rendered",
            path.display()
        );
    }
}

/// Rewrites the handwritten seed cases through `save_case`, keeping the
/// content-addressed names correct. Run manually after editing seeds:
/// `cargo test --test corpus_replay -- --ignored`.
#[test]
#[ignore = "writes to tests/corpus; run manually to regenerate seeds"]
fn regenerate_seed_corpus() {
    use treequery_core::{cq, datalog, parse_term, xpath};

    let seeds = [
        // The first real bug the fuzzer caught: the acyclic enumerator's
        // sibling index dropped the reflexive pair (root, root) for
        // NextSibling* — the root has no parent, hence no sibling group.
        Reproducer {
            category: "cq-diff".into(),
            case: treequery_fuzz::FuzzCase {
                tree: parse_term("a").unwrap(),
                query: treequery_fuzz::CaseQuery::Cq(
                    cq::parse_cq("q() :- preceding-sibling-or-self(x0, x1).").unwrap(),
                ),
                edits: Vec::new(),
            },
            note: "seed 0xc0c4: cq/acyclic dropped the reflexive (root, root) \
                   pair of NextSibling* (no sibling group for the root)"
                .into(),
        },
        Reproducer {
            category: "cq-diff".into(),
            case: treequery_fuzz::FuzzCase {
                tree: parse_term("a").unwrap(),
                query: treequery_fuzz::CaseQuery::Cq(
                    cq::parse_cq("q() :- nextsibling*(x1, x0).").unwrap(),
                ),
                edits: Vec::new(),
            },
            note: "seed 0xc0c4: same root/reflexive-sibling bug, forward \
                   normalization direction"
                .into(),
        },
        // Handwritten conformance seeds: exercise the streaming path and
        // the datalog naive/TMNF variants on every replay.
        Reproducer {
            category: "xpath-diff".into(),
            case: treequery_fuzz::FuzzCase {
                tree: parse_term("r(a(b) a(b(c)) c(a(b)))").unwrap(),
                query: treequery_fuzz::CaseQuery::XPath(
                    xpath::parse_xpath("descendant::*[lab()=a]/child::*[lab()=b]").unwrap(),
                ),
                edits: Vec::new(),
            },
            note: "handwritten: streamable descendant/child pattern with \
                   repeated matches at different depths"
                .into(),
        },
        Reproducer {
            category: "datalog-diff".into(),
            case: treequery_fuzz::FuzzCase {
                tree: parse_term("r(a(b b) b(a))").unwrap(),
                query: treequery_fuzz::CaseQuery::Datalog(
                    datalog::parse_program(
                        "P0(x) :- label(x, b), child(y, x), label(y, a). ?- P0.",
                    )
                    .unwrap(),
                ),
                edits: Vec::new(),
            },
            note: "handwritten: recursion-free program comparing planner, \
                   naive, and TMNF evaluation"
                .into(),
        },
        // Shrunk edit-script seeds: each replays the edit differential —
        // after every op the incrementally maintained document, patched
        // XASR, and fingerprint delta are checked against a rebuild
        // oracle under every strategy and both worker counts.
        Reproducer {
            category: "edit-diff".into(),
            case: treequery_fuzz::FuzzCase {
                tree: parse_term("r(a(b) c)").unwrap(),
                query: treequery_fuzz::CaseQuery::XPath(
                    xpath::parse_xpath("descendant::*[lab()=b]").unwrap(),
                ),
                edits: treequery_core::tree::parse_script("relabel(3,b); insert(0,0,b); delete(1)")
                    .unwrap(),
            },
            note: "handwritten: relabel flips a match on, insert adds one, \
                   delete removes the original subtree — answer set churns \
                   on every step"
                .into(),
        },
        Reproducer {
            category: "edit-diff".into(),
            case: treequery_fuzz::FuzzCase {
                tree: parse_term("r(a a(b))").unwrap(),
                query: treequery_fuzz::CaseQuery::Datalog(
                    datalog::parse_program(
                        "P0(x) :- label(x, a), child(x, y), label(y, b). ?- P0.",
                    )
                    .unwrap(),
                ),
                edits: treequery_core::tree::parse_script("insert(1,0,b); relabel(4,a)").unwrap(),
            },
            note: "handwritten: exercises the semi-naive datalog delta pass \
                   through a live watch after each edit"
                .into(),
        },
    ];
    let dir = corpus_dir();
    for r in seeds {
        let path = save_case(&dir, &r).expect("seed case saves");
        println!("wrote {}", path.display());
    }
}
