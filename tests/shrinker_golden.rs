//! Golden tests for shrinker determinism: the shrinker is a greedy
//! fixpoint with a fixed pass order, so the same starting case and the
//! same (deterministic) failure predicate must always produce the same
//! minimized reproducer — byte for byte, across runs and machines.
//!
//! The failure predicate here is a deliberately injected strategy bug
//! (`Corruption`, the detector self-test hook): the set-at-a-time XPath
//! strategy "loses" the last result node. The differential check must
//! catch it, and the shrinker must reduce the witness to a locally
//! minimal case.

use treequery_core::tree::to_term;
use treequery_core::{parse_term, xpath, Strategy};
use treequery_fuzz::{
    differential_check, render_case, shrink, CaseQuery, Corruption, CorruptionKind, DiffOptions,
    FuzzCase, Reproducer,
};

fn injected_bug() -> DiffOptions {
    DiffOptions {
        corrupt: Some(Corruption {
            strategy: Strategy::XPathSetAtATime,
            kind: CorruptionKind::DropLast,
        }),
        ..DiffOptions::default()
    }
}

fn start_case() -> FuzzCase {
    FuzzCase {
        tree: parse_term("r(a(b(c) b) a(c(b)) b(a))").unwrap(),
        query: CaseQuery::XPath(
            xpath::parse_xpath("descendant::*[lab()=b]/child::*[lab()=c]").unwrap(),
        ),
        edits: Vec::new(),
    }
}

fn minimize() -> (FuzzCase, treequery_fuzz::ShrinkStats) {
    let opts = injected_bug();
    let case = start_case();
    let (d, _) = differential_check(&case, &opts);
    assert!(d.is_some(), "the injected bug must fire on the start case");
    shrink(&case, &mut |c| differential_check(c, &opts).0.is_some())
}

#[test]
fn injected_bug_shrinks_to_a_tiny_case() {
    let (min, stats) = minimize();
    assert!(stats.steps > 0, "the start case is not minimal");
    assert!(
        min.tree.len() <= 8,
        "tree not minimized: {}",
        to_term(&min.tree)
    );
    assert!(min.query.size() <= 3, "query not minimized: {}", min.query);
    // Still a witness after minimization.
    let (d, _) = differential_check(&min, &injected_bug());
    assert!(d.is_some(), "minimized case must still fail");
}

#[test]
fn shrinking_the_same_bug_twice_is_byte_identical() {
    let (a, sa) = minimize();
    let (b, sb) = minimize();
    let ra = render_case(&Reproducer {
        category: "xpath-diff".into(),
        case: a,
        note: "golden".into(),
    });
    let rb = render_case(&Reproducer {
        category: "xpath-diff".into(),
        case: b,
        note: "golden".into(),
    });
    assert_eq!(ra, rb);
    assert_eq!((sa.steps, sa.attempts), (sb.steps, sb.attempts));
}

#[test]
fn minimized_reproducer_matches_the_golden_rendering() {
    // The exact bytes `save_case` would persist for this bug. If a
    // shrinker pass is added, removed, or reordered, this golden churns —
    // update it deliberately, never incidentally.
    let (min, _) = minimize();
    let rendered = render_case(&Reproducer {
        category: "xpath-diff".into(),
        case: min,
        note: "golden: set-at-a-time drops the last node".into(),
    });
    // Locally minimal: paths start at the virtual document node, so
    // `child+::*` (descendant) selects every element — a single-node
    // tree already yields one node for DropLast to lose.
    let golden = "# treequery-fuzz reproducer\n\
                  category: xpath-diff\n\
                  lang: xpath\n\
                  tree: a\n\
                  query: child+::*\n\
                  note: golden: set-at-a-time drops the last node\n";
    assert_eq!(rendered, golden);
}
